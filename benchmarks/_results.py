"""Shared result recording for the benchmark modules.

``BENCH_simcore.json`` is a *trajectory*, not a snapshot: the latest
values live at the top level (so existing consumers — the CI gate, the
README table, humans eyeballing a PR diff — read them exactly as
before), and a ``history`` key holds an append-style series per bench
name so a regression shows up as a trend, not just a one-off diff.

Every benchmark module collects into its own ``RESULTS`` dict and calls
:func:`record_results` once at module teardown; the function
read-merges-writes so modules running in the same (or separate) pytest
invocations compose instead of clobbering each other.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

#: The trajectory file at the repo root (committed; CI gates against it).
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_simcore.json"

#: Entries kept per bench in ``history`` (newest last).  Forty entries at
#: CI cadence is months of trend without the file outgrowing review.
HISTORY_LIMIT = 40


def record_results(results: dict[str, dict], path: Path = BENCH_PATH) -> None:
    """Merge ``results`` into the trajectory file at ``path``.

    Each bench's latest values replace its top-level entry, and a
    timestamped copy is appended to ``history[<bench>]`` (capped at
    :data:`HISTORY_LIMIT`, oldest dropped first).
    """
    if not results:
        return
    merged: dict = {}
    if path.exists():
        merged = json.loads(path.read_text())
    history: dict[str, list] = merged.get("history", {})
    stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    for name, values in results.items():
        merged[name] = values
        series = history.setdefault(name, [])
        series.append({"recorded": stamp, **values})
        del series[:-HISTORY_LIMIT]
    merged["history"] = history
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {path}")


def wall_seconds(entry: dict) -> float | None:
    """Locate the headline wall-clock metric inside a bench entry.

    Benches differ in shape: ``vod_playback`` is flat, the engine
    comparisons nest the production configuration under ``batched`` or
    ``numpy`` (the reference side is expected to be slower and is not
    gated).  Returns ``None`` when the entry carries no wall metric at
    all (overhead-fraction benches), which the gate treats as ungateable
    rather than as a failure.
    """
    if "wall_seconds" in entry:
        return float(entry["wall_seconds"])
    for key in ("batched", "numpy"):
        sub = entry.get(key)
        if isinstance(sub, dict) and "wall_seconds" in sub:
            return float(sub["wall_seconds"])
    return None
