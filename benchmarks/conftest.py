"""Benchmark fixtures: pre-warmed scenario caches.

Every benchmark regenerates one of the paper's tables or figures from a
synthetic trace.  The trace itself is built once per scale (session scope)
so that each benchmark's measured time is dominated by its analysis, and
the printed output is the table/series the paper reports.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import standard_result

SEED = 42


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ as ``bench``.

    The suite is only collected when invoked by path (it is outside
    ``testpaths``), so the marker is informational — it lets a combined run
    select or deselect benchmarks with ``-m bench`` without per-file noise.
    """
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def small_scale():
    """Pre-warm the small-scale trace shared by most benchmarks."""
    standard_result("small", SEED)
    return "small"


@pytest.fixture(scope="session")
def mobility_scale():
    """Pre-warm the mobility/cloning-focused trace."""
    standard_result("mobility", SEED)
    return "mobility"


def run_experiment(benchmark, module, scale, seed=SEED):
    """Benchmark an experiment runner once and print its paper-style output."""
    out = benchmark.pedantic(module.run, args=(scale, seed),
                             rounds=1, iterations=1)
    print()
    print(out.text)
    return out
