"""Wall-clock regression gate over the ``BENCH_simcore.json`` trajectory.

CI runs the benchmark modules against a copy of the *committed*
trajectory (the baseline), then invokes this script to compare the
freshly measured top-level wall times against the baseline's::

    python benchmarks/gate.py --baseline BENCH_baseline.json \
        --current BENCH_simcore.json swarm_burst vod_playback

A bench regresses when its wall time exceeds the baseline by more than
``--max-regression`` (default 25% — wide enough for shared-runner noise,
tight enough to catch a real slowdown).  Benches named on the command
line *must* exist in both files and carry a wall metric; anything else
is a configuration error (exit 2), not a pass.  Exit 1 on regression,
0 when every gated bench holds.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _results import wall_seconds  # noqa: E402


def run_gate(baseline: dict, current: dict, benches: list[str],
             max_regression: float) -> int:
    failures = 0
    for name in benches:
        base_entry = baseline.get(name)
        cur_entry = current.get(name)
        if not isinstance(base_entry, dict) or not isinstance(cur_entry, dict):
            print(f"gate: bench {name!r} missing from "
                  f"{'baseline' if base_entry is None else 'current'} file",
                  file=sys.stderr)
            return 2
        base_wall = wall_seconds(base_entry)
        cur_wall = wall_seconds(cur_entry)
        if base_wall is None or cur_wall is None:
            print(f"gate: bench {name!r} has no wall_seconds metric",
                  file=sys.stderr)
            return 2
        ratio = cur_wall / base_wall if base_wall > 0 else float("inf")
        verdict = "OK" if ratio <= 1.0 + max_regression else "REGRESSED"
        print(f"gate: {name:24s} baseline={base_wall:8.3f}s "
              f"current={cur_wall:8.3f}s ratio={ratio:5.2f}  {verdict}")
        if verdict == "REGRESSED":
            failures += 1
    if failures:
        print(f"gate: {failures} bench(es) regressed beyond "
              f"{max_regression:.0%}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("benches", nargs="+",
                        help="bench names to gate (e.g. swarm_burst)")
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed trajectory file to compare against")
    parser.add_argument("--current", required=True, type=Path,
                        help="freshly written trajectory file")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        metavar="FRAC",
                        help="allowed wall-time growth fraction "
                             "(default: 0.25)")
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text())
        current = json.loads(args.current.read_text())
    except (OSError, ValueError) as exc:
        print(f"gate: cannot read trajectory files: {exc}", file=sys.stderr)
        return 2
    return run_gate(baseline, current, args.benches, args.max_regression)


if __name__ == "__main__":
    raise SystemExit(main())
