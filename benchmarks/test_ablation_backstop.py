"""Benchmark: regenerate ablation backstop (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_ablation_backstop
from benchmarks.conftest import run_experiment


def test_ablation_backstop(benchmark, small_scale):
    """ablation backstop: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_ablation_backstop, small_scale)

    # Disabling the backstop policy reduces offload.
    assert (out.metrics["backstop_on_efficiency"]
            >= out.metrics["backstop_off_efficiency"])
