"""Benchmark: regenerate ablation locality (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_ablation_locality
from benchmarks.conftest import run_experiment


def test_ablation_locality(benchmark, small_scale):
    """ablation locality: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_ablation_locality, small_scale)

    # Locality-aware selection keeps traffic local at every radius.
    assert out.metrics["locality_gain"] > 0.02
    assert (out.metrics["locality_aware_intra_region"]
            > out.metrics["random_intra_region"] + 0.2)
