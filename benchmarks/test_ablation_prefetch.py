"""Benchmark: the predictive-placement ablation (paper's non-feature)."""

from __future__ import annotations

from repro.experiments import exp_ablation_prefetch
from benchmarks.conftest import run_experiment


def test_ablation_prefetch(benchmark):
    """Prefetching hot objects into thin regions helps a cold start."""
    out = run_experiment(benchmark, exp_ablation_prefetch, "small")
    assert out.metrics["placement_gain"] > 0.0
    assert out.metrics["cold_prefetch_gb"] == 0.0
    assert out.metrics["placement_prefetch_gb"] > 0.0
