"""Benchmark: regenerate baselines (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_baselines
from benchmarks.conftest import run_experiment


def test_baselines(benchmark, small_scale):
    """baselines: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_baselines, small_scale)

    # The design-space contrast: only the hybrid offloads while keeping
    # infrastructure-grade completion.
    assert out.metrics["infra_offload"] == 0.0
    assert out.metrics["hybrid_offload"] > 0.15
    assert out.metrics["hybrid_completion"] > 0.85
