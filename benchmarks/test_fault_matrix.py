"""Benchmark: the fault-matrix sweep (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_fault_matrix
from benchmarks.conftest import run_experiment


def test_fault_matrix(benchmark):
    """fault matrix: each scenario vs the no-fault baseline (§3.8, §5.2).

    Runs its own reduced traces (one per matrix cell) rather than the
    shared small-scale fixture, so the measured time is the whole sweep.
    """
    out = run_experiment(benchmark, exp_fault_matrix, "small")

    # The baseline window is healthy, per the §5.2 outcome numbers.
    assert out.metrics["baseline_completed"] >= 0.9
    # A total control-plane blackout visibly hurts: downloads in the fault
    # window complete less often or fall back to edge-only delivery.
    assert (out.metrics["control_plane_blackout_completion_delta"] < 0
            or out.metrics["control_plane_blackout_fallback_delta"] > 0)
    # Faults that only degrade the data path must not break completion.
    assert out.metrics["edge_brownout_completed"] >= 0.9
    assert out.metrics["churn_storm_completed"] >= 0.9
