"""Benchmark: regenerate fig10 (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_fig10
from benchmarks.conftest import run_experiment


def test_fig10(benchmark, small_scale):
    """fig10: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_fig10, small_scale)

    # Heavy uploaders are the balanced ones.
    assert out.metrics["heavy_mean_imbalance"] <= out.metrics["light_mean_imbalance"] + 0.3
