"""Benchmark: regenerate fig11 (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_fig11
from benchmarks.conftest import run_experiment


def test_fig11(benchmark, small_scale):
    """fig11: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_fig11, small_scale)

    if out.metrics["pairs"] > 0:
        assert out.metrics["mean_pair_imbalance"] < 2.0
