"""Benchmark: regenerate fig12 (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_fig12
from benchmarks.conftest import run_experiment


def test_fig12(benchmark, mobility_scale):
    """fig12: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_fig12, mobility_scale)

    # A small minority of installations show rollback trees.
    assert 0.0 < out.metrics["nonlinear_fraction"] < 0.08
    assert out.metrics["linear_fraction"] > 0.9
