"""Benchmark: regenerate fig2 (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_fig2
from benchmarks.conftest import run_experiment


def test_fig2(benchmark, small_scale):
    """fig2: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_fig2, small_scale)

    # Figure 2: Europe ~35%, North America ~27% of peers.
    assert 0.20 <= out.metrics["europe_share"] <= 0.50
    assert 0.10 <= out.metrics["north_america_share"] <= 0.40
    assert out.metrics["locations"] > 30
