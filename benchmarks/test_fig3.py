"""Benchmark: regenerate fig3 (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_fig3
from benchmarks.conftest import run_experiment


def test_fig3(benchmark, small_scale):
    """fig3: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_fig3, small_scale)

    # (a) p2p requests biased large; (b) power law; (c) diurnal swing.
    assert out.metrics["p2p_large_request_fraction"] > 0.6
    assert out.metrics["popularity_slope"] < -0.4
    assert out.metrics["diurnal_peak_to_trough"] > 1.5
