"""Benchmark: regenerate fig4 (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_fig4
from benchmarks.conftest import run_experiment


def test_fig4(benchmark, small_scale):
    """fig4: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_fig4, small_scale)

    # Peer-assisted downloads run at the same order of magnitude as
    # edge-only ones — somewhat slower in the paper; at bench scale the
    # pooled ratio just has to stay in a sane band, with both classes at
    # multiple Mbps.
    ratio = out.metrics.get("median_speed_ratio_p2p_over_edge")
    if ratio is not None:
        assert 0.2 < ratio < 2.0
        assert out.metrics["median_edge_mbps"] > 1.0
        assert out.metrics["median_p2p_mbps"] > 1.0
