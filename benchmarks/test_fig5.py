"""Benchmark: regenerate fig5 (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_fig5
from benchmarks.conftest import run_experiment


def test_fig5(benchmark, small_scale):
    """fig5: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_fig5, small_scale)

    # Efficiency rises with registered copies.
    assert out.metrics["monotone_gain"] > 0.1
    assert out.metrics["high_copy_efficiency"] > 0.5
