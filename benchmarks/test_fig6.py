"""Benchmark: regenerate fig6 (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_fig6
from benchmarks.conftest import run_experiment


def test_fig6(benchmark, small_scale):
    """fig6: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_fig6, small_scale)

    # Zero candidates -> zero efficiency; tens of candidates -> high.
    assert out.metrics.get("zero_peer_efficiency", 0.0) < 0.05
    assert out.metrics["saturation_efficiency"] > 0.6
