"""Benchmark: regenerate fig7 (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_fig7
from benchmarks.conftest import run_experiment


def test_fig7(benchmark, small_scale):
    """fig7: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_fig7, small_scale)

    # Larger downloads are terminated more often.
    assert out.metrics["monotone_gap"] > 0.0
    assert out.metrics["small_file_pause_rate"] < 0.05
