"""Benchmark: regenerate fig8 (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_fig8
from benchmarks.conftest import run_experiment


def test_fig8(benchmark, small_scale):
    """fig8: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_fig8, small_scale)

    assert out.metrics["countries"] >= 3
