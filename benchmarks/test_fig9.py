"""Benchmark: regenerate fig9 (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_fig9
from benchmarks.conftest import run_experiment


def test_fig9(benchmark, small_scale):
    """fig9: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_fig9, small_scale)

    # Heavy-tailed upload distribution; some intra-AS traffic.
    assert out.metrics["heavy_as_share"] < 0.6
    assert out.metrics["observed_ases"] > 20
