"""Benchmark: regenerate the §5.3 corporate-LAN extension experiment."""

from __future__ import annotations

from repro.experiments import exp_lan_updates
from benchmarks.conftest import run_experiment


def test_lan_updates(benchmark):
    """LAN sites keep update bytes in the building and speed up the push."""
    out = run_experiment(benchmark, exp_lan_updates, "small")
    assert out.metrics["lan_site_local"] > 0.5
    assert out.metrics["nolan_site_local"] == 0.0
    assert out.metrics["lan_median_minutes"] <= out.metrics["nolan_median_minutes"]
    assert out.metrics["lan_offload"] > 0.5
