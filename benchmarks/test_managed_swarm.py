"""Benchmark: the §7 Antfarm comparison (managed vs naive seeding)."""

from __future__ import annotations

from repro.experiments import exp_managed_swarm
from benchmarks.conftest import run_experiment


def test_managed_swarm(benchmark):
    """Coordinated seeding must not lose to the naive equal split."""
    out = run_experiment(benchmark, exp_managed_swarm, "small")
    assert out.metrics["managed_completed"] >= out.metrics["equal_split_completed"]
    if out.metrics["managed_completed"] == out.metrics["equal_split_completed"]:
        assert (out.metrics["managed_mean_minutes"]
                <= out.metrics["equal_split_mean_minutes"] * 1.10)
