"""Benchmark: regenerate mobility (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_mobility
from benchmarks.conftest import run_experiment


def test_mobility(benchmark, mobility_scale):
    """mobility: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_mobility, mobility_scale)

    # §6.2: ~80% single-AS, ~77% within 10 km.
    assert 0.6 <= out.metrics["one_as"] <= 0.95
    assert 0.5 <= out.metrics["within_10km"] <= 0.95
    assert out.metrics["two_as"] > out.metrics["more_as"] * 0.5
