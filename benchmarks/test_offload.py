"""Benchmark: regenerate offload (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_offload
from benchmarks.conftest import run_experiment


def test_offload(benchmark, small_scale):
    """offload: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_offload, small_scale)

    # §5.1: a small file fraction carries an outsized byte share, and
    # peer-assisted downloads get most bytes from peers.
    assert out.metrics["p2p_file_fraction"] < 0.05
    assert out.metrics["p2p_byte_share"] > 5 * out.metrics["p2p_file_fraction"]
    assert out.metrics["mean_peer_efficiency"] > 0.5
    assert out.metrics["byte_weighted_efficiency"] > 0.5
