"""Benchmark: regenerate reliability (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_reliability
from benchmarks.conftest import run_experiment


def test_reliability(benchmark, small_scale):
    """reliability: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_reliability, small_scale)

    # §5.2: both classes complete the vast majority; p2p pauses more.
    assert out.metrics["infra_completed"] > 0.9
    assert out.metrics["p2p_completed"] > 0.75
    assert out.metrics["p2p_aborted"] >= out.metrics["infra_aborted"]
