"""Benchmarks for the process-parallel orchestrator.

The speedup benchmark needs real cores: a pool on a 1-2 core CI box
serializes anyway (and pays fork overhead for it), so it is skipped below
4 CPUs rather than asserting a number the machine cannot produce.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.runner import Orchestrator, ResultCache, run_scenario_artifact
from repro.workload import (
    CatalogConfig, DemandConfig, PopulationConfig, ScenarioConfig,
)

SEED = 42


def _bench_config(seed: int) -> ScenarioConfig:
    """A ~1s scenario: long enough that pool speedup beats fork overhead."""
    return ScenarioConfig(
        seed=seed,
        duration_days=1.5,
        population=PopulationConfig(n_peers=400),
        demand=DemandConfig(total_downloads=450, duration_days=1.5),
        catalog=CatalogConfig(objects_per_provider=15),
    )


def test_warm_cache_study_is_instant(benchmark, tmp_path):
    """A warm on-disk cache resolves a batch without simulating anything."""
    cache = ResultCache(tmp_path / "cache")
    configs = [_bench_config(SEED + i) for i in range(3)]
    Orchestrator(cache=cache).run_many(configs)  # warm the disk

    def warm_resolve():
        # Fresh memory each round: every hit pays the disk + unpickle cost.
        return Orchestrator(cache=cache).run_many(configs)

    artifacts = benchmark(warm_resolve)
    assert len(artifacts) == 3


def test_fingerprint_throughput(benchmark):
    config = _bench_config(SEED)
    from repro.runner import fingerprint_config

    fp = benchmark(fingerprint_config, config)
    assert len(fp) == 64


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="pool speedup needs >= 4 real cores")
def test_parallel_speedup_at_least_2x():
    """4 distinct scenarios across 4 workers must beat serial by >= 2x.

    Not a pytest-benchmark fixture: the comparison is between two wall
    clocks measured in the same process, once each (the scenarios are
    deterministic, so variance comes only from the machine).
    """
    from repro.runner import parallel_map

    configs = [_bench_config(SEED + i) for i in range(4)]

    started = time.perf_counter()
    serial = parallel_map(run_scenario_artifact, configs, jobs=1)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    pooled = parallel_map(run_scenario_artifact, configs, jobs=4)
    pooled_s = time.perf_counter() - started

    assert [a.fingerprint for a in serial] == [a.fingerprint for a in pooled]
    assert pooled_s < serial_s / 2.0, (
        f"expected >= 2x speedup, got {serial_s / pooled_s:.2f}x "
        f"(serial {serial_s:.1f}s, pooled {pooled_s:.1f}s)")
