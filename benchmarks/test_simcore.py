"""Sim-core benchmarks: the batched allocation engine vs the reference.

Two workloads, both run under the batched (default) and the reference
per-mutation settlement policy (``SystemConfig.flow_batching=False`` /
``FlowNetwork(batching=False)``):

* a **swarm-burst microbenchmark** driving a raw :class:`FlowNetwork`
  with the exact pattern the engine targets — same-timestamp bursts of
  flow starts/aborts/cap changes (swarm connection churn) plus periodic
  capacity waves over half the links (region-style faults);
* an **end-to-end scenario** through :mod:`repro.workload` with a fault
  schedule (link-degradation waves, churn storms, an edge brownout).

Both policies must produce identical completion/abort counts — the
benchmark doubles as a coarse equivalence check (the fine-grained one
lives in ``tests/net/test_flow_batching.py``).  A third workload pits
the numpy water-filling kernel against the python reference at a scale
where components are large enough for the arrays to pay off.  Results
land in the ``BENCH_simcore.json`` trajectory at the repo root, which
the CI bench gate checks against the committed baseline on every PR.
"""

from __future__ import annotations

import gc
import random
import time

import pytest

from benchmarks._results import record_results
from repro.core.config import SystemConfig
from repro.faults.spec import EdgeBrownout, LinkDegradation, PeerChurnStorm
from repro.net.flows import FlowNetwork, Resource
from repro.net.links import mbps
from repro.net.sim import Simulator
from repro.workload import (
    CatalogConfig, DemandConfig, PopulationConfig, ScenarioConfig, run_scenario,
)
from repro.workload.devices import desktop_only

#: Collected by the tests, dumped once at module teardown.
RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _dump_results():
    yield
    record_results(RESULTS)


def _record(name: str, batched, reference) -> None:
    """Store a batched/reference pair plus the derived ratios."""
    b_wall, b_stats = batched
    r_wall, r_stats = reference
    RESULTS[name] = {
        "batched": {"wall_seconds": round(b_wall, 3), **b_stats},
        "reference": {"wall_seconds": round(r_wall, 3), **r_stats},
        "waterfill_ratio": round(
            r_stats["waterfill_calls"] / b_stats["waterfill_calls"], 2
        ),
        "wall_ratio": round(r_wall / b_wall, 2),
    }


# ------------------------------------------------------------- swarm bursts


def _run_swarm_burst(batching: bool, *, kernel: str = "numpy", n: int = 120,
                     horizon: float = 3600.0, starts: int = 10,
                     aborts: int = 6, caps: int = 8):
    """A raw-FlowNetwork swarm: bursty churn plus capacity waves.

    Every 20 s one event aborts up to ``aborts`` flows, starts ``starts``,
    and re-caps ``caps`` — the same-timestamp mutation burst a swarm tick
    produces.  Every 20 min a wave degrades half the downlinks in a single
    event and restores them 10 min later (a region fault).  The RNG stream
    is consumed identically under both policies and both kernels, so the
    schedules are the same workload whichever engine runs it.
    """
    sim = Simulator()
    net = FlowNetwork(sim, batching=batching, kernel=kernel)
    rng = random.Random(0xBEEF)
    downs, ups = [], []
    for i in range(n):
        down = rng.uniform(4.0, 40.0)
        downs.append(Resource(f"peer{i}/down", mbps(down)))
        ups.append(Resource(f"peer{i}/up", mbps(down / rng.uniform(4.0, 12.0))))
    active: list = []

    def burst() -> None:
        for _ in range(aborts):
            if active:
                net.abort_flow(active.pop(rng.randrange(len(active))))
        for _ in range(starts):
            d = rng.randrange(n)
            u = rng.randrange(n)
            if u == d:
                u = (u + 1) % n
            active.append(net.start_flow(
                (downs[d], ups[u]), size=rng.uniform(20.0, 200.0) * 1e6
            ))
        for _ in range(caps):
            if active:
                net.set_cap(rng.choice(active), mbps(rng.uniform(0.5, 8.0)))

    originals = [r.capacity for r in downs]

    def wave(restore: bool) -> None:
        for i in range(0, n, 2):
            cap = originals[i] if restore else originals[i] * 0.3
            net.set_resource_capacity(downs[i], cap)

    for t in range(0, int(horizon), 20):
        sim.schedule_at(float(t), burst)
    for t in range(600, int(horizon), 1200):
        sim.schedule_at(float(t), lambda: wave(False))
        sim.schedule_at(float(t + 600), lambda: wave(True))

    started = time.perf_counter()
    sim.run(until=horizon)
    wall = time.perf_counter() - started
    stats = dict(net.stats.as_dict())
    stats["completed"] = net.completed_count
    stats["aborted"] = net.aborted_count
    return wall, stats


def test_swarm_burst_batching():
    """Burst-heavy swarm: batching must at least halve water-filling work."""
    b_wall, b_stats = _run_swarm_burst(batching=True)
    r_wall, r_stats = _run_swarm_burst(batching=False)
    _record("swarm_burst", (b_wall, b_stats), (r_wall, r_stats))

    # Identical workload, identical outcome under both policies.
    assert b_stats["completed"] == r_stats["completed"]
    assert b_stats["aborted"] == r_stats["aborted"]
    assert b_stats["mutations"] == r_stats["mutations"]

    # The acceptance bar: >= 2x fewer water-filling invocations and a
    # wall-clock win (the measured margin is ~4.5x / ~4x; asserting the
    # bar, not the margin, keeps the test robust on slow CI machines).
    assert r_stats["waterfill_calls"] >= 2 * b_stats["waterfill_calls"]
    assert b_wall < r_wall

    # Heap maintenance: skipping unchanged-rate re-pushes must dominate.
    assert b_stats["heap_skips"] > b_stats["heap_pushes"]


def test_swarm_burst_kernels():
    """Vectorized water-filling: exact parity and >= 1.5x at swarm scale.

    A denser burst (300 peers, 27 starts per tick) keeps the settled
    components large enough that the numpy kernel's per-round fixed cost
    amortizes; the measured margin is ~2x, the asserted bar is the
    acceptance criterion.  Identical completion/abort/round counters are
    the coarse equivalence check — the exact per-rate one lives in
    ``tests/net/test_kernels.py``.
    """
    scale = dict(n=300, horizon=1800.0, starts=27, aborts=18, caps=12)
    p_wall, p_stats = _run_swarm_burst(batching=True, kernel="python", **scale)
    v_wall, v_stats = _run_swarm_burst(batching=True, kernel="numpy", **scale)
    speedup = p_wall / v_wall
    RESULTS["swarm_burst_kernels"] = {
        "numpy": {"wall_seconds": round(v_wall, 3),
                  "waterfill_rounds": v_stats["waterfill_rounds"]},
        "python": {"wall_seconds": round(p_wall, 3),
                   "waterfill_rounds": p_stats["waterfill_rounds"]},
        "completed": v_stats["completed"],
        "aborted": v_stats["aborted"],
        "speedup": round(speedup, 2),
        **{k: v for k, v in scale.items()},
    }

    # Same workload, same trajectory — byte-identical settle results mean
    # every derived counter matches exactly.
    assert v_stats["completed"] == p_stats["completed"]
    assert v_stats["aborted"] == p_stats["aborted"]
    assert v_stats["mutations"] == p_stats["mutations"]
    assert v_stats["waterfill_rounds"] == p_stats["waterfill_rounds"]

    assert speedup >= 1.5, (
        f"numpy kernel only {speedup:.2f}x vs python (bar: 1.5x)"
    )


# ------------------------------------------------------- end-to-end scenario

_HOUR = 3600.0

#: Link-degradation waves + churn storms + an edge brownout over half a
#: simulated day: the fault-injection half of the burst story.
_FAULTS = tuple(
    LinkDegradation(name=f"squeeze{i}", start=(1.5 + 2.5 * i) * _HOUR,
                    duration=1.5 * _HOUR, fraction=0.6,
                    down_factor=0.3, up_factor=0.3)
    for i in range(4)
) + (
    PeerChurnStorm(name="storm", start=4 * _HOUR, duration=2 * _HOUR,
                   fraction=0.5),
    EdgeBrownout(name="brownout", start=8 * _HOUR, duration=2 * _HOUR,
                 fraction=1.0, capacity_factor=0.05),
)


def _scenario_config(batching: bool) -> ScenarioConfig:
    return ScenarioConfig(
        seed=7,
        duration_days=0.5,
        system=SystemConfig(flow_batching=batching),
        population=PopulationConfig(n_peers=300),
        demand=DemandConfig(total_downloads=400, duration_days=0.5),
        catalog=CatalogConfig(objects_per_provider=12),
        faults=_FAULTS,
    )


def _run_scenario_mode(batching: bool):
    started = time.perf_counter()
    result = run_scenario(_scenario_config(batching))
    wall = time.perf_counter() - started
    stats = result.system.stats()
    flat = dict(stats.flows.as_dict())
    flat["completed"] = stats.flows_completed
    flat["aborted"] = stats.flows_aborted
    flat["events_processed"] = stats.events_processed
    return wall, flat


def test_scenario_batching():
    """Full workload + faults: deterministic parity and a wall-clock win.

    End to end, chunk completions (one settlement either way) dilute the
    burst savings, so the invocation ratio here is lower than the swarm
    microbenchmark's — the 2x acceptance bar is asserted there; here we
    require parity and a strict reduction in both invocations and time.
    """
    b_wall, b_stats = _run_scenario_mode(batching=True)
    r_wall, r_stats = _run_scenario_mode(batching=False)
    _record("workload_faults", (b_wall, b_stats), (r_wall, r_stats))

    # Both engines must simulate the same run.
    assert b_stats["completed"] == r_stats["completed"]
    assert b_stats["aborted"] == r_stats["aborted"]
    assert b_stats["mutations"] == r_stats["mutations"]

    assert r_stats["waterfill_calls"] > b_stats["waterfill_calls"] * 1.2
    assert b_wall < r_wall


# ------------------------------------------------------- invariant auditing


def _swarm_burst_wall(*, audited: bool, rounds: int = 3) -> float:
    """Min-of-N wall time for the swarm burst, with/without an audit hook.

    The hook mirrors what :class:`repro.invariants.InvariantAuditor` costs
    this raw-simulator workload: the per-event countdown branch plus a
    callback at the default cadence (there is no system here, so the
    callback body is empty — the checkers' own cost is bounded separately
    by the scenario comparison below).
    """
    best = float("inf")
    for _ in range(rounds):
        sim = Simulator()
        if audited:
            sim.set_audit_hook(lambda: None, every_events=20_000)
        net = FlowNetwork(sim, batching=True)
        rng = random.Random(0xBEEF)
        res = [Resource(f"p{i}", mbps(rng.uniform(4.0, 40.0)))
               for i in range(120)]
        active: list = []

        def burst() -> None:
            for _ in range(6):
                if active:
                    net.abort_flow(active.pop(rng.randrange(len(active))))
            for _ in range(10):
                a, b = rng.randrange(120), rng.randrange(120)
                if a == b:
                    b = (b + 1) % 120
                active.append(net.start_flow(
                    (res[a], res[b]), size=rng.uniform(20.0, 200.0) * 1e6))

        for t in range(0, 3600, 20):
            sim.schedule_at(float(t), burst)
        started = time.perf_counter()
        sim.run(until=3600.0)
        best = min(best, time.perf_counter() - started)
    return best


def test_audit_hook_overhead_swarm_burst():
    """Observe-mode plumbing must cost the hot loop < 5% (acceptance bar)."""
    base = _swarm_burst_wall(audited=False)
    audited = _swarm_burst_wall(audited=True)
    overhead = audited / base - 1.0
    RESULTS["audit_hook_overhead"] = {
        "base_wall_seconds": round(base, 3),
        "audited_wall_seconds": round(audited, 3),
        "overhead_fraction": round(overhead, 4),
    }
    assert overhead < 0.05, f"audit hook costs {overhead:.1%} (budget 5%)"


def test_reputation_overhead_scenario():
    """The adversarial defense must cost an honest swarm < 5% wall clock.

    Defense on over a fully honest population is the worst case for
    overhead accounting: every accepted UsageReport is ingested, every
    ``select_peers`` call ranks candidates through the reputation engine,
    and nothing is ever quarantined — pure bookkeeping, zero payoff.  The
    swarm-burst fault workload from the batching comparison doubles as
    the stressor (connection churn means many reports and many queries).
    """
    def run_mode(defense: bool) -> float:
        config = _scenario_config(batching=True)
        config = ScenarioConfig(**{
            **config.__dict__,
            "system": config.system.with_defense(enabled=defense),
        })
        started = time.perf_counter()
        run_scenario(config)
        return time.perf_counter() - started

    # Interleaved min-of-N, same rationale as the observe-mode bench.
    off_wall = on_wall = float("inf")
    for _ in range(3):
        off_wall = min(off_wall, run_mode(False))
        on_wall = min(on_wall, run_mode(True))
    overhead = on_wall / off_wall - 1.0
    RESULTS["reputation_overhead"] = {
        "off_wall_seconds": round(off_wall, 3),
        "defense_wall_seconds": round(on_wall, 3),
        "overhead_fraction": round(overhead, 4),
    }
    assert overhead < 0.05, f"reputation engine costs {overhead:.1%} (budget 5%)"


def test_device_tier_assignment_overhead():
    """Tier assignment must cost a population build < 5% wall clock.

    ``desktop_only()`` is the null mix: every class draw lands on a
    desktop whose knobs match the ``device=None`` defaults (no uplink
    cap, no cache budget, default mobility, zero selection weight), so
    the two builds differ only by the tier machinery itself — the
    per-peer class pick, the always-on OR draw, and the device column.

    The build is the right place to gate: the class draws consume extra
    RNG, so two whole *scenarios* diverge into different (statistically
    equivalent) traces whose solver workloads differ by more than the
    machinery — a wall-clock gate there would measure trace drift.  The
    population build does identical per-peer work plus the tier leaf,
    peer for peer, at either setting.
    """
    from repro.core.system import NetSessionSystem
    from repro.workload.catalog import build_catalog
    from repro.workload.population import build_population

    def build_mode(tiered: bool) -> float:
        system = NetSessionSystem(seed=13)
        catalog = build_catalog(
            random.Random(13 ^ 0xCA7), CatalogConfig(objects_per_provider=4))
        for provider in catalog.providers:
            system.register_provider(provider)
        cfg = PopulationConfig(
            n_peers=20_000, store="columnar",
            device=desktop_only() if tiered else None)
        # The build schedules ~1M session events; fence the collector so
        # a GC pause landing in one arm doesn't masquerade as overhead.
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            build_population(system, catalog.providers, cfg)
            return time.perf_counter() - started
        finally:
            gc.enable()

    # Interleaved min-of-N, alternating which mode goes first each round:
    # allocator state drifts monotonically over the process lifetime, so a
    # fixed order would bill the drift to whichever mode runs second.
    off_wall = on_wall = float("inf")
    for i in range(6):
        order = (False, True) if i % 2 == 0 else (True, False)
        for tiered in order:
            wall = build_mode(tiered)
            if tiered:
                on_wall = min(on_wall, wall)
            else:
                off_wall = min(off_wall, wall)
    overhead = on_wall / off_wall - 1.0
    RESULTS["device_tier_assignment_overhead"] = {
        "peers": 20_000,
        "off_wall_seconds": round(off_wall, 3),
        "tiered_wall_seconds": round(on_wall, 3),
        "overhead_fraction": round(overhead, 4),
    }
    assert overhead < 0.05, f"tier assignment costs {overhead:.1%} (budget 5%)"


def test_audit_observe_overhead_scenario():
    """End-to-end observe-mode cost (checkers included) stays small.

    The sampled checkers are deliberately bounded (``_SAMPLED_HEAP_SCAN``,
    final-only reconciliation), so a full scenario under observe mode must
    stay within a noise-tolerant envelope of the off-mode run — and audit
    clean while it's at it.
    """
    def run_mode(mode: str):
        config = _scenario_config(batching=True)
        config = ScenarioConfig(**{
            **config.__dict__,
            "system": config.system.with_invariants(mode=mode),
        })
        started = time.perf_counter()
        result = run_scenario(config)
        return time.perf_counter() - started, result

    # Interleaved min-of-N: single-shot wall clocks on shared CI workers
    # swing by >20%, far more than the effect under measurement.
    off_wall = obs_wall = float("inf")
    obs_result = None
    for _ in range(3):
        wall, _ = run_mode("off")
        off_wall = min(off_wall, wall)
        wall, result = run_mode("observe")
        if wall < obs_wall:
            obs_wall, obs_result = wall, result
    overhead = obs_wall / off_wall - 1.0
    RESULTS["audit_observe_overhead"] = {
        "off_wall_seconds": round(off_wall, 3),
        "observe_wall_seconds": round(obs_wall, 3),
        "overhead_fraction": round(overhead, 4),
        "audits": obs_result.system.auditor.audits,
    }
    assert obs_result.system.auditor.error_count() == 0
    # Generous envelope: the measured overhead is ~1-5%; the assert exists
    # to catch an accidentally unbounded checker, not to pin the margin.
    assert overhead < 0.20, f"observe mode costs {overhead:.1%}"
