"""Benchmark: regenerate table1 (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_table1
from benchmarks.conftest import run_experiment


def test_table1(benchmark, small_scale):
    """table1: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_table1, small_scale)

    assert out.metrics["ips_per_guid"] > 1.0       # IPs outnumber GUIDs
    assert out.metrics["countries"] >= 20
    assert out.metrics["downloads"] > 0
