"""Benchmark: regenerate table2 (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_table2
from benchmarks.conftest import run_experiment


def test_table2(benchmark, small_scale):
    """table2: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_table2, small_scale)

    # Regional mixes should track Table 2 within a few percentage points.
    assert out.metrics["mean_abs_error_pp"] < 8.0
