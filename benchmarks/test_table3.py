"""Benchmark: regenerate table3 (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_table3
from benchmarks.conftest import run_experiment


def test_table3(benchmark, small_scale):
    """table3: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_table3, small_scale)

    # ">99% of the peers keep their initial setting"
    assert out.metrics["keep_initial_fraction"] > 0.97
