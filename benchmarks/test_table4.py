"""Benchmark: regenerate table4 (see DESIGN.md experiment index)."""

from __future__ import annotations

from repro.experiments import exp_table4
from benchmarks.conftest import run_experiment


def test_table4(benchmark, small_scale):
    """table4: shape assertions against the paper's findings."""
    out = run_experiment(benchmark, exp_table4, small_scale)

    assert out.metrics["mean_abs_error_pp"] < 15.0
