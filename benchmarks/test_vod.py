"""VoD playback-loop benchmark: concurrent streaming sessions at scale.

A prime-time burst of viewers all streaming the same episode exercises
the per-tick playback loop (urgency scheduling, buffer accounting,
rebuffer detection) on top of the ordinary swarm machinery.  The run
must stay deterministic and every viewer must finish; the measured wall
time and per-stream event cost land in the ``BENCH_simcore.json``
trajectory next to the flow-engine numbers so the CI bench gate tracks
both engines.
"""

from __future__ import annotations

import time

import pytest

from benchmarks._results import record_results
from repro.analysis.qoe import qoe_summary
from repro.core import ContentObject, ContentProvider, NetSessionSystem
from repro.core.peer import CacheEntry
from repro.core.streaming import start_streaming

MB = 1024 * 1024
HOUR = 3600.0

RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _dump_results():
    yield
    record_results(RESULTS)


def _run_playback(n_viewers: int, *, seed: int = 11):
    """Boot a seeded swarm, then stagger ``n_viewers`` streams into it."""
    system = NetSessionSystem(seed=seed)
    country = system.world.by_code["DE"]
    provider = ContentProvider(cp_code=8001, name="CatchUpTV")
    video = ContentObject("vod/bench/ep-00.mp4", 180 * MB, provider,
                          p2p_enabled=True)
    system.publish(video)
    for _ in range(15):
        seeder = system.create_peer(country=country, uploads_enabled=True)
        seeder.cache[video.cid] = CacheEntry(cid=video.cid, completed_at=0.0)
        seeder.boot()
    viewers = []
    for _ in range(n_viewers):
        viewer = system.create_peer(country=country, uploads_enabled=True)
        viewer.boot()
        viewers.append(viewer)
    bitrate = 0.5 * MB  # 180 MB episode => 6 min of playback
    for i, viewer in enumerate(viewers):
        system.sim.schedule(
            1.0 + 2.0 * i,
            lambda v=viewer: start_streaming(v, video, bitrate=bitrate))

    started = time.perf_counter()
    system.run(until=2 * HOUR)
    wall = time.perf_counter() - started

    stats = system.stats()
    return wall, {
        "streams_started": stats.vod.streams_started,
        "playbacks_finished": stats.vod.playbacks_finished,
        "events_processed": stats.events_processed,
        "qoe": qoe_summary(system.logstore),
    }


def test_vod_playback_burst():
    """Sixty overlapping streams: everyone finishes, cost is recorded."""
    n = 60
    wall, stats = _run_playback(n)
    RESULTS["vod_playback"] = {
        "wall_seconds": round(wall, 3),
        "streams": n,
        "events_per_stream": round(stats["events_processed"] / n, 1),
        "streams_started": stats["streams_started"],
        "playbacks_finished": stats["playbacks_finished"],
        "rebuffer_ratio": round(stats["qoe"]["rebuffer_ratio"], 4),
        "startup_p90": round(stats["qoe"]["startup_p90"], 2),
        "peer_offload": round(stats["qoe"]["peer_offload"], 4),
    }

    assert stats["streams_started"] == n
    assert stats["playbacks_finished"] == n, "a viewer never finished"
    # The seeded swarm must contribute; the exact share is uplink-bound
    # (60 x 0.5 MB/s of demand against residential uplinks), so the edge
    # backstop legitimately carries the bulk of a burst this sharp.
    assert stats["qoe"]["peer_offload"] > 0.05


def test_vod_playback_is_deterministic():
    """Same seed, same trace: wall time aside, the runs must be identical."""
    _, a = _run_playback(20, seed=23)
    _, b = _run_playback(20, seed=23)
    assert a["qoe"] == b["qoe"]
    assert a["events_processed"] == b["events_processed"]
