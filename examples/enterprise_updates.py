#!/usr/bin/env python3
"""Scenario: pushing a software update to office fleets (paper §5.3).

The paper notes that finding content "within their local network, e.g., in
a corporate LAN" was rare in 2012 "but this could change, e.g., when
NetSession is used to distribute large software updates."  This example
builds that future: five offices of sixteen machines each receive an
800 MB update.  With LAN-aware peer selection, the first machine in each
office pulls from the CDN and the rest copy it across the switch.

Run:  python examples/enterprise_updates.py
"""

import random

from repro.analysis.traffic import site_local_share
from repro.core import ContentObject, ContentProvider, NetSessionSystem
from repro.net.lan import LanSite

MB = 1024 * 1024
HOUR = 3600.0


def main() -> None:
    system = NetSessionSystem(seed=5)
    vendor = ContentProvider(cp_code=4001, name="ITVendor",
                             upload_default_rate=1.0)
    update = ContentObject("itvendor/update-2026.07.bin", 800 * MB, vendor,
                           p2p_enabled=True)
    system.publish(update)

    rng = random.Random(5)
    germany = system.world.by_code["DE"]
    site_of_guid: dict[str, str] = {}
    offices = []
    for index in range(5):
        site = LanSite(f"office-{index}")
        members = []
        for _ in range(16):
            machine = system.create_peer(country=germany, uploads_enabled=True)
            machine.lan = site
            site.add_member(machine.guid)
            site_of_guid[machine.guid] = site.site_id
            machine.boot()
            members.append(machine)
        offices.append(members)

    print(f"{len(offices)} offices x {len(offices[0])} machines; "
          f"update {update.size / MB:.0f} MB")

    for members in offices:
        for machine in members:
            delay = rng.uniform(0.0, HOUR)
            system.sim.schedule(
                delay, lambda m=machine: m.start_download(update))

    system.run(until=10 * HOUR)
    system.finalize_open_downloads()

    records = [r for r in system.logstore.downloads if r.outcome == "completed"]
    durations = sorted((r.ended_at - r.started_at) / 60 for r in records)
    edge = sum(r.edge_bytes for r in records)
    peers = sum(r.peer_bytes for r in records)
    print(f"completed: {len(records)}/{sum(map(len, offices))}")
    print(f"median install time: {durations[len(durations) // 2]:.1f} min")
    print(f"offloaded from the CDN: {peers / (edge + peers):.1%}")
    print(f"bytes that never left an office LAN: "
          f"{site_local_share(system.logstore, site_of_guid):.1%}")
    print(f"CDN egress paid for: {edge / MB:,.0f} MB "
          f"(vs {sum(r.total_bytes for r in records) / MB:,.0f} MB delivered)")


if __name__ == "__main__":
    main()
