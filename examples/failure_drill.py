#!/usr/bin/env python3
"""Scenario: the §3.8 robustness story, driven by the fault subsystem.

NetSession is built from soft state and fate sharing: CNs can die (peers
reconnect), DNs can die (RE-ADD rebuilds the directory from the peers), the
whole control plane can die (downloads fall back to the edge), and
compromised clients can lie about usage (the accounting cross-check filters
them).  This drill declares the failures as :class:`FaultSpec` objects on a
timeline, arms a :class:`FaultInjector`, and lets the engine apply and
revert them deterministically while a download is in flight.

Run:  python examples/failure_drill.py
"""

from repro.core import ContentObject, ContentProvider, NetSessionSystem
from repro.core.peer import CacheEntry
from repro.faults import (
    CNOutage, ControlPlaneBlackout, DNWipe, FaultInjector,
)

MB = 1024 * 1024


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    system = NetSessionSystem(seed=23)
    provider = ContentProvider(cp_code=3001, name="DrillCo")
    obj = ContentObject("drillco/image.bin", 700 * MB, provider,
                        p2p_enabled=True)
    system.publish(obj)

    germany = system.world.by_code["DE"]
    for _ in range(12):
        s = system.create_peer(country=germany, uploads_enabled=True)
        s.cache[obj.cid] = CacheEntry(obj.cid, completed_at=0.0)
        s.boot()
    downloader = system.create_peer(country=germany, uploads_enabled=True)
    downloader.boot()

    # The whole §3.8 gauntlet, declared up front: a CN outage while the
    # download ramps up, a DN wipe (RE-ADD repopulates the directory), a
    # rolling-upgrade-style full CN restart, and finally a total blackout.
    HOUR = 3600.0
    specs = (
        CNOutage("cn-crash", start=20.0, duration=60.0, fraction=0.34),
        DNWipe("dn-crash", start=120.0, duration=0.0, re_add=True),
        CNOutage("upgrade-push", start=300.0, duration=120.0, fraction=1.0),
        ControlPlaneBlackout("total-outage", start=7 * HOUR, duration=6 * HOUR),
    )
    injector = FaultInjector(system, specs, seed=23)
    injector.arm()

    banner("download starts (hybrid delivery)")
    session = downloader.start_download(obj)
    system.run(until=20.0)
    print(f"progress {session.progress:.0%}, "
          f"{sum(1 for c in session.peer_conns if not c.closed)} peer connections")

    banner("connection nodes crash (cn-crash fault)")
    system.run(until=90.0)
    print(f"downloader reconnected to {downloader.cn.name}; "
          f"download still {session.state} at {session.progress:.0%}")

    banner("database node wipe + rolling upgrade (dn-crash, upgrade-push)")
    system.run(until=500.0)
    regs = system.control.total_registrations()
    print(f"directory rebuilt by RE-ADD: {regs} registrations; "
          f"download {session.state} at {session.progress:.0%}")

    system.run(until=6 * HOUR)
    print(f"\nfirst download finished: {session.state}, "
          f"peer efficiency {session.peer_fraction:.0%}")

    banner("total control-plane outage -> edge-only fallback")
    system.run(until=7 * HOUR + 60.0)
    newcomer = system.create_peer(country=germany)
    newcomer.boot()
    print(f"newcomer online without any CN (cn={newcomer.cn})")
    fallback = newcomer.start_download(obj)
    system.run(until=13 * HOUR + 1800.0)
    print(f"fallback download: {fallback.state}, "
          f"{fallback.peer_bytes} peer bytes (everything from the edge)")

    banner("accounting attack")
    attacker = system.create_peer(country=germany)
    attacker.accounting_attacker = True
    attacker.boot()
    attack_session = attacker.start_download(obj)
    system.run(until=system.sim.now + 6 * HOUR)
    print(f"attacker download {attack_session.state}; reports rejected: "
          f"{len(system.accounting.rejected)} "
          f"({system.accounting.rejected[-1][1] if system.accounting.rejected else '-'})")
    print(f"honest reports accepted: {len(system.accounting.accepted)}")

    banner("injection timeline and recovery gauges")
    print(injector.timeline_text())
    for rec in injector.recoveries.values():
        print(f"{rec.fault}: lost {rec.connected_dip} conns / "
              f"{rec.registrations_dip} regs; reconnect "
              f"{'-' if rec.time_to_reconnect is None else f'{rec.time_to_reconnect:.1f}s'}, "
              f"re-add conv. "
              f"{'-' if rec.re_add_convergence is None else f'{rec.re_add_convergence:.1f}s'}")


if __name__ == "__main__":
    main()
