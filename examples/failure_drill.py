#!/usr/bin/env python3
"""Scenario: the §3.8 robustness story, exercised end to end.

NetSession is built from soft state and fate sharing: CNs can die (peers
reconnect), DNs can die (RE-ADD rebuilds the directory from the peers), the
whole control plane can die (downloads fall back to the edge), and
compromised clients can lie about usage (the accounting cross-check filters
them).  This drill runs all four while a download is in flight.

Run:  python examples/failure_drill.py
"""

from repro.core import ContentObject, ContentProvider, NetSessionSystem
from repro.core.peer import CacheEntry

MB = 1024 * 1024


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    system = NetSessionSystem(seed=23)
    provider = ContentProvider(cp_code=3001, name="DrillCo")
    obj = ContentObject("drillco/image.bin", 700 * MB, provider,
                        p2p_enabled=True)
    system.publish(obj)

    germany = system.world.by_code["DE"]
    seeders = []
    for _ in range(12):
        s = system.create_peer(country=germany, uploads_enabled=True)
        s.cache[obj.cid] = CacheEntry(obj.cid, completed_at=0.0)
        s.boot()
        seeders.append(s)
    downloader = system.create_peer(country=germany, uploads_enabled=True)
    downloader.boot()

    banner("download starts (hybrid delivery)")
    session = downloader.start_download(obj)
    system.run(until=20.0)
    print(f"progress {session.progress:.0%}, "
          f"{sum(1 for c in session.peer_conns if not c.closed)} peer connections")

    banner("connection node crashes")
    failed_cn = downloader.cn
    orphans = system.control.fail_cn(failed_cn)
    print(f"{orphans} peers orphaned; reconnections are rate-limited")
    system.run(until=system.sim.now + 60.0)
    print(f"downloader reconnected to {downloader.cn.name}; "
          f"download still {session.state} at {session.progress:.0%}")
    failed_cn.recover()  # ops bring the node back

    banner("database node crashes (soft state lost)")
    dn = max(system.control.all_dns, key=lambda d: d.total_registrations())
    before = dn.total_registrations()
    answered = system.control.fail_dn(dn)
    print(f"directory wiped ({before} entries); RE-ADD broadcast answered by "
          f"{answered} peers; directory now has {dn.total_registrations()} entries")

    banner("rolling software upgrade of the whole control plane")
    reconnects = system.control.rolling_restart()
    system.run(until=system.sim.now + 120.0)
    print(f"all CNs/DNs restarted; {reconnects} reconnects; "
          f"download {session.state} at {session.progress:.0%}")

    system.run(until=system.sim.now + 6 * 3600)
    print(f"\nfirst download finished: {session.state}, "
          f"peer efficiency {session.peer_fraction:.0%}")

    banner("total control-plane outage -> edge-only fallback")
    for cn in system.control.all_cns:
        cn.fail()
    newcomer = system.create_peer(country=germany)
    newcomer.boot()
    print(f"newcomer online without any CN (cn={newcomer.cn})")
    fallback = newcomer.start_download(obj)
    system.run(until=system.sim.now + 6 * 3600)
    print(f"fallback download: {fallback.state}, "
          f"{fallback.peer_bytes} peer bytes (everything from the edge)")

    banner("accounting attack")
    for cn in system.control.all_cns:
        cn.recover()
    attacker = system.create_peer(country=germany)
    attacker.accounting_attacker = True
    attacker.boot()
    attack_session = attacker.start_download(obj)
    system.run(until=system.sim.now + 6 * 3600)
    print(f"attacker download {attack_session.state}; reports rejected: "
          f"{len(system.accounting.rejected)} "
          f"({system.accounting.rejected[-1][1] if system.accounting.rejected else '-'})")
    print(f"honest reports accepted: {len(system.accounting.accepted)}")


if __name__ == "__main__":
    main()
