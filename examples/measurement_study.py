#!/usr/bin/env python3
"""Re-run the paper's full measurement study on a synthetic trace.

Generates one trace (like the paper's October 2012 log set) and prints
every table and figure of the evaluation — the same runners the benchmark
suite uses.  This is how EXPERIMENTS.md is produced.

Run:  python examples/measurement_study.py [--scale small|standard|mobility]

``standard`` takes a minute or two; ``small`` runs in seconds.
"""

import argparse
import importlib
import sys
import time

from repro.experiments import ALL_EXPERIMENTS

#: Experiments whose default scale is the mobility-focused trace.
MOBILITY_EXPERIMENTS = {"exp_mobility", "exp_fig12"}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=("small", "standard", "mobility"))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--only", default=None,
                        help="comma-separated experiment names (e.g. exp_offload)")
    args = parser.parse_args()

    chosen = ALL_EXPERIMENTS
    if args.only:
        wanted = set(args.only.split(","))
        chosen = [m for m in ALL_EXPERIMENTS if m in wanted]
        if not chosen:
            print(f"no experiments match {args.only!r}", file=sys.stderr)
            return 2

    for name in chosen:
        module = importlib.import_module(f"repro.experiments.{name}")
        scale = "mobility" if name in MOBILITY_EXPERIMENTS else args.scale
        started = time.time()
        output = module.run(scale, args.seed)
        took = time.time() - started
        print(f"\n{'#' * 72}")
        print(f"# {name}  (scale={scale}, {took:.1f}s)")
        print(f"{'#' * 72}")
        print(output.text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
