#!/usr/bin/env python3
"""Quickstart: a peer-assisted download through the full NetSession stack.

Builds a small deployment (control plane, edge servers, synthetic world),
seeds a swarm with peers that already cache a game installer, and downloads
it on a fresh peer — printing where the bytes came from, which is the
paper's central quantity (peer efficiency, §5.1).

Run:  python examples/quickstart.py
"""

from repro.core import ContentObject, ContentProvider, NetSessionSystem
from repro.core.peer import CacheEntry

MB = 1024 * 1024


def main() -> None:
    system = NetSessionSystem(seed=7)

    # A content provider publishes a large, p2p-enabled installer.
    provider = ContentProvider(cp_code=1001, name="GameCo",
                               upload_default_rate=0.9)
    installer = ContentObject("gameco/installer-v2.bin", 900 * MB, provider,
                              p2p_enabled=True)
    system.publish(installer)

    # Twenty German peers already have the file cached (earlier downloads)
    # and are online with uploads enabled.
    germany = system.world.by_code["DE"]
    for _ in range(20):
        seeder = system.create_peer(country=germany, uploads_enabled=True)
        seeder.cache[installer.cid] = CacheEntry(installer.cid, completed_at=0.0)
        seeder.boot()

    # A new user hits "download".
    user = system.create_peer(country=germany, uploads_enabled=True)
    user.boot()
    print(f"downloader: {user.guid[:8]} in {user.country.name}, "
          f"AS{user.asn}, downlink "
          f"{user.link.down_bps * 8 / 1e6:.1f} Mbit/s")

    session = user.start_download(installer)
    system.run(until=6 * 3600)

    assert session.state == "completed", session.state
    took = session.ended_at - session.started_at
    speed = installer.size / took * 8 / 1e6
    print(f"completed in {took / 60:.1f} min at {speed:.1f} Mbit/s")
    print(f"bytes from peers:          {session.peer_bytes / MB:,.0f} MB")
    print(f"bytes from edge servers:   {session.edge_bytes / MB:,.0f} MB")
    print(f"peer efficiency:           {session.peer_fraction:.1%}  "
          f"(paper average: 71.4%)")
    print(f"peers returned by control plane: {session.peers_initially_returned}")
    print(f"distinct uploaders used:   {len(session.per_uploader_bytes)}")


if __name__ == "__main__":
    main()
