#!/usr/bin/env python3
"""Scenario: a game-patch release day on a hybrid CDN.

The paper's motivating workload is exactly this — a provider distributing
multi-hundred-MB installers to a geographically spread user base (§3.3,
§4.4).  This example publishes a 1.2 GB patch, lets demand arrive as a
flash crowd over twelve hours, and tracks how the swarm bootstraps itself:
the first downloads are served by the infrastructure, every completion adds
an uploader, and the offload ratio climbs — the "peers provide scalability"
half of the hybrid story.

Run:  python examples/software_release.py
"""

import random

from repro.core import ContentObject, ContentProvider, NetSessionSystem
from repro.workload.population import diurnal_rate

MB = 1024 * 1024
HOUR = 3600.0


def main() -> None:
    system = NetSessionSystem(seed=11)
    publisher = ContentProvider(cp_code=2001, name="PatchCo",
                                upload_default_rate=0.9)
    patch = ContentObject("patchco/patch-1.2.bin", 1200 * MB, publisher,
                          p2p_enabled=True)
    system.publish(patch)

    # An installed base across Europe; everyone is online (release evening).
    rng = random.Random(3)
    fleet = []
    for code in ("DE", "FR", "GB", "PL", "NL", "SE", "IT", "ES"):
        country = system.world.by_code[code]
        for _ in range(30):
            peer = system.create_peer(country=country,
                                      installed_from=publisher)
            peer.boot()
            fleet.append(peer)

    # Flash crowd: 150 of them pull the patch, arrivals thinning out over
    # twelve hours with the usual evening-heavy profile.
    downloaders = rng.sample(fleet, 150)
    for peer in downloaders:
        delay = rng.uniform(0, 12 * HOUR) * diurnal_rate(0.0)
        system.sim.schedule(delay, lambda p=peer: p.start_download(patch))

    # Observe the swarm hourly.
    print(f"{'hour':>4}  {'done':>5}  {'active':>6}  {'uploaders':>9}  "
          f"{'offload so far':>14}")

    def snapshot() -> None:
        done = active = 0
        edge = peers = 0
        for p in downloaders:
            s = p.sessions.get(patch.cid)
            if s is not None and s.state == "active":
                active += 1
                edge += s.edge_bytes
                peers += s.peer_bytes
        for rec in system.logstore.downloads:
            if rec.cid == patch.cid and rec.outcome == "completed":
                done += 1
                edge += rec.edge_bytes
                peers += rec.peer_bytes
        uploaders = sum(
            1 for p in fleet if p.has_complete(patch.cid) and p.uploads_enabled
        )
        total = edge + peers
        offload = peers / total if total else 0.0
        print(f"{system.sim.now / HOUR:4.0f}  {done:5d}  {active:6d}  "
              f"{uploaders:9d}  {offload:14.1%}")

    system.sim.every(HOUR, snapshot)
    system.run(until=14 * HOUR)
    system.finalize_open_downloads()

    from repro.analysis import offload_summary
    summary = offload_summary(system.logstore)
    print()
    print(f"release-day offload: {summary.byte_weighted_efficiency:.1%} of "
          f"patch bytes came from peers (paper: 70-80%)")
    billed = system.accounting.provider_report(publisher.cp_code)
    print(f"validated billing: {billed.completed_downloads} downloads, "
          f"{billed.edge_bytes / 1e9:.2f} GB infra / "
          f"{billed.peer_bytes / 1e9:.2f} GB peers")


if __name__ == "__main__":
    main()
