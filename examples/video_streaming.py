#!/usr/bin/env python3
"""Scenario: streaming a show over the hybrid CDN (paper §3.4).

NetSession "also supports video streaming"; this example exercises the
streaming extension: viewers join over half an hour, play a 3 Mbit/s video,
and the report shows the QoE metrics (startup delay, rebuffering) alongside
how much of the stream came from other viewers.

Run:  python examples/video_streaming.py
"""

import random

from repro.core import ContentObject, ContentProvider, NetSessionSystem
from repro.core.peer import CacheEntry
from repro.core.streaming import start_streaming

MB = 1024 * 1024
MBIT = 1e6 / 8
HOUR = 3600.0


def main() -> None:
    system = NetSessionSystem(seed=17)
    studio = ContentProvider(cp_code=5001, name="StreamCo",
                             upload_default_rate=0.9)
    episode = ContentObject("streamco/episode-01.mp4", 450 * MB, studio,
                            p2p_enabled=True)
    system.publish(episode)

    germany = system.world.by_code["DE"]
    # A few viewers watched earlier and still cache the episode.
    for _ in range(10):
        earlier = system.create_peer(country=germany, uploads_enabled=True)
        earlier.cache[episode.cid] = CacheEntry(episode.cid, completed_at=0.0)
        earlier.boot()

    rng = random.Random(17)
    sessions = []
    viewers = []
    for _ in range(12):
        viewer = system.create_peer(country=germany, uploads_enabled=True)
        viewer.boot()
        viewers.append(viewer)
        delay = rng.uniform(0.0, 0.5 * HOUR)
        system.sim.schedule(delay, lambda v=viewer: sessions.append(
            start_streaming(v, episode, bitrate=3 * MBIT)))

    system.run(until=4 * HOUR)

    print(f"{'viewer':>8}  {'startup':>8}  {'rebuffers':>9}  "
          f"{'stall time':>10}  {'from peers':>10}  {'finished':>8}")
    for session in sessions:
        report = session.qoe_report()
        startup = ("-" if report["startup_delay"] == float("inf")
                   else f"{report['startup_delay']:.1f}s")
        print(f"{session.peer.guid[:8]:>8}  {startup:>8}  "
              f"{int(report['rebuffer_events']):>9}  "
              f"{report['rebuffer_time']:>9.1f}s  "
              f"{report['peer_fraction']:>10.0%}  "
              f"{'yes' if report['finished'] else 'no':>8}")

    finished = sum(1 for s in sessions if s.playback_finished_at is not None)
    total_peer = sum(s.peer_bytes for s in sessions)
    total = sum(s.peer_bytes + s.edge_bytes for s in sessions)
    print(f"\n{finished}/{len(sessions)} playbacks finished; "
          f"{total_peer / total:.0%} of stream bytes came from peers")


if __name__ == "__main__":
    main()
