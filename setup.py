"""Setuptools shim for legacy editable installs (offline environments).

``pip install -e . --no-build-isolation`` on older pip/setuptools falls back
to ``setup.py develop``, which needs this file; all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
