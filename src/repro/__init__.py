"""Reproduction of "Peer-Assisted Content Distribution in Akamai NetSession"
(Zhao et al., IMC 2013).

Subpackages:

* :mod:`repro.core` — the NetSession system (control plane, edge, peers, swarm);
* :mod:`repro.net` — the network substrate (simulator, flows, topology, NAT, geo);
* :mod:`repro.workload` — synthetic population, catalog, demand, behaviour;
* :mod:`repro.baselines` — pure-infrastructure and pure-P2P CDN baselines;
* :mod:`repro.analysis` — the measurement study (every table and figure);
* :mod:`repro.experiments` — one runner per table/figure in the paper.
"""

__version__ = "1.0.0"
