"""Adversarial peers and the reputation/quarantine defense.

Two halves, deliberately independent:

* :mod:`repro.adversary.profiles` — the attack side: five misbehavior
  profiles (corrupter, free-rider, stale-advertiser, accounting-inflator,
  slow-loris) assignable to a seeded fraction of the population via
  ``ScenarioConfig.adversary`` or the
  :class:`~repro.faults.spec.AdversarialInfestation` fault;
* :mod:`repro.adversary.reputation` — the defense side: a deterministic
  contribution-weighted, corruption-penalized, time-decayed reputation
  score aggregated CN-side from session usage reports, feeding candidate
  ranking, quarantine with probation re-admission, and registration
  eviction.  Enabled via ``SystemConfig.defense``.

Either half runs without the other: adversaries against an undefended
system measure damage; the defense over an honest population measures
false positives.  Both default off and keep golden runs byte-identical.
"""

from repro.adversary.profiles import (
    PROFILES, AdversaryConfig, apply_profile, assign_adversaries,
    choose_profile, revert_profile,
)
from repro.adversary.reputation import (
    GOOD, PROBATION, QUARANTINED, PeerScore, ReputationEngine,
)

__all__ = [
    "GOOD", "PROBATION", "PROFILES", "QUARANTINED",
    "AdversaryConfig", "PeerScore", "ReputationEngine",
    "apply_profile", "assign_adversaries", "choose_profile", "revert_profile",
]
