"""Adversarial-peer misbehavior profiles (the §5/§6.2 threat model).

The paper's robustness argument is that NetSession tolerates an untrusted
peer population: pieces are hash-verified against edge-published hashes and
usage reports are cross-checked against trusted edge logs.  This module
supplies the *attackers* for that argument — five persistent misbehavior
profiles assignable to a seeded fraction of the population:

* ``corrupter`` — serves pieces that fail hash verification at an elevated
  per-piece probability (wastes downloader bytes and connection slots);
* ``free_rider`` — registers content with the directory but refuses every
  upload grant (consumes query slots, contributes nothing);
* ``stale_advertiser`` — keeps its directory registrations alive for
  content it has evicted, forcing empty connections until the soft-state
  TTL reaps the entry;
* ``accounting_inflator`` — inflates its UsageReport byte counts to
  exercise the accounting service's edge-log cross-check;
* ``slow_loris`` — accepts upload grants, then trickles bytes at a tiny
  fraction of its uplink, pinning downloader connection slots.

Profiles are plain peer-attribute mutations (``PeerNode.adversary_profile``
plus the existing ``piece_corruption_prob`` / ``accounting_attacker``
knobs), so they compose with every other subsystem.  Assignment draws from
a dedicated string-seeded RNG, never from the population's, so a scenario
with ``adversary=None`` is bit-identical to one that never imported this
module.

Like :mod:`repro.vod.config`, this module is deliberately dependency-free
(stdlib only) so :class:`AdversaryConfig` is importable from the workload
layer without dragging in the rest of the subsystem.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = [
    "PROFILES", "AdversaryConfig", "apply_profile", "assign_adversaries",
    "choose_profile", "revert_profile",
]

#: The five misbehavior profiles, in mix-weight order.
PROFILES = (
    "corrupter", "free_rider", "stale_advertiser", "accounting_inflator",
    "slow_loris",
)


@dataclass(frozen=True)
class AdversaryConfig:
    """A seeded adversarial slice of the population.

    Attached to :class:`~repro.workload.scenario.ScenarioConfig` as the
    ``adversary`` leaf (default ``None`` = fully honest population, zero
    extra RNG draws, golden runs byte-identical).
    """

    #: Fraction of the population converted to adversaries (at least one
    #: peer when positive).
    fraction: float = 0.1
    #: Relative weights over :data:`PROFILES`; zero removes a profile.
    profile_mix: tuple[float, ...] = (1.0, 1.0, 1.0, 1.0, 1.0)
    #: Per-piece corruption probability for ``corrupter`` peers.
    corruption_prob: float = 0.3
    #: ``slow_loris`` upload cap as a fraction of the honest cap.
    slow_factor: float = 0.02

    def __post_init__(self):
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if len(self.profile_mix) != len(PROFILES):
            raise ValueError(
                f"profile_mix needs {len(PROFILES)} weights (one per profile)")
        if any(w < 0 for w in self.profile_mix) or not any(self.profile_mix):
            raise ValueError("profile_mix weights must be >= 0, not all zero")
        if not 0.0 <= self.corruption_prob <= 1.0:
            raise ValueError("corruption_prob must be in [0, 1]")
        if not 0.0 < self.slow_factor <= 1.0:
            raise ValueError("slow_factor must be in (0, 1]")


def choose_profile(rng: random.Random,
                   mix: tuple[float, ...] = (1.0,) * len(PROFILES)) -> str:
    """Draw one profile name from the weighted mix (one ``rng`` draw)."""
    total = sum(mix)
    pick = rng.random() * total
    for name, weight in zip(PROFILES, mix):
        pick -= weight
        if pick < 0:
            return name
    return PROFILES[-1]  # float round-off fallback


def apply_profile(peer, profile: str, config: AdversaryConfig) -> dict:
    """Turn ``peer`` adversarial; returns a token that undoes it.

    Pure attribute mutation — no RNG, no events.  The token is the
    revert payload for :class:`~repro.faults.spec.AdversarialInfestation`.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}")
    token = {
        "peer": peer,
        "profile": peer.adversary_profile,
        "piece_corruption_prob": peer.piece_corruption_prob,
        "accounting_attacker": peer.accounting_attacker,
        "slow_factor": peer.adversary_slow_factor,
        "uploads_enabled": peer.uploads_enabled,
    }
    peer.adversary_profile = profile
    if profile != "accounting_inflator":
        # Adversarial client software ignores the user's uploads-enabled
        # preference: the four serving profiles need a seat at the table
        # (a corrupter that never serves corrupts nobody).
        peer.uploads_enabled = True
    if profile == "corrupter":
        peer.piece_corruption_prob = config.corruption_prob
    elif profile == "accounting_inflator":
        peer.accounting_attacker = True
    elif profile == "slow_loris":
        peer.adversary_slow_factor = config.slow_factor
    return token


def revert_profile(token: dict) -> None:
    """Undo :func:`apply_profile` (the fault-spec revert path)."""
    peer = token["peer"]
    peer.adversary_profile = token["profile"]
    peer.piece_corruption_prob = token["piece_corruption_prob"]
    peer.accounting_attacker = token["accounting_attacker"]
    peer.adversary_slow_factor = token["slow_factor"]
    peer.uploads_enabled = token["uploads_enabled"]


def assign_adversaries(peers, config: AdversaryConfig, seed: int,
                       *, truth: dict | None = None) -> list[dict]:
    """Convert a seeded fraction of ``peers``; returns the revert tokens.

    ``peers`` is a :class:`~repro.workload.population.Population` or any
    sequence of peers.  A population selects through
    :meth:`~repro.workload.population.Population.sample_peers`, whose draw
    sequence depends only on the population size — so a columnar store
    converts the same creation-order victims as the eager object graph,
    materializing only the converted slice.

    Draws exclusively from ``random.Random(f"repro-adversary:{seed}")`` —
    the population's own RNG streams are untouched, so honest peers behave
    identically whether or not an adversarial slice exists.  ``truth``
    (usually ``NetSessionSystem.adversary_truth``) collects the guid →
    profile ground truth used by the false-positive-ban drill metric.
    """
    sampler = getattr(peers, "sample_peers", None)
    count = peers.peer_count() if sampler is not None else len(peers)
    if config.fraction <= 0 or not count:
        return []
    rng = random.Random(f"repro-adversary:{seed}")
    n = min(count, max(1, round(config.fraction * count)))
    if sampler is not None:
        selected = sampler(rng, n)
    else:
        selected = rng.sample(list(peers), n)
    tokens = []
    for peer in selected:
        profile = choose_profile(rng, config.profile_mix)
        tokens.append(apply_profile(peer, profile, config))
        if truth is not None:
            truth[peer.guid] = profile
    return tokens
