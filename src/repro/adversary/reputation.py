"""Deterministic per-peer reputation scoring and quarantine (defense side).

The observation pipeline rides existing machinery end to end: download
sessions already track per-uploader verified bytes, corrupted pieces,
refused grants, and trickling serves; those observations ship CN-side
inside the :class:`~repro.core.messages.UsageReport` each session already
sends, and the CN feeds *accepted* reports (accounting's edge-log
cross-check has passed — rejected reports never poison reputation) into
this engine.  The engine maintains one scalar score per peer:

* **contribution-weighted** — verified megabytes delivered earn credit;
* **corruption/timeout-penalized** — corrupted pieces, refused/empty
  connections, and slow-loris serves cost score;
* **time-decayed** — the score halves every ``decay_half_life`` seconds,
  so old sins and old virtues both fade;
* **string-seeded** — each peer starts from a tiny deterministic jitter
  drawn from ``random.Random(f"repro-defense:{seed}:{guid}")``, which
  breaks ranking ties stably and independently of call order.

Scores feed candidate ranking in :func:`repro.core.selection.select_peers`
(``rank_key``), a quarantine/ban state machine with probation re-admission
(good → quarantined → probation → good), and CN registration eviction via
the ``on_quarantine`` hook.  Everything is lazy and event-free: no
simulator events are scheduled, no RNG stream shared with the simulation
is consumed, and with ``DefenseConfig.enabled=False`` the engine is never
constructed at all.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - runtime import would be circular
    from repro.core.config import DefenseConfig
    from repro.core.control.database_node import PeerRegistration
    from repro.core.messages import UsageReport

__all__ = ["GOOD", "PROBATION", "QUARANTINED", "PeerScore", "ReputationEngine"]

#: Defense state machine states.
GOOD = "good"
QUARANTINED = "quarantined"
PROBATION = "probation"

_MB = 1024.0 * 1024.0


class PeerScore:
    """Mutable per-peer reputation record (lazy decay)."""

    __slots__ = ("score", "updated_at", "state", "quarantined_at",
                 "quarantines")

    def __init__(self, score: float, now: float):
        self.score = score
        self.updated_at = now
        self.state = GOOD
        self.quarantined_at = 0.0
        self.quarantines = 0


class ReputationEngine:
    """CN-side aggregate of session-reported per-uploader observations."""

    def __init__(self, config: "DefenseConfig", seed: int):
        self.config = config
        self._seed_token = f"repro-defense:{seed}"
        self.peers: dict[str, PeerScore] = {}
        #: Installed by the system: callable(guid) -> registrations evicted.
        self.on_quarantine: Callable[[str], int] | None = None
        #: Installed by the system: the simulation clock.  CNs read it so
        #: they need no simulator reference of their own.
        self.clock: Callable[[], float] = lambda: 0.0
        # Aggregate counters, folded into SystemStats by DefenseCounters.
        self.quarantines = 0
        self.probations = 0
        self.reports_ingested = 0
        self.registrations_evicted = 0
        #: Quarantined peers that still made it into a query answer — the
        #: quarantined-never-selected audit counter; must stay zero.
        self.quarantine_leaks = 0

    # ------------------------------------------------------------- scoring

    def _initial_score(self, guid: str) -> float:
        # Tiny per-guid jitter: deterministic regardless of the order peers
        # are first observed in, and far below any scoring increment.
        return random.Random(f"{self._seed_token}:{guid}").random() * 1e-6

    def _entry(self, guid: str, now: float) -> PeerScore:
        entry = self.peers.get(guid)
        if entry is None:
            entry = self.peers[guid] = PeerScore(self._initial_score(guid), now)
        return entry

    def _decay(self, entry: PeerScore, now: float) -> None:
        dt = now - entry.updated_at
        if dt > 0:
            entry.score *= 0.5 ** (dt / self.config.decay_half_life)
        entry.updated_at = max(entry.updated_at, now)

    def score(self, guid: str, now: float) -> float:
        """The peer's current (decayed) score; creates the entry lazily."""
        entry = self._entry(guid, now)
        self._decay(entry, now)
        return entry.score

    def observe(self, guid: str, now: float, *, delivered_bytes: int = 0,
                corrupted_pieces: int = 0, refusals: int = 0,
                slow_serves: int = 0) -> str:
        """Fold one observation batch into the peer's score.

        Returns the resulting defense state.  Score moves trigger the state
        machine: a drop to ``quarantine_threshold`` quarantines (evicting
        the peer's registrations through ``on_quarantine``); a probation
        peer that climbs above zero is fully re-admitted.
        """
        cfg = self.config
        entry = self._entry(guid, now)
        self._decay(entry, now)
        entry.score += cfg.contribution_weight * (delivered_bytes / _MB)
        entry.score -= cfg.corruption_penalty * corrupted_pieces
        entry.score -= cfg.refusal_penalty * refusals
        entry.score -= cfg.slow_penalty * slow_serves
        entry.score = min(cfg.score_max, max(cfg.score_min, entry.score))
        if entry.state != QUARANTINED and entry.score <= cfg.quarantine_threshold:
            self._quarantine(guid, entry, now)
        elif entry.state == PROBATION and entry.score > 0.0:
            entry.state = GOOD
        return entry.state

    def _quarantine(self, guid: str, entry: PeerScore, now: float) -> None:
        entry.state = QUARANTINED
        entry.quarantined_at = now
        entry.quarantines += 1
        self.quarantines += 1
        if self.on_quarantine is not None:
            self.registrations_evicted += self.on_quarantine(guid)

    # ------------------------------------------------------ admission control

    def admits(self, guid: str, now: float) -> bool:
        """Selection-time gate; performs the probation transition.

        A quarantined peer is refused until ``probation_interval`` elapses,
        then re-admitted on probation with its score reset to
        ``probation_score`` — one fresh offense re-quarantines it.
        """
        entry = self.peers.get(guid)
        if entry is None or entry.state != QUARANTINED:
            return True
        if now - entry.quarantined_at < self.config.probation_interval:
            return False
        entry.state = PROBATION
        entry.score = self.config.probation_score + self._initial_score(guid)
        entry.updated_at = now
        self.probations += 1
        return True

    def is_quarantined(self, guid: str, now: float) -> bool:
        """Pure check (no transitions): still inside a quarantine window?"""
        entry = self.peers.get(guid)
        return (entry is not None and entry.state == QUARANTINED
                and now - entry.quarantined_at < self.config.probation_interval)

    def rank_key(self, now: float) -> Callable[["PeerRegistration"], float]:
        """Key for ``select_peers(rank_key=...)``: decayed score, higher first."""
        return lambda reg: self.score(reg.guid, now)

    def state(self, guid: str) -> str:
        entry = self.peers.get(guid)
        return GOOD if entry is None else entry.state

    # ------------------------------------------------------------ aggregation

    def ingest_report(self, report: "UsageReport", now: float) -> None:
        """Fold an *accepted* usage report's per-uploader observations in.

        Called by the CN after the accounting cross-check passes; reports
        the edge logs contradict (the accounting-inflator profile) never
        reach here, so an attacker cannot spend fabricated bytes on
        reputation — its own or anyone else's.
        """
        self.reports_ingested += 1
        for guid, nbytes in report.per_uploader_bytes.items():
            self.observe(guid, now, delivered_bytes=nbytes)
        for guid, pieces in report.per_uploader_corrupt.items():
            self.observe(guid, now, corrupted_pieces=pieces)
        for guid, count in report.per_uploader_refusals.items():
            self.observe(guid, now, refusals=count)
        for guid, count in report.per_uploader_slow.items():
            self.observe(guid, now, slow_serves=count)

    # --------------------------------------------------------------- faults

    def wipe(self) -> int:
        """Forget every score and quarantine (the ReputationWipe fault).

        Returns the number of entries dropped.  The defense re-learns from
        scratch; quarantined adversaries walk free until re-detected.
        """
        dropped = len(self.peers)
        self.peers.clear()
        return dropped

    # ---------------------------------------------------------------- audit

    def entries(self) -> Iterator[tuple[str, PeerScore]]:
        """Stable iteration for the invariant checkers."""
        return iter(self.peers.items())
