"""The measurement study: log schemas, store, and every analysis in §4–§6."""

from repro.analysis.benefits import (
    OffloadSummary, busiest_ases, figure4_speed_cdfs,
    figure5_efficiency_vs_copies, figure6_efficiency_vs_peers,
    figure7_pause_rates, figure8_country_contributions, offload_summary,
    reliability_outcomes, table3_setting_changes,
    table4_upload_enabled_by_provider,
)
from repro.analysis.export import Anonymizer, export_trace, import_trace
from repro.analysis.faults import fault_impact, window_outcomes
from repro.analysis.guid_graphs import (
    MobilitySummary, build_secondary_guid_graphs, classify_graph,
    figure12_pattern_census, mobility_summary,
)
from repro.analysis.logstore import LogStore
from repro.analysis.qoe import (
    peak_hour_transit, peak_transit_total, qoe_summary, streamed_records,
)
from repro.analysis.overview import (
    OverallStatistics, figure2_peer_distribution, table1_overall_statistics,
    table2_provider_regions,
)
from repro.analysis.records import (
    DownloadRecord, LoginRecord, RegistrationRecord,
    FAILURE_OTHER, FAILURE_SYSTEM,
    OUTCOME_ABORTED, OUTCOME_COMPLETED, OUTCOME_FAILED,
)
from repro.analysis.report import (
    human_bytes, pct, render_comparison, render_series, render_table,
)
from repro.analysis.stats import (
    bin_index, cdf_points, gini, log_bins, mean, percentile, weighted_fraction,
)
from repro.analysis.traffic import (
    locality_shares,
    TrafficMatrix, build_traffic_matrix, figure9a_upload_cdf,
    figure9b_cumulative_contribution, figure9c_ips_per_as,
    figure10_balance_scatter, figure11_pair_balance, heavy_uploader_ases,
)
from repro.analysis.workload_analysis import (
    figure3a_size_cdfs, figure3b_popularity, figure3c_bytes_over_time,
    fraction_of_requests_above, power_law_exponent,
)

__all__ = [
    "LogStore",
    "Anonymizer", "export_trace", "import_trace",
    "DownloadRecord", "LoginRecord", "RegistrationRecord",
    "OUTCOME_COMPLETED", "OUTCOME_FAILED", "OUTCOME_ABORTED",
    "FAILURE_SYSTEM", "FAILURE_OTHER",
    "OverallStatistics", "table1_overall_statistics",
    "table2_provider_regions", "figure2_peer_distribution",
    "figure3a_size_cdfs", "figure3b_popularity", "figure3c_bytes_over_time",
    "fraction_of_requests_above", "power_law_exponent",
    "OffloadSummary", "offload_summary",
    "table3_setting_changes", "table4_upload_enabled_by_provider",
    "busiest_ases", "figure4_speed_cdfs",
    "figure5_efficiency_vs_copies", "figure6_efficiency_vs_peers",
    "figure7_pause_rates", "reliability_outcomes",
    "figure8_country_contributions",
    "window_outcomes", "fault_impact",
    "TrafficMatrix", "build_traffic_matrix",
    "figure9a_upload_cdf", "figure9b_cumulative_contribution",
    "figure9c_ips_per_as", "figure10_balance_scatter",
    "figure11_pair_balance", "heavy_uploader_ases", "locality_shares",
    "MobilitySummary", "mobility_summary",
    "build_secondary_guid_graphs", "classify_graph", "figure12_pattern_census",
    "qoe_summary", "streamed_records", "peak_hour_transit",
    "peak_transit_total",
    "cdf_points", "percentile", "mean", "log_bins", "bin_index",
    "weighted_fraction", "gini",
    "render_table", "render_series", "render_comparison", "pct", "human_bytes",
]
