"""Section 5 analyses: does the hybrid deliver the benefits?

Covers §5.1 (offload), §5.2 (performance and reliability), §5.3 (global
coverage): Tables 3–4 and Figures 4–8, plus the headline §5.1 statistics
(p2p-enabled file fraction vs byte share; average peer efficiency).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.analysis.logstore import LogStore
from repro.analysis.records import DownloadRecord, OUTCOME_ABORTED, OUTCOME_COMPLETED
from repro.analysis.stats import cdf_points, mean, percentile
from repro.net.geo import GeoDatabase

__all__ = [
    "OffloadSummary", "offload_summary",
    "table3_setting_changes", "table4_upload_enabled_by_provider",
    "figure4_speed_cdfs", "busiest_ases",
    "figure5_efficiency_vs_copies", "figure6_efficiency_vs_peers",
    "figure7_pause_rates", "reliability_outcomes",
    "figure8_country_contributions",
    "SIZE_BINS",
]

MB = 1024 * 1024
GB = 1024 * MB

#: Figure 7's size buckets: (<10MB, 10–100MB, 100MB–1GB, >1GB).
SIZE_BINS: tuple[tuple[str, float, float], ...] = (
    ("<10MB", 0, 10 * MB),
    ("10-100MB", 10 * MB, 100 * MB),
    ("100MB-1GB", 100 * MB, 1 * GB),
    (">1GB", 1 * GB, float("inf")),
)


# ------------------------------------------------------------------- §5.1


@dataclass
class OffloadSummary:
    """The §5.1 headline numbers."""

    p2p_file_fraction: float       # fraction of distinct files with p2p on
    p2p_byte_share: float          # share of all bytes in p2p-enabled downloads
    mean_peer_efficiency: float    # average over completed p2p downloads
    median_peer_efficiency: float
    byte_weighted_efficiency: float

    def rows(self) -> list[tuple[str, float]]:
        """(label, value) rows for reporting."""
        return [
            ("p2p-enabled file fraction", self.p2p_file_fraction),
            ("p2p-enabled byte share", self.p2p_byte_share),
            ("mean peer efficiency", self.mean_peer_efficiency),
            ("median peer efficiency", self.median_peer_efficiency),
            ("byte-weighted peer efficiency", self.byte_weighted_efficiency),
        ]


def offload_summary(logs: LogStore) -> OffloadSummary:
    """Compute the §5.1 statistics from completed downloads.

    Paper values: 1.7% of files p2p-enabled; 57.4% of bytes; 71.4% average
    peer efficiency for peer-assisted downloads.
    """
    files_p2p: set[str] = set()
    files_all: set[str] = set()
    p2p_bytes = 0
    all_bytes = 0
    effs: list[float] = []
    peer_bytes = 0
    p2p_total = 0
    for rec in logs.downloads:
        files_all.add(rec.cid)
        if rec.p2p_enabled:
            files_p2p.add(rec.cid)
        if rec.outcome != OUTCOME_COMPLETED:
            continue
        all_bytes += rec.total_bytes
        if rec.p2p_enabled:
            p2p_bytes += rec.total_bytes
            peer_bytes += rec.peer_bytes
            p2p_total += rec.total_bytes
            effs.append(rec.peer_fraction)
    return OffloadSummary(
        p2p_file_fraction=len(files_p2p) / len(files_all) if files_all else 0.0,
        p2p_byte_share=p2p_bytes / all_bytes if all_bytes else 0.0,
        mean_peer_efficiency=mean(effs),
        median_peer_efficiency=percentile(effs, 50) if effs else 0.0,
        byte_weighted_efficiency=peer_bytes / p2p_total if p2p_total else 0.0,
    )


# ------------------------------------------------------------- Tables 3, 4


def table3_setting_changes(logs: LogStore) -> dict[str, dict[str, float]]:
    """Observed changes to the upload setting, by initial value (Table 3).

    Returns ``{"disabled"|"enabled": {"nodes": n, "0": f, "1": f, "2+": f}}``
    where fractions are of nodes with that initial setting.
    """
    by_guid = logs.logins_by_guid()
    buckets = {
        "disabled": Counter(),
        "enabled": Counter(),
    }
    for logins in by_guid.values():
        initial = logins[0].uploads_enabled
        changes = sum(
            1 for a, b in zip(logins, logins[1:])
            if a.uploads_enabled != b.uploads_enabled
        )
        key = "enabled" if initial else "disabled"
        buckets[key][min(changes, 2)] += 1
    result: dict[str, dict[str, float]] = {}
    for key, counts in buckets.items():
        total = sum(counts.values())
        result[key] = {
            "nodes": total,
            "0": counts.get(0, 0) / total if total else 0.0,
            "1": counts.get(1, 0) / total if total else 0.0,
            "2+": counts.get(2, 0) / total if total else 0.0,
        }
    return result


def table4_upload_enabled_by_provider(logs: LogStore) -> dict[int, float]:
    """Fraction of peers with uploads enabled, per provider (Table 4).

    The paper attributes each peer to "the content provider from who the
    user first downloaded the binary".  The bundle is identified from the
    software version string the client reports at login (production
    installers encode their distribution channel); peers whose version
    string does not carry a CP code are attributed to the provider of
    their first download instead.
    """
    first_cp: dict[str, int] = {}
    for rec in sorted(logs.downloads, key=lambda r: r.started_at):
        first_cp.setdefault(rec.guid, rec.cp_code)
    enabled: dict[int, list[bool]] = defaultdict(list)
    for guid, logins in logs.logins_by_guid().items():
        first = logins[0]
        cp = _bundle_cp(first.software_version)
        if cp is None or cp == 0:
            cp = first_cp.get(guid)
        if cp:
            enabled[cp].append(first.uploads_enabled)
    return {
        cp: sum(flags) / len(flags)
        for cp, flags in enabled.items()
        if flags
    }


def _bundle_cp(version: str) -> int | None:
    """Extract the bundling provider's CP code from a version string."""
    marker = "-cp"
    idx = version.rfind(marker)
    if idx < 0:
        return None
    tail = version[idx + len(marker):]
    return int(tail) if tail.isdigit() else None


# ------------------------------------------------------------------ Figure 4


def busiest_ases(logs: LogStore, geodb: GeoDatabase, n: int = 2) -> list[int]:
    """The ``n`` ASes with the most downloads (Figure 4's AS X and AS Y)."""
    counts: Counter = Counter()
    for rec in logs.downloads:
        geo = geodb.get(rec.ip)
        if geo is not None:
            counts[geo.asn] += 1
    return [asn for asn, _count in counts.most_common(n)]


def figure4_speed_cdfs(
    logs: LogStore,
    geodb: GeoDatabase,
    asn: int,
) -> dict[str, list[tuple[float, float]]]:
    """Download-speed CDFs for one AS: edge-only vs ≥50%-from-peers.

    Speeds are averaged over each download's full duration, in Mbit/s,
    exactly as the paper computes Figure 4.  Only completed downloads are
    considered.
    """
    edge_only: list[float] = []
    p2p_heavy: list[float] = []
    for rec in logs.downloads:
        if rec.outcome != OUTCOME_COMPLETED:
            continue
        geo = geodb.get(rec.ip)
        if geo is None or geo.asn != asn:
            continue
        speed_mbps = rec.average_speed_bps() * 8 / 1e6
        if speed_mbps <= 0:
            continue
        if rec.peer_bytes == 0:
            edge_only.append(speed_mbps)
        elif rec.peer_fraction >= 0.5:
            p2p_heavy.append(speed_mbps)
    return {
        "edge_only": cdf_points(edge_only),
        "p2p_heavy": cdf_points(p2p_heavy),
    }


# ------------------------------------------------------------- Figures 5, 6


def figure5_efficiency_vs_copies(
    logs: LogStore,
    *,
    bin_edges: tuple[int, ...] = (1, 3, 10, 30, 100, 300, 1000, 10000, 100000),
) -> list[tuple[float, float, float, float]]:
    """Average peer efficiency as a function of registered copies per file.

    For each p2p-enabled file, the copy count is the number of DN log
    entries (registrations) for it during the trace, and the efficiency is
    the average over its completed downloads — as in Figure 5.  Results are
    binned geometrically; returns (bin center, mean, p20, p80) rows.
    """
    regs = logs.registrations_by_cid()
    per_file_eff: dict[str, list[float]] = defaultdict(list)
    for rec in logs.downloads:
        if rec.p2p_enabled and rec.outcome == OUTCOME_COMPLETED:
            per_file_eff[rec.cid].append(rec.peer_fraction)

    points: list[tuple[int, float]] = []
    for cid, effs in per_file_eff.items():
        # Distinct registering peers: churny peers re-register after each
        # login, so raw entry counts would overstate availability.
        copies = len({r.guid for r in regs.get(cid, [])})
        points.append((copies, mean(effs)))

    rows: list[tuple[float, float, float, float]] = []
    for lo, hi in zip(bin_edges, bin_edges[1:]):
        bucket = [eff for copies, eff in points if lo <= copies < hi]
        if not bucket:
            continue
        center = (lo * hi) ** 0.5
        rows.append((
            center,
            mean(bucket),
            percentile(bucket, 20),
            percentile(bucket, 80),
        ))
    return rows


def figure6_efficiency_vs_peers(
    logs: LogStore,
    *,
    max_peers: int = 40,
) -> list[tuple[int, float, int]]:
    """Peer efficiency vs peers initially returned by the control plane.

    Returns (peers returned, mean efficiency, sample count) rows for
    completed p2p-enabled downloads — Figure 6.  The paper finds ~80%
    efficiency from roughly 25–30 peers.
    """
    groups: dict[int, list[float]] = defaultdict(list)
    for rec in logs.downloads:
        if rec.p2p_enabled and rec.outcome == OUTCOME_COMPLETED:
            groups[min(rec.peers_initially_returned, max_peers)].append(rec.peer_fraction)
    return [
        (k, mean(v), len(v))
        for k, v in sorted(groups.items())
    ]


# ------------------------------------------------------- Figure 7 / §5.2


def figure7_pause_rates(logs: LogStore) -> dict[str, dict[str, float]]:
    """Pause/termination rate by file-size bucket and delivery class.

    Returns ``{class: {bucket_label: aborted fraction}}`` for classes
    "infrastructure", "peer_assisted", and "all" — Figure 7.
    """
    def rate(records: list[DownloadRecord]) -> dict[str, float]:
        out: dict[str, float] = {}
        for label, lo, hi in SIZE_BINS:
            bucket = [r for r in records if lo <= r.size < hi]
            if bucket:
                out[label] = sum(
                    1 for r in bucket if r.outcome == OUTCOME_ABORTED
                ) / len(bucket)
        return out

    infra = [r for r in logs.downloads if not r.p2p_enabled]
    p2p = [r for r in logs.downloads if r.p2p_enabled]
    return {
        "infrastructure": rate(infra),
        "peer_assisted": rate(p2p),
        "all": rate(infra + p2p),
    }


def reliability_outcomes(logs: LogStore) -> dict[str, dict[str, float]]:
    """§5.2's outcome split per delivery class.

    Returns ``{class: {completed, aborted, failed, failed_system,
    failed_other}}`` as fractions of initiated downloads.  Paper: 94% vs
    92% completion; 0.1% vs 0.2% system failures; 3% vs 8% paused.
    """
    def split(records: list[DownloadRecord]) -> dict[str, float]:
        n = len(records)
        if n == 0:
            return {}
        completed = sum(1 for r in records if r.outcome == OUTCOME_COMPLETED)
        aborted = sum(1 for r in records if r.outcome == OUTCOME_ABORTED)
        failed = n - completed - aborted
        failed_system = sum(
            1 for r in records
            if r.outcome == "failed" and r.failure_class == "system"
        )
        return {
            "completed": completed / n,
            "aborted": aborted / n,
            "failed": failed / n,
            "failed_system": failed_system / n,
            "failed_other": (failed - failed_system) / n,
        }

    infra = [r for r in logs.downloads if not r.p2p_enabled]
    p2p = [r for r in logs.downloads if r.p2p_enabled]
    return {
        "infrastructure": split(infra),
        "peer_assisted": split(p2p),
    }


# ------------------------------------------------------------------ Figure 8


def figure8_country_contributions(
    logs: LogStore,
    geodb: GeoDatabase,
    cp_code: int | None = None,
) -> dict[str, str]:
    """Per-country peer-contribution class for one provider (Figure 8).

    Classes (paper's marker shapes): ``"infra"`` — infrastructure served
    more bytes than the peers; ``"peers_half"`` — infrastructure served
    between 50% and 100% of what the peers served; ``"peers_major"`` —
    infrastructure served less than 50% of the peers' bytes.
    """
    edge: Counter = Counter()
    peers: Counter = Counter()
    for rec in logs.downloads:
        if rec.outcome != OUTCOME_COMPLETED:
            continue
        if cp_code is not None and rec.cp_code != cp_code:
            continue
        geo = geodb.get(rec.ip)
        if geo is None:
            continue
        edge[geo.country_code] += rec.edge_bytes
        peers[geo.country_code] += rec.peer_bytes

    result: dict[str, str] = {}
    for country in set(edge) | set(peers):
        e, p = edge.get(country, 0), peers.get(country, 0)
        if e > p:
            result[country] = "infra"
        elif p > 0 and e >= 0.5 * p:
            result[country] = "peers_half"
        else:
            result[country] = "peers_major"
    return result
