"""Anonymized trace export/import — the paper's data-release format.

"To protect the privacy of users and content providers, the data in our
logs have been anonymized by hashing the file names, IP addresses, and
GUIDs" (paper §4.1).  This module writes a :class:`LogStore` plus its
geolocation data set to JSON-lines files with exactly that anonymization —
keyed salted hashes, consistent across record types so joins still work —
and reads such an export back for offline analysis.

Every analysis in :mod:`repro.analysis` runs unchanged on a re-imported
trace: the pipeline only ever joins on the (hashed) identifiers.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.logstore import LogStore
from repro.analysis.records import DownloadRecord, LoginRecord, RegistrationRecord
from repro.net.geo import GeoDatabase, GeoRecord

__all__ = ["Anonymizer", "export_trace", "import_trace"]


class Anonymizer:
    """Salted, consistent hashing of GUIDs, IPs, URLs, and secondary GUIDs.

    The same input always maps to the same token within one salt, so the
    cross-record joins the analyses rely on (download→login→geo) survive
    anonymization; different salts produce unlinkable data sets.
    """

    def __init__(self, salt: str = "netsession-release"):
        self.salt = salt
        self._cache: dict[tuple[str, str], str] = {}

    def token(self, kind: str, value: str) -> str:
        """Anonymize one value within a namespace (guid/ip/url/sguid)."""
        if not value:
            return value
        key = (kind, value)
        cached = self._cache.get(key)
        if cached is None:
            digest = hashlib.sha256(
                f"{self.salt}|{kind}|{value}".encode()
            ).hexdigest()[:20]
            cached = f"{kind}-{digest}"
            self._cache[key] = cached
        return cached


def export_trace(
    logs: LogStore,
    geodb: GeoDatabase,
    directory: str | Path,
    *,
    salt: str = "netsession-release",
) -> dict[str, int]:
    """Write the anonymized trace to ``directory``.

    Produces ``downloads.jsonl``, ``logins.jsonl``, ``registrations.jsonl``
    and ``geolocation.jsonl``.  Returns the record counts per file.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    anon = Anonymizer(salt)
    counts: dict[str, int] = {}

    seen_ips: set[str] = set()

    with open(directory / "downloads.jsonl", "w") as f:
        for rec in logs.downloads:
            seen_ips.add(rec.ip)
            f.write(json.dumps({
                "guid": anon.token("guid", rec.guid),
                "url": anon.token("url", rec.url),
                "cid": anon.token("url", rec.cid),
                "cp_code": rec.cp_code,
                "size": rec.size,
                "started_at": rec.started_at,
                "ended_at": rec.ended_at,
                "edge_bytes": rec.edge_bytes,
                "peer_bytes": rec.peer_bytes,
                "p2p_enabled": rec.p2p_enabled,
                "outcome": rec.outcome,
                "failure_class": rec.failure_class,
                "ip": anon.token("ip", rec.ip),
                "peers_initially_returned": rec.peers_initially_returned,
                "per_uploader_bytes": {
                    anon.token("guid", g): b
                    for g, b in rec.per_uploader_bytes.items()
                },
                "corrupted_bytes": rec.corrupted_bytes,
                "prefetch": rec.prefetch,
            }) + "\n")
        counts["downloads"] = len(logs.downloads)

    with open(directory / "logins.jsonl", "w") as f:
        for rec in logs.logins:
            seen_ips.add(rec.ip)
            f.write(json.dumps({
                "guid": anon.token("guid", rec.guid),
                "ip": anon.token("ip", rec.ip),
                "timestamp": rec.timestamp,
                "software_version": rec.software_version,
                "uploads_enabled": rec.uploads_enabled,
                "secondary_guids": [
                    anon.token("sguid", s) for s in rec.secondary_guids
                ],
            }) + "\n")
        counts["logins"] = len(logs.logins)

    with open(directory / "registrations.jsonl", "w") as f:
        for rec in logs.registrations:
            f.write(json.dumps({
                "guid": anon.token("guid", rec.guid),
                "cid": anon.token("url", rec.cid),
                "timestamp": rec.timestamp,
                "network_region": rec.network_region,
            }) + "\n")
        counts["registrations"] = len(logs.registrations)

    with open(directory / "geolocation.jsonl", "w") as f:
        n = 0
        for ip in sorted(seen_ips):
            if not ip:
                continue
            geo = geodb.get(ip)
            if geo is None:
                continue
            f.write(json.dumps({
                "ip": anon.token("ip", ip),
                "country_code": geo.country_code,
                "region": geo.region,
                "city": geo.city,
                "lat": geo.lat,
                "lon": geo.lon,
                "timezone": geo.timezone,
                "network": geo.network,
                "asn": geo.asn,
            }) + "\n")
            n += 1
        counts["geolocation"] = n

    return counts


def import_trace(directory: str | Path) -> tuple[LogStore, GeoDatabase]:
    """Read an exported trace back into (LogStore, GeoDatabase)."""
    directory = Path(directory)
    logs = LogStore()
    geodb = GeoDatabase()

    with open(directory / "downloads.jsonl") as f:
        for line in f:
            row = json.loads(line)
            logs.add_download(DownloadRecord(
                guid=row["guid"], url=row["url"], cid=row["cid"],
                cp_code=row["cp_code"], size=row["size"],
                started_at=row["started_at"], ended_at=row["ended_at"],
                edge_bytes=row["edge_bytes"], peer_bytes=row["peer_bytes"],
                p2p_enabled=row["p2p_enabled"], outcome=row["outcome"],
                failure_class=row["failure_class"], ip=row["ip"],
                peers_initially_returned=row["peers_initially_returned"],
                per_uploader_bytes=dict(row["per_uploader_bytes"]),
                corrupted_bytes=row["corrupted_bytes"],
                prefetch=row.get("prefetch", False),
            ))

    with open(directory / "logins.jsonl") as f:
        for line in f:
            row = json.loads(line)
            logs.add_login(LoginRecord(
                guid=row["guid"], ip=row["ip"], timestamp=row["timestamp"],
                software_version=row["software_version"],
                uploads_enabled=row["uploads_enabled"],
                secondary_guids=tuple(row["secondary_guids"]),
            ))

    with open(directory / "registrations.jsonl") as f:
        for line in f:
            row = json.loads(line)
            logs.add_registration(RegistrationRecord(
                guid=row["guid"], cid=row["cid"],
                timestamp=row["timestamp"],
                network_region=row["network_region"],
            ))

    with open(directory / "geolocation.jsonl") as f:
        for line in f:
            row = json.loads(line)
            geodb.register(row["ip"], GeoRecord(
                country_code=row["country_code"], region=row["region"],
                city=row["city"], lat=row["lat"], lon=row["lon"],
                timezone=row["timezone"], network=row["network"],
                asn=row["asn"],
            ))

    return logs, geodb
