"""Trace-level fault impact: what the log says a fault did to downloads.

The live gauges (time-to-reconnect, RE-ADD convergence) live with the
injector in :mod:`repro.faults.metrics`; this module computes the
download-level half of the recovery story from the trace, the way every
other analysis in §4–§6 works — so a fault sweep is compared against the
baseline with exactly the §5.2 bookkeeping.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.logstore import LogStore
from repro.analysis.records import OUTCOME_ABORTED, OUTCOME_COMPLETED, OUTCOME_FAILED

__all__ = ["window_outcomes", "fault_impact"]


def window_outcomes(
    logstore: LogStore,
    start: Optional[float] = None,
    end: Optional[float] = None,
    *,
    exclude_prefetch: bool = True,
) -> dict[str, float]:
    """Outcome split for downloads whose lifetime overlaps ``[start, end]``.

    With no window, every download counts.  A download overlaps the window
    when it started before ``end`` and ended at-or-after ``start`` — i.e.
    it was in flight at some point while the fault held.

    Returns ``downloads`` (count), outcome fractions (``completed`` /
    ``aborted`` / ``failed``), ``edge_only`` (fraction of p2p-enabled
    downloads that received zero peer bytes — the §3.8 fallback), and
    ``mean_peer_fraction`` (mean peer efficiency of p2p-enabled downloads).
    """
    records = [
        r for r in logstore.downloads
        if not (exclude_prefetch and r.prefetch)
        and (end is None or r.started_at < end)
        and (start is None or r.ended_at >= start)
    ]
    n = len(records)
    if n == 0:
        return {
            "downloads": 0, "completed": 0.0, "aborted": 0.0, "failed": 0.0,
            "edge_only": 0.0, "mean_peer_fraction": 0.0,
        }
    outcomes = {OUTCOME_COMPLETED: 0, OUTCOME_ABORTED: 0, OUTCOME_FAILED: 0}
    for r in records:
        if r.outcome in outcomes:
            outcomes[r.outcome] += 1
    p2p = [r for r in records if r.p2p_enabled]
    edge_only = sum(1 for r in p2p if r.peer_bytes == 0)
    mean_pf = 0.0
    if p2p:
        fractions = [
            r.peer_bytes / (r.edge_bytes + r.peer_bytes)
            for r in p2p if r.edge_bytes + r.peer_bytes > 0
        ]
        mean_pf = sum(fractions) / len(fractions) if fractions else 0.0
    return {
        "downloads": float(n),
        "completed": outcomes[OUTCOME_COMPLETED] / n,
        "aborted": outcomes[OUTCOME_ABORTED] / n,
        "failed": outcomes[OUTCOME_FAILED] / n,
        "edge_only": edge_only / len(p2p) if p2p else 0.0,
        "mean_peer_fraction": mean_pf,
    }


def fault_impact(
    baseline: dict[str, float], faulted: dict[str, float]
) -> dict[str, float]:
    """Deltas of a faulted run against its no-fault baseline.

    Positive ``completion_delta`` means the fault *improved* completion
    (noise); the §5.2-style expectation is a negative completion delta
    and/or a positive ``fallback_delta`` (more edge-only downloads).
    """
    return {
        "completion_delta": faulted["completed"] - baseline["completed"],
        "fallback_delta": faulted["edge_only"] - baseline["edge_only"],
        "peer_efficiency_delta":
            faulted["mean_peer_fraction"] - baseline["mean_peer_fraction"],
    }
