"""Section 6.2 analyses: user-managed machines — mobility and cloning.

Mobility: per GUID, the set of ASes connected from (paper: 80.6% one AS,
13.4% two, 6% more) and the maximum pairwise geolocation distance (77%
within 10 km).

Cloning (Figure 12): per primary GUID, build the graph whose vertices are
secondary GUIDs and whose edges connect GUIDs "that follow each other in a
login entry".  A normal installation yields a linear chain; a rolled-back
installation yields a tree.  The classifier reproduces the paper's pattern
taxonomy: linear chain / one short branch (failed update) / two long
branches (restored backup) / several short-medium branches (re-imaging or
cloning) / irregular.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

import networkx as nx

from repro.analysis.logstore import LogStore
from repro.net.geo import GeoDatabase, haversine_km

__all__ = [
    "MobilitySummary", "mobility_summary",
    "build_secondary_guid_graphs", "classify_graph", "figure12_pattern_census",
]


# ------------------------------------------------------------------ mobility


@dataclass
class MobilitySummary:
    """The §6.2 mobility statistics."""

    guids: int
    one_as: float          # fraction connecting from exactly one AS
    two_as: float
    more_as: float
    within_10km: float     # fraction whose max pairwise distance <= 10 km
    beyond_10km: float
    mean_new_connections_per_minute: float

    def rows(self) -> list[tuple[str, float]]:
        """(label, value) rows for reporting."""
        return [
            ("GUIDs observed", self.guids),
            ("single AS", self.one_as),
            ("two ASes", self.two_as),
            (">2 ASes", self.more_as),
            ("within 10 km", self.within_10km),
            ("beyond 10 km", self.beyond_10km),
            ("new connections/min", self.mean_new_connections_per_minute),
        ]


def mobility_summary(logs: LogStore, geodb: GeoDatabase) -> MobilitySummary:
    """Compute the mobility statistics from login records + geolocation."""
    as_sets: dict[str, set[int]] = defaultdict(set)
    locations: dict[str, list[tuple[float, float]]] = defaultdict(list)
    t_min = float("inf")
    t_max = float("-inf")
    for rec in logs.logins:
        geo = geodb.get(rec.ip)
        if geo is None:
            continue
        as_sets[rec.guid].add(geo.asn)
        point = (geo.lat, geo.lon)
        if point not in locations[rec.guid]:
            locations[rec.guid].append(point)
        t_min = min(t_min, rec.timestamp)
        t_max = max(t_max, rec.timestamp)

    n = len(as_sets)
    if n == 0:
        return MobilitySummary(0, 0, 0, 0, 0, 0, 0)

    one = sum(1 for s in as_sets.values() if len(s) == 1)
    two = sum(1 for s in as_sets.values() if len(s) == 2)
    more = n - one - two

    within = 0
    for points in locations.values():
        max_d = 0.0
        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                d = haversine_km(*points[i], *points[j])
                if d > max_d:
                    max_d = d
            if max_d > 10.0:
                break
        if max_d <= 10.0:
            within += 1

    minutes = max((t_max - t_min) / 60.0, 1.0)
    return MobilitySummary(
        guids=n,
        one_as=one / n,
        two_as=two / n,
        more_as=more / n,
        within_10km=within / n,
        beyond_10km=1.0 - within / n,
        mean_new_connections_per_minute=len(logs.logins) / minutes,
    )


# ------------------------------------------------------------------- Fig 12


def build_secondary_guid_graphs(
    logs: LogStore,
    *,
    min_vertices: int = 3,
) -> dict[str, nx.DiGraph]:
    """Per primary GUID, the directed secondary-GUID succession graph.

    Each login reports the last few secondary GUIDs, newest first; edges go
    older → newer between consecutive entries, exactly as the paper joins
    "GUIDs that follow each other in a login entry".  Graphs with fewer
    than ``min_vertices`` vertices are dropped (the paper analyses graphs
    with at least three).
    """
    graphs: dict[str, nx.DiGraph] = {}
    for guid, logins in logs.logins_by_guid().items():
        g = nx.DiGraph()
        for rec in logins:
            chain = list(rec.secondary_guids)  # newest first
            for newer, older in zip(chain, chain[1:]):
                g.add_edge(older, newer)
        if g.number_of_nodes() >= min_vertices:
            graphs[guid] = g
    return graphs


def classify_graph(g: nx.DiGraph) -> str:
    """Classify one secondary-GUID graph into the paper's Figure 12 taxonomy.

    Returns one of:

    * ``"linear"`` — a simple chain (normal installation);
    * ``"one_short_branch"`` — one long branch plus a single one-vertex
      branch (failed software update);
    * ``"two_long_branches"`` — two branches of length ≥2 (restored backup);
    * ``"several_branches"`` — three or more branches (re-imaging/cloning);
    * ``"irregular"`` — anything else (merges, cycles, multiple roots).
    """
    if g.number_of_nodes() == 0:
        return "irregular"
    # A well-formed history is a rooted out-tree.  Anything with a vertex
    # of in-degree > 1 (a merge) or a cycle is irregular.
    in_deg = dict(g.in_degree())
    roots = [v for v, d in in_deg.items() if d == 0]
    if len(roots) != 1 or any(d > 1 for d in in_deg.values()):
        return "irregular"
    if not nx.is_directed_acyclic_graph(g):  # pragma: no cover - defensive
        return "irregular"

    branch_points = [v for v, d in g.out_degree() if d > 1]
    if not branch_points:
        return "linear"

    # Measure the branches hanging off each branch point: the length of
    # each subtree below every extra child.
    branch_lengths: list[int] = []
    for v in branch_points:
        children = list(g.successors(v))
        subtree_sizes = sorted(
            (len(nx.descendants(g, c)) + 1 for c in children), reverse=True
        )
        # All but the largest subtree count as side branches.
        branch_lengths.extend(subtree_sizes[1:])

    if len(branch_lengths) == 1:
        if branch_lengths[0] == 1:
            return "one_short_branch"
        return "two_long_branches"
    return "several_branches"


def figure12_pattern_census(
    logs: LogStore,
    *,
    min_vertices: int = 3,
) -> dict[str, float]:
    """The Figure 12 statistics: pattern shares over all GUID graphs.

    Returns the share of each class plus ``"nonlinear"``, the total
    fraction of non-chain graphs (paper: 0.6%).
    """
    graphs = build_secondary_guid_graphs(logs, min_vertices=min_vertices)
    if not graphs:
        return {}
    census: Counter = Counter(classify_graph(g) for g in graphs.values())
    n = len(graphs)
    result = {k: v / n for k, v in census.items()}
    result["nonlinear"] = 1.0 - census.get("linear", 0) / n
    result["graphs"] = n
    return result
