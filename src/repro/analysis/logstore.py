"""The trace: an append-only store of control-plane log records.

Plays the role of the paper's one-month production data set (Table 1).  The
control plane appends records as the simulation runs; the analysis modules
query them afterwards.  Indexes are built lazily on first use and
invalidated on append, so tests that interleave writes and reads stay
correct without paying for reindexing during the simulation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.analysis.records import DownloadRecord, LoginRecord, RegistrationRecord

__all__ = ["LogStore"]


class LogStore:
    """In-memory trace of download, login, and registration records."""

    def __init__(self):
        self.downloads: list[DownloadRecord] = []
        self.logins: list[LoginRecord] = []
        self.registrations: list[RegistrationRecord] = []
        self._downloads_by_cid: dict[str, list[DownloadRecord]] | None = None
        self._logins_by_guid: dict[str, list[LoginRecord]] | None = None
        self._registrations_by_cid: dict[str, list[RegistrationRecord]] | None = None

    # ---------------------------------------------------------------- writes

    def add_download(self, record: DownloadRecord) -> None:
        """Append a download record (CN-side, at download end)."""
        self.downloads.append(record)
        self._downloads_by_cid = None

    def add_login(self, record: LoginRecord) -> None:
        """Append a login record (CN-side, at connection open)."""
        self.logins.append(record)
        self._logins_by_guid = None

    def add_registration(self, record: RegistrationRecord) -> None:
        """Append a DN registration entry."""
        self.registrations.append(record)
        self._registrations_by_cid = None

    # ---------------------------------------------------------------- reads

    def downloads_by_cid(self) -> dict[str, list[DownloadRecord]]:
        """Download records grouped by content id."""
        if self._downloads_by_cid is None:
            grouped: dict[str, list[DownloadRecord]] = defaultdict(list)
            for rec in self.downloads:
                grouped[rec.cid].append(rec)
            self._downloads_by_cid = dict(grouped)
        return self._downloads_by_cid

    def logins_by_guid(self) -> dict[str, list[LoginRecord]]:
        """Login records grouped by GUID, in append (time) order."""
        if self._logins_by_guid is None:
            grouped: dict[str, list[LoginRecord]] = defaultdict(list)
            for rec in self.logins:
                grouped[rec.guid].append(rec)
            self._logins_by_guid = dict(grouped)
        return self._logins_by_guid

    def registrations_by_cid(self) -> dict[str, list[RegistrationRecord]]:
        """Registration entries grouped by content id."""
        if self._registrations_by_cid is None:
            grouped: dict[str, list[RegistrationRecord]] = defaultdict(list)
            for rec in self.registrations:
                grouped[rec.cid].append(rec)
            self._registrations_by_cid = dict(grouped)
        return self._registrations_by_cid

    # ------------------------------------------------------------- utilities

    def distinct_guids(self) -> set[str]:
        """All GUIDs seen in any record type (Table 1's GUID count)."""
        guids = {r.guid for r in self.downloads}
        guids |= {r.guid for r in self.logins}
        guids |= {r.guid for r in self.registrations}
        return guids

    def distinct_ips(self) -> set[str]:
        """All IPs seen in download or login records."""
        ips = {r.ip for r in self.logins}
        ips |= {r.ip for r in self.downloads if r.ip}
        ips.discard("")
        return ips

    def distinct_urls(self) -> set[str]:
        """All URLs seen in download records."""
        return {r.url for r in self.downloads}

    def entry_count(self) -> int:
        """Total log entries of all kinds (Table 1's 'log entries')."""
        return len(self.downloads) + len(self.logins) + len(self.registrations)

    def completed_downloads(self) -> Iterable[DownloadRecord]:
        """Only the downloads that eventually completed."""
        return (r for r in self.downloads if r.outcome == "completed")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<LogStore downloads={len(self.downloads)} logins={len(self.logins)} "
            f"registrations={len(self.registrations)}>"
        )
