"""Section 4 analyses: overall statistics, provider mix, peer geography.

* :func:`table1_overall_statistics` — Table 1 (data-set counts);
* :func:`table2_provider_regions` — Table 2 (downloads by region for the
  largest content providers);
* :func:`figure2_peer_distribution` — Figure 2 (peer count per location,
  i.e. the bubble sizes, keyed by the first connection's location).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.analysis.logstore import LogStore
from repro.net.geo import GeoDatabase, REGIONS

__all__ = [
    "OverallStatistics", "table1_overall_statistics",
    "table2_provider_regions", "figure2_peer_distribution",
]


@dataclass
class OverallStatistics:
    """Table 1's rows for a trace."""

    log_entries: int
    guids: int
    distinct_urls: int
    distinct_ips: int
    downloads_initiated: int
    geolocated_ips: int
    distinct_locations: int
    distinct_asns: int
    distinct_countries: int

    def rows(self) -> list[tuple[str, int]]:
        """(label, value) rows in the paper's order."""
        return [
            ("Log entries", self.log_entries),
            ("Number of GUIDs", self.guids),
            ("Distinct URLs", self.distinct_urls),
            ("Distinct IPs", self.distinct_ips),
            ("Downloads initiated", self.downloads_initiated),
            ("Geolocated distinct IPs", self.geolocated_ips),
            ("Distinct locations", self.distinct_locations),
            ("Distinct autonomous systems", self.distinct_asns),
            ("Distinct country codes", self.distinct_countries),
        ]


def table1_overall_statistics(logs: LogStore, geodb: GeoDatabase) -> OverallStatistics:
    """Compute Table 1 from the trace plus the geolocation data set."""
    observed_ips = logs.distinct_ips()
    geo_seen = [geodb.get(ip) for ip in observed_ips]
    geo_seen = [g for g in geo_seen if g is not None]
    return OverallStatistics(
        log_entries=logs.entry_count(),
        guids=len(logs.distinct_guids()),
        distinct_urls=len(logs.distinct_urls()),
        distinct_ips=len(observed_ips),
        downloads_initiated=len(logs.downloads),
        geolocated_ips=len(geo_seen),
        distinct_locations=len({(g.lat, g.lon) for g in geo_seen}),
        distinct_asns=len({g.asn for g in geo_seen}),
        distinct_countries=len({g.country_code for g in geo_seen}),
    )


def table2_provider_regions(
    logs: LogStore,
    geodb: GeoDatabase,
    *,
    top_n: int = 10,
) -> dict[str, dict[str, float]]:
    """Downloads per region for the ``top_n`` providers plus "All".

    Returns ``{provider_key: {region: fraction}}`` where provider keys are
    ``cp<code>`` sorted by download volume, plus the aggregate row
    ``"All customers"``.  Fractions are of that provider's geolocated
    downloads (the paper's Table 2 is row-normalised percentages).
    """
    per_provider: dict[int, Counter] = defaultdict(Counter)
    volumes: Counter = Counter()
    for rec in logs.downloads:
        geo = geodb.get(rec.ip)
        if geo is None:
            continue
        per_provider[rec.cp_code][geo.region] += 1
        volumes[rec.cp_code] += 1

    top = [cp for cp, _count in volumes.most_common(top_n)]
    result: dict[str, dict[str, float]] = {}
    all_row: Counter = Counter()
    for cp in top:
        counts = per_provider[cp]
        total = sum(counts.values())
        result[f"cp{cp}"] = {
            region: counts.get(region, 0) / total for region in REGIONS
        }
    for counts in per_provider.values():
        all_row.update(counts)
    grand_total = sum(all_row.values())
    if grand_total:
        result["All customers"] = {
            region: all_row.get(region, 0) / grand_total for region in REGIONS
        }
    return result


def figure2_peer_distribution(
    logs: LogStore,
    geodb: GeoDatabase,
) -> dict[tuple[float, float], int]:
    """Figure 2's bubbles: peers per location of *first* connection.

    Returns ``{(lat, lon): peer count}``.
    """
    first_seen: dict[str, tuple[float, float]] = {}
    for rec in logs.logins:  # append order == time order
        if rec.guid in first_seen:
            continue
        geo = geodb.get(rec.ip)
        if geo is not None:
            first_seen[rec.guid] = (geo.lat, geo.lon)
    bubbles: Counter = Counter(first_seen.values())
    return dict(bubbles)
