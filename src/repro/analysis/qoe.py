"""Streaming QoE and ISP-impact analyses for the VoD workload.

Consumes only the control-plane trace (download records carry the QoE
fields when the session was a stream) plus the geo database — the same
log-driven discipline as every other analysis in this package.

Two question families:

* **QoE** — startup-delay percentiles, rebuffer ratio (stall time over
  watch time, the standard streaming-QoE quantity), abandonment, and how
  much of the stream bytes the peers carried (:func:`qoe_summary`);
* **ISP impact** — what each serving policy does to inter-AS transit *at
  the hour that matters*: :func:`peak_hour_transit` reconstructs per-AS
  hourly inter-AS upload volumes and reports each AS's busiest hour, the
  quantity an ISP provisions (and bills peering) against.
"""

from __future__ import annotations

import bisect
from collections import defaultdict

from repro.analysis.logstore import LogStore
from repro.analysis.stats import percentile
from repro.net.geo import GeoDatabase

__all__ = ["streamed_records", "qoe_summary", "peak_hour_transit",
           "peak_transit_total"]

_HOUR = 3600.0


def streamed_records(logs: LogStore) -> list:
    """The download records that were streaming sessions, in log order."""
    return [rec for rec in logs.downloads if rec.streamed]


def qoe_summary(logs: LogStore) -> dict[str, float]:
    """Aggregate streaming QoE over a trace.

    Returns a flat dict (zeros when the trace has no streams):

    * ``sessions`` — streaming sessions recorded;
    * ``startup_p50`` / ``startup_p90`` — startup-delay percentiles in
      seconds, over the sessions whose playback started;
    * ``never_started`` — fraction whose playback never began;
    * ``rebuffer_ratio`` — total stall seconds / (stall + watch seconds),
      watch time being the played fraction of each video's runtime;
    * ``rebuffers_per_session`` — mean stall count;
    * ``abandoned`` — fraction of sessions the viewer aborted;
    * ``peer_offload`` — fraction of stream bytes served by peers.
    """
    records = streamed_records(logs)
    if not records:
        return {
            "sessions": 0.0, "startup_p50": 0.0, "startup_p90": 0.0,
            "never_started": 0.0, "rebuffer_ratio": 0.0,
            "rebuffers_per_session": 0.0, "abandoned": 0.0,
            "peer_offload": 0.0,
        }
    startups = [r.startup_delay for r in records if r.startup_delay is not None]
    stall_time = sum(r.rebuffer_time for r in records)
    watch_time = sum(
        r.watched_fraction * (r.size / r.bitrate)
        for r in records if r.bitrate > 0
    )
    peer_bytes = sum(r.peer_bytes for r in records)
    total_bytes = sum(r.total_bytes for r in records)
    aborted = sum(1 for r in records if r.outcome == "aborted")
    n = len(records)
    return {
        "sessions": float(n),
        "startup_p50": percentile(startups, 50.0) if startups else 0.0,
        "startup_p90": percentile(startups, 90.0) if startups else 0.0,
        "never_started": (n - len(startups)) / n,
        "rebuffer_ratio": (
            stall_time / (stall_time + watch_time)
            if stall_time + watch_time > 0 else 0.0
        ),
        "rebuffers_per_session": sum(r.rebuffer_events for r in records) / n,
        "abandoned": aborted / n,
        "peer_offload": peer_bytes / total_bytes if total_bytes else 0.0,
    }


def peak_hour_transit(
    logs: LogStore,
    geodb: GeoDatabase,
    *,
    streamed_only: bool = True,
) -> dict[int, float]:
    """Each AS's busiest-hour inter-AS upload volume, in bytes.

    Reconstructs per-AS hourly transit the way an ISP's billing system
    would: every peer-served byte is attributed to the uploader's AS (via
    the login-record IP join the §6.1 analyses use), spread uniformly over
    the transfer's duration, and bucketed into wall-clock hours; the
    returned value per AS is the maximum hourly total.  Intra-AS bytes
    never count — they ride the ISP's own network.
    """
    login_index: dict[str, tuple[list[float], list[str]]] = {}
    for guid, logins in logs.logins_by_guid().items():
        login_index[guid] = ([l.timestamp for l in logins],
                             [l.ip for l in logins])

    def asn_of(guid: str, when: float) -> int | None:
        entry = login_index.get(guid)
        if entry is None:
            return None
        times, ips = entry
        idx = max(0, bisect.bisect_right(times, when) - 1)
        geo = geodb.get(ips[idx])
        return geo.asn if geo is not None else None

    hourly: dict[int, dict[int, float]] = defaultdict(lambda: defaultdict(float))
    for rec in logs.downloads:
        if streamed_only and not rec.streamed:
            continue
        if not rec.per_uploader_bytes:
            continue
        geo_down = geodb.get(rec.ip)
        if geo_down is None:
            continue
        as_to = geo_down.asn
        start, end = rec.started_at, max(rec.ended_at, rec.started_at + 1.0)
        span = end - start
        first, last = int(start // _HOUR), int((end - 1e-9) // _HOUR)
        for uploader_guid, nbytes in rec.per_uploader_bytes.items():
            as_from = asn_of(uploader_guid, rec.ended_at)
            if as_from is None or as_from == as_to:
                continue
            for hour in range(first, last + 1):
                lo = max(start, hour * _HOUR)
                hi = min(end, (hour + 1) * _HOUR)
                if hi > lo:
                    hourly[as_from][hour] += nbytes * (hi - lo) / span
    return {asn: max(buckets.values()) for asn, buckets in hourly.items()}


def peak_transit_total(per_as: dict[int, float]) -> float:
    """Fleet-wide peak-hour transit: the sum of every AS's busiest hour."""
    return float(sum(per_as.values()))
