"""Log record schemas — the interface between the system and the study.

The paper's measurement study (§4.1) works from control-plane logs with two
kinds of entries — download records and login records — joined against
EdgeScape geolocation data, plus DN registration entries (used for the
copies-vs-efficiency analysis of Figure 5).  Our simulated control plane
emits records with the same fields, anonymized the same way (file names,
IPs, and GUIDs are hashed in the paper; we keep raw values and hash at
export time, since our values are already synthetic).

The analysis layer consumes *only* these records plus the geo database —
never simulator internals — so the measurement code paths are the same ones
the authors ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DownloadRecord", "LoginRecord", "RegistrationRecord",
    "OUTCOME_COMPLETED", "OUTCOME_FAILED", "OUTCOME_ABORTED",
    "FAILURE_SYSTEM", "FAILURE_OTHER",
]

OUTCOME_COMPLETED = "completed"
OUTCOME_FAILED = "failed"
OUTCOME_ABORTED = "aborted"    # paused/terminated by the user, never resumed

FAILURE_SYSTEM = "system"      # e.g. too many corrupted content blocks
FAILURE_OTHER = "other"        # e.g. user's disk full


@dataclass
class DownloadRecord:
    """One download, as recorded by the CN when it ends (paper §4.1).

    "the CN records information about the download, including the GUID of
    the peer, the name and size of the file, the CP code, the time the
    download started and ended, and the number of bytes downloaded from the
    infrastructure and from peers."
    """

    guid: str
    url: str
    cid: str
    cp_code: int
    size: int
    started_at: float
    ended_at: float
    edge_bytes: int
    peer_bytes: int
    p2p_enabled: bool
    outcome: str
    failure_class: str | None = None
    ip: str = ""
    #: Number of peer candidates the control plane returned on the first
    #: query (Figure 6's x-axis); 0 for infrastructure-only downloads.
    peers_initially_returned: int = 0
    #: Bytes received from each uploader GUID (drives the §6.1 AS matrix).
    per_uploader_bytes: dict[str, int] = field(default_factory=dict)
    #: Bytes discarded due to failed piece verification.
    corrupted_bytes: int = 0
    #: True when the download was started by the predictive-placement
    #: policy rather than a user (the extension NetSession lacks; §5.2).
    prefetch: bool = False
    #: True when the session was a streaming playback (``repro.vod``); the
    #: QoE fields below are only meaningful then.
    streamed: bool = False
    #: Seconds from request to first frame; None if playback never started.
    startup_delay: float | None = None
    #: Mid-stream stalls and total stall seconds over the transfer.
    rebuffer_events: int = 0
    rebuffer_time: float = 0.0
    #: Playhead position as a fraction of the video when the transfer
    #: ended (final for aborted sessions; a lower bound for completed
    #: transfers whose playback was still running).
    watched_fraction: float = 0.0
    #: Video consumption rate in bytes/second (0 for plain downloads).
    bitrate: float = 0.0

    @property
    def total_bytes(self) -> int:
        """Useful bytes obtained from all sources."""
        return self.edge_bytes + self.peer_bytes

    @property
    def peer_fraction(self) -> float:
        """Fraction of useful bytes that came from peers (peer efficiency)."""
        total = self.total_bytes
        if total <= 0:
            return 0.0
        return self.peer_bytes / total

    @property
    def duration(self) -> float:
        """Wall-clock length of the download, including paused time."""
        return self.ended_at - self.started_at

    def average_speed_bps(self) -> float:
        """Average download speed in bytes/second over the full duration."""
        if self.duration <= 0:
            return 0.0
        return self.total_bytes / self.duration


@dataclass
class LoginRecord:
    """One control-plane connection, as recorded by the CN (paper §4.1).

    "when a peer opens a connection to the control plane, the CN records the
    peer's current IP address, its software version, and whether or not
    uploads are enabled on that peer."
    """

    guid: str
    ip: str
    timestamp: float
    software_version: str
    uploads_enabled: bool
    #: Last five secondary GUIDs, newest first (§6.2 instrumentation).
    secondary_guids: tuple[str, ...] = ()


@dataclass
class RegistrationRecord:
    """A DN log entry: a peer registered a complete copy of an object.

    Figure 5 counts these per file to estimate how many copies were
    available.
    """

    guid: str
    cid: str
    timestamp: float
    network_region: str
