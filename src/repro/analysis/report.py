"""Text rendering of tables and figure series, paper-style.

Every experiment runner prints through these helpers so benchmark output
looks like the paper's tables: fixed-width rows, percentages where the
paper uses percentages, and an optional paper-value column for visual
comparison.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_series", "render_comparison", "render_perf",
           "render_audit", "pct", "human_bytes"]


def pct(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def human_bytes(n: float) -> str:
    """Format a byte count with binary-ish SI units (paper uses kB/MB/GB/TB)."""
    for unit in ("B", "kB", "MB", "GB", "TB", "PB"):
        if abs(n) < 1000.0:
            return f"{n:.1f}{unit}"
        n /= 1000.0
    return f"{n:.1f}EB"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    min_width: int = 10,
) -> str:
    """Render a fixed-width text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [max(min_width, len(h)) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(
            cell.ljust(w) for cell, w in zip(row, widths)
        ))
    return "\n".join(lines)


def render_series(
    title: str,
    series: dict[str, list[tuple[float, float]]],
    *,
    samples: int = 12,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render figure series as downsampled (x, y) rows per named line.

    CDFs and curves have hundreds of points; benchmarks print a dozen
    evenly spaced samples per series, which is enough to read the shape.
    """
    lines = [title, "=" * len(title)]
    for name, points in series.items():
        lines.append(f"[{name}]  ({len(points)} points)  {x_label} -> {y_label}")
        if not points:
            lines.append("  (empty)")
            continue
        if len(points) <= samples:
            shown = points
        else:
            step = (len(points) - 1) / (samples - 1)
            shown = [points[round(i * step)] for i in range(samples)]
        for x, y in shown:
            lines.append(f"  {x:>14.4g}  {y:>10.4g}")
    return "\n".join(lines)


def render_perf(title: str, counters: dict[str, object]) -> str:
    """Render a flat counter dict (e.g. ``SystemStats.as_dict()``) as a table.

    Integer-valued floats print without the trailing ``.0`` so counter
    tables stay aligned and diff-friendly.
    """
    rows = []
    for key, value in counters.items():
        if isinstance(value, float) and value == int(value):
            value = int(value)
        rows.append((key, value))
    return render_table(title, ["counter", "value"], rows)


def render_audit(title: str, audit: dict) -> str:
    """Render an invariant-audit summary (counters plus violations).

    ``audit`` is the shape drill reports and ``repro audit`` produce: the
    flat :class:`~repro.invariants.InvariantStats` counters plus a
    ``violations`` list of :meth:`~repro.invariants.InvariantViolation.as_dict`
    entries.  Deterministic for a fixed audit, like every renderer here.
    """
    counters = {k: v for k, v in audit.items() if k != "violations"}
    lines = [render_perf(title, counters)]
    violations = audit.get("violations", [])
    if violations:
        rows = []
        for v in violations:
            times = f"{v['first_seen']:.0f}s"
            if v["count"] > 1:
                times += f"..{v['last_seen']:.0f}s x{v['count']}"
            rows.append([v["severity"], v["invariant"], v["subject"],
                         times, v["detail"]])
        lines.append("")
        lines.append(render_table(
            "invariant violations",
            ["severity", "invariant", "subject", "seen", "detail"],
            rows,
        ))
    return "\n".join(lines)


def render_comparison(
    title: str,
    rows: Iterable[tuple[str, object, object]],
) -> str:
    """Render (metric, paper value, measured value) comparison rows."""
    table_rows = [(m, str(p), str(v)) for m, p, v in rows]
    return render_table(title, ["metric", "paper", "measured"], table_rows)
