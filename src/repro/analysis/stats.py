"""Statistical helpers shared by the analyses: CDFs, binning, percentiles.

Small, dependency-light utilities so every figure module computes its
series the same way.  All functions are pure and operate on plain Python
sequences (numpy is used internally where it pays).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "cdf_points", "percentile", "log_bins", "bin_index", "mean",
    "weighted_fraction", "gini",
]


def cdf_points(values: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) points, value-sorted.

    Returns an empty list for empty input.  Fractions are in (0, 1] with
    the last point at exactly 1.0.
    """
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (q in [0, 100]) with linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for empty input (analyses treat empty as zero)."""
    total = 0.0
    count = 0
    for v in values:
        total += v
        count += 1
    return total / count if count else 0.0


def log_bins(low: float, high: float, per_decade: int = 4) -> list[float]:
    """Logarithmically spaced bin edges covering [low, high].

    The returned edges start at or below ``low`` and end at or above
    ``high``; useful for the paper's log-x CDFs and scatter aggregations.
    """
    if low <= 0 or high < low:
        raise ValueError(f"invalid log-bin range [{low}, {high}]")
    if per_decade <= 0:
        raise ValueError("per_decade must be positive")
    start = math.floor(math.log10(low) * per_decade)
    stop = math.ceil(math.log10(high) * per_decade)
    return [10 ** (k / per_decade) for k in range(start, stop + 1)]


def bin_index(edges: Sequence[float], value: float) -> int:
    """Index of the bin (between consecutive edges) containing ``value``.

    Values below the first edge map to bin 0; values at or above the last
    edge map to the final bin.
    """
    if len(edges) < 2:
        raise ValueError("need at least two edges")
    for i in range(1, len(edges)):
        if value < edges[i]:
            return i - 1
    return len(edges) - 2


def weighted_fraction(pairs: Iterable[tuple[float, float]]) -> float:
    """Sum(numerator) / sum(denominator) over (numerator, denominator) pairs.

    Used for byte-weighted ratios like overall peer efficiency.  Returns
    0.0 when the denominator is zero.
    """
    num = 0.0
    den = 0.0
    for n, d in pairs:
        num += n
        den += d
    return num / den if den else 0.0


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative distribution (0 = equal, →1 = skewed).

    Used to characterise the inter-AS upload concentration ("2% of ASes sent
    90% of the bytes", Figure 9b).
    """
    if not values:
        return 0.0
    arr = np.sort(np.asarray(values, dtype=float))
    if np.any(arr < 0):
        raise ValueError("gini requires non-negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = len(arr)
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * arr) / (n * total)) - (n + 1) / n)
