"""Parameter sweeps: how the headline results move with the environment.

The paper reports one production operating point; a reproduction can ask
the questions the authors could not — how does peer efficiency scale with
the installed base, with the upload-enabled fraction (Table 4's lever), or
with the warm content density (Figure 5's x-axis, controlled directly)?

Each sweep runs a series of small scenarios varying one knob and returns
``SweepResult`` rows ready for plotting or table rendering.  These power
the ablation/extension analyses in EXPERIMENTS.md and give downstream
users a template for their own studies.

Import directly (``from repro.analysis.sweeps import sweep_warm_copies``) —
this module sits above the workload layer and is deliberately not re-exported
from ``repro.analysis`` to keep the package import-cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.analysis.benefits import offload_summary
from repro.runner import Orchestrator
from repro.workload import (
    DemandConfig, PopulationConfig, ScenarioConfig,
)

__all__ = ["SweepPoint", "SweepResult", "sweep",
           "sweep_population", "sweep_warm_copies", "sweep_upload_enabled"]


@dataclass(frozen=True)
class SweepPoint:
    """One scenario evaluation within a sweep."""

    knob: float
    mean_peer_efficiency: float
    byte_weighted_efficiency: float
    p2p_byte_share: float
    completed_fraction: float


@dataclass(frozen=True)
class SweepResult:
    """A finished sweep: knob name plus the measured points, knob-sorted."""

    knob_name: str
    points: tuple[SweepPoint, ...]

    def series(self, metric: str = "byte_weighted_efficiency") -> list[tuple[float, float]]:
        """(knob, metric) pairs for plotting/rendering."""
        return [(p.knob, getattr(p, metric)) for p in self.points]

    def is_monotone_nondecreasing(self, metric: str = "byte_weighted_efficiency",
                                  tolerance: float = 0.05) -> bool:
        """Does the metric rise (within tolerance) along the knob?"""
        values = [getattr(p, metric) for p in self.points]
        return all(b >= a - tolerance for a, b in zip(values, values[1:]))


def _evaluate(result, knob: float) -> SweepPoint:
    """Measure one point; ``result`` is any object with a ``logstore``."""
    summary = offload_summary(result.logstore)
    downloads = result.logstore.downloads
    completed = sum(1 for r in downloads if r.outcome == "completed")
    return SweepPoint(
        knob=knob,
        mean_peer_efficiency=summary.mean_peer_efficiency,
        byte_weighted_efficiency=summary.byte_weighted_efficiency,
        p2p_byte_share=summary.p2p_byte_share,
        completed_fraction=completed / len(downloads) if downloads else 0.0,
    )


def sweep(
    knob_name: str,
    values: list[float],
    configure: Callable[[ScenarioConfig, float], ScenarioConfig],
    *,
    base: ScenarioConfig | None = None,
    seed: int = 42,
    jobs: int = 1,
    runner: Optional[Orchestrator] = None,
) -> SweepResult:
    """Run ``configure(base, v)`` for each knob value and measure offload.

    The points of a sweep are distinct scenarios, so they fan out across
    the orchestrator's process pool (``jobs``); results are merged back in
    knob order, so the returned series is identical for every job count.
    Pass ``runner`` to share an existing orchestrator (and its caches)
    across several sweeps.
    """
    if base is None:
        base = _small_base(seed)
    if runner is None:
        runner = Orchestrator(jobs=jobs)
    artifacts = runner.run_many([configure(base, value) for value in values])
    points = [_evaluate(artifact, value)
              for artifact, value in zip(artifacts, values)]
    return SweepResult(knob_name=knob_name, points=tuple(points))


def _small_base(seed: int) -> ScenarioConfig:
    from repro.workload import CatalogConfig

    return ScenarioConfig(
        seed=seed,
        duration_days=2.0,
        population=PopulationConfig(n_peers=600),
        catalog=CatalogConfig(objects_per_provider=30),
        demand=DemandConfig(total_downloads=700, duration_days=2.0),
    )


def sweep_population(
    sizes: list[float] | None = None, *, seed: int = 42,
    base: ScenarioConfig | None = None, jobs: int = 1,
    runner: Optional[Orchestrator] = None,
) -> SweepResult:
    """Peer efficiency vs installed-base size (the paper's growth story)."""
    sizes = sizes if sizes is not None else [200, 500, 1000]

    def configure(cfg: ScenarioConfig, value: float) -> ScenarioConfig:
        return replace(cfg, population=replace(cfg.population,
                                               n_peers=int(value)))

    return sweep("n_peers", sizes, configure, seed=seed, base=base,
                 jobs=jobs, runner=runner)


def sweep_warm_copies(
    densities: list[float] | None = None, *, seed: int = 42,
    base: ScenarioConfig | None = None, jobs: int = 1,
    runner: Optional[Orchestrator] = None,
) -> SweepResult:
    """Peer efficiency vs content density (Figure 5's axis, set directly)."""
    densities = densities if densities is not None else [0.0, 1.0, 4.0]

    def configure(cfg: ScenarioConfig, value: float) -> ScenarioConfig:
        return replace(cfg, warm_copies_per_peer=value)

    return sweep("warm_copies_per_peer", densities, configure, seed=seed,
                 base=base, jobs=jobs, runner=runner)


def sweep_upload_enabled(
    rates: list[float] | None = None, *, seed: int = 42,
    base: ScenarioConfig | None = None, jobs: int = 1,
    runner: Optional[Orchestrator] = None,
) -> SweepResult:
    """Peer efficiency vs upload-enabled fraction (Table 4's lever).

    Overrides every provider's binary default with one rate: what would the
    system deliver if all customers shipped like Customer D (94%) — or like
    Customer A (<1%)?
    """
    rates = rates if rates is not None else [0.05, 0.3, 0.9]

    def configure(cfg: ScenarioConfig, value: float) -> ScenarioConfig:
        return replace(cfg, upload_rate_override=value)

    return sweep("upload_enabled_rate", rates, configure, seed=seed, base=base,
                 jobs=jobs, runner=runner)
