"""Section 6.1 analyses: does the p2p traffic burden ISPs?

Reconstructs the paper's methodology exactly: each peer-assisted download
record lists the GUIDs that sent content bytes; the login data maps each
GUID to the IP it was using at the time; EdgeScape maps the IP to an AS.
The result is a set of (bytes, AS_from, AS_to) flows, aggregated per AS and
per AS pair.  Infrastructure bytes are excluded (an infrastructure CDN
would send them anyway), as are packet headers/protocol overhead.

Figures: 9(a) inter-AS upload CDF, 9(b) cumulative contribution, 9(c) IPs
per AS for light vs heavy uploaders, 10 upload-vs-download balance, 11
pairwise balance between directly connected heavy uploaders.
"""

from __future__ import annotations

import bisect
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.analysis.logstore import LogStore
from repro.analysis.stats import cdf_points
from repro.net.geo import GeoDatabase
from repro.net.topology import ASTopology

__all__ = ["TrafficMatrix", "build_traffic_matrix", "figure9a_upload_cdf",
           "figure9b_cumulative_contribution", "figure9c_ips_per_as",
           "figure10_balance_scatter", "figure11_pair_balance",
           "heavy_uploader_ases", "locality_shares", "site_local_share"]


@dataclass
class TrafficMatrix:
    """Aggregated peer-to-peer content-byte flows at AS granularity."""

    #: bytes sent from AS a to AS b, a != b.
    inter_as: dict[tuple[int, int], int] = field(default_factory=dict)
    intra_as_bytes: int = 0
    total_bytes: int = 0
    #: All ASes in which any peer was observed (denominator for Fig 9a).
    observed_ases: set[int] = field(default_factory=set)
    #: Distinct IPs observed per AS (Figure 9c).
    ips_per_as: dict[int, set] = field(default_factory=dict)
    #: Flows whose uploader could not be located (no login before the
    #: download ended) — excluded from the matrix, counted for honesty.
    unresolved_bytes: int = 0

    def uploaded_by(self, asn: int) -> int:
        """Inter-AS bytes sent by an AS to other ASes."""
        return sum(v for (a, _b), v in self.inter_as.items() if a == asn)

    def downloaded_by(self, asn: int) -> int:
        """Inter-AS bytes received by an AS from other ASes."""
        return sum(v for (a, b), v in self.inter_as.items() if b == asn)

    def per_as_uploads(self) -> dict[int, int]:
        """Inter-AS bytes uploaded, for every observed AS (zeros included)."""
        out = {asn: 0 for asn in self.observed_ases}
        for (a, _b), v in self.inter_as.items():
            out[a] = out.get(a, 0) + v
        return out

    def per_as_downloads(self) -> dict[int, int]:
        """Inter-AS bytes downloaded, for every observed AS (zeros included)."""
        out = {asn: 0 for asn in self.observed_ases}
        for (_a, b), v in self.inter_as.items():
            out[b] = out.get(b, 0) + v
        return out

    @property
    def intra_as_fraction(self) -> float:
        """Share of p2p bytes exchanged within a single AS (paper: 18%)."""
        if self.total_bytes == 0:
            return 0.0
        return self.intra_as_bytes / self.total_bytes


def build_traffic_matrix(logs: LogStore, geodb: GeoDatabase) -> TrafficMatrix:
    """Reconstruct the AS-level p2p traffic matrix from the trace."""
    matrix = TrafficMatrix()

    # GUID -> sorted (timestamp, ip) from login records.
    login_index: dict[str, tuple[list[float], list[str]]] = {}
    for guid, logins in logs.logins_by_guid().items():
        times = [l.timestamp for l in logins]
        ips = [l.ip for l in logins]
        login_index[guid] = (times, ips)

    def asn_of_guid_at(guid: str, when: float) -> int | None:
        entry = login_index.get(guid)
        if entry is None:
            return None
        times, ips = entry
        idx = bisect.bisect_right(times, when) - 1
        if idx < 0:
            idx = 0  # first login was just after; same machine
        geo = geodb.get(ips[idx])
        return geo.asn if geo is not None else None

    # Observed ASes and IPs per AS come from every login in the trace.
    for rec in logs.logins:
        geo = geodb.get(rec.ip)
        if geo is None:
            continue
        matrix.observed_ases.add(geo.asn)
        matrix.ips_per_as.setdefault(geo.asn, set()).add(rec.ip)

    inter: Counter = Counter()
    for rec in logs.downloads:
        if not rec.per_uploader_bytes:
            continue
        geo_down = geodb.get(rec.ip)
        if geo_down is None:
            continue
        as_to = geo_down.asn
        for uploader_guid, nbytes in rec.per_uploader_bytes.items():
            as_from = asn_of_guid_at(uploader_guid, rec.ended_at)
            if as_from is None:
                matrix.unresolved_bytes += nbytes
                continue
            matrix.total_bytes += nbytes
            if as_from == as_to:
                matrix.intra_as_bytes += nbytes
            else:
                inter[(as_from, as_to)] += nbytes
    matrix.inter_as = dict(inter)
    return matrix


def figure9a_upload_cdf(matrix: TrafficMatrix) -> list[tuple[float, float]]:
    """CDF of inter-AS bytes uploaded per AS (Figure 9a).

    Includes the observed ASes that uploaded nothing — the paper notes
    roughly half the ASes sent no inter-AS bytes at all.
    """
    uploads = list(matrix.per_as_uploads().values())
    return cdf_points([float(v) for v in uploads])


def figure9b_cumulative_contribution(matrix: TrafficMatrix) -> list[tuple[float, float]]:
    """Cumulative share of total inter-AS bytes vs per-AS upload (Figure 9b).

    A point (x, y): ASes uploading less than x bytes contributed y of the
    total.  The paper: ASes below 163 GB (98% of ASes) contributed just 10%.
    """
    uploads = sorted(matrix.per_as_uploads().values())
    total = sum(uploads)
    if total == 0:
        return []
    points = []
    cum = 0
    for v in uploads:
        cum += v
        points.append((float(v), cum / total))
    return points


def heavy_uploader_ases(matrix: TrafficMatrix, byte_share: float = 0.9) -> set[int]:
    """The smallest set of top uploader ASes covering ``byte_share`` of bytes.

    The paper's "heavy uploaders": 2% of ASes responsible for 90% of the
    p2p traffic.
    """
    uploads = matrix.per_as_uploads()
    total = sum(uploads.values())
    if total == 0:
        return set()
    heavy: set[int] = set()
    cum = 0
    for asn, v in sorted(uploads.items(), key=lambda kv: kv[1], reverse=True):
        if cum >= byte_share * total:
            break
        heavy.add(asn)
        cum += v
    return heavy


def figure9c_ips_per_as(
    matrix: TrafficMatrix,
) -> dict[str, list[tuple[float, float]]]:
    """CDFs of distinct IPs per AS, split into light vs heavy uploaders.

    The paper's natural explanation for the heavy tail: heavy uploaders
    simply contain a lot more peers (Figure 9c).
    """
    heavy = heavy_uploader_ases(matrix)
    light_counts: list[float] = []
    heavy_counts: list[float] = []
    for asn in matrix.observed_ases:
        n_ips = float(len(matrix.ips_per_as.get(asn, ())))
        if asn in heavy:
            heavy_counts.append(n_ips)
        else:
            light_counts.append(n_ips)
    return {
        "light": cdf_points(light_counts),
        "heavy": cdf_points(heavy_counts),
    }


def figure10_balance_scatter(
    matrix: TrafficMatrix,
) -> list[tuple[int, float, float, bool]]:
    """Per-AS (uploaded, downloaded) scatter with heavy flag (Figure 10).

    Returns (asn, uploaded bytes, downloaded bytes, is_heavy) rows for
    every observed AS.  The paper's finding: heavy uploaders sit near the
    diagonal (balanced); big imbalances only occur at tiny volumes.
    """
    ups = matrix.per_as_uploads()
    downs = matrix.per_as_downloads()
    heavy = heavy_uploader_ases(matrix)
    return [
        (asn, float(ups.get(asn, 0)), float(downs.get(asn, 0)), asn in heavy)
        for asn in matrix.observed_ases
    ]


def figure11_pair_balance(
    matrix: TrafficMatrix,
    topology: ASTopology,
    *,
    directly_connected_only: bool = True,
) -> list[tuple[int, int, float, float]]:
    """Pairwise traffic balance between heavy-uploader ASes (Figure 11).

    Returns (as_a, as_b, bytes a→b, bytes b→a) for unordered heavy pairs
    with any traffic; restricted to pairs with a direct edge in the AS
    graph when ``directly_connected_only`` (the paper's CAIDA estimate).
    """
    heavy = heavy_uploader_ases(matrix)
    pair_bytes: dict[tuple[int, int], list[float]] = defaultdict(lambda: [0.0, 0.0])
    for (a, b), v in matrix.inter_as.items():
        if a not in heavy or b not in heavy:
            continue
        key = (min(a, b), max(a, b))
        if a < b:
            pair_bytes[key][0] += v
        else:
            pair_bytes[key][1] += v
    rows = []
    for (a, b), (ab, ba) in pair_bytes.items():
        if directly_connected_only and not topology.directly_connected(a, b):
            continue
        rows.append((a, b, ab, ba))
    return rows


def locality_shares(logs: LogStore, geodb: GeoDatabase) -> dict[str, float]:
    """Byte shares of p2p traffic staying within AS / country / region.

    The §7-cited conclusion — "the CDN can avoid a large impact on ISPs by
    using a simple locality-aware peer selection strategy" — is about how
    far the bytes travel; these shares quantify it at three radii.
    """
    login_index: dict[str, tuple[list[float], list[str]]] = {}
    for guid, logins in logs.logins_by_guid().items():
        login_index[guid] = ([l.timestamp for l in logins],
                             [l.ip for l in logins])

    totals = {"intra_as": 0, "intra_country": 0, "intra_region": 0, "all": 0}
    for rec in logs.downloads:
        if not rec.per_uploader_bytes:
            continue
        down = geodb.get(rec.ip)
        if down is None:
            continue
        for uploader_guid, nbytes in rec.per_uploader_bytes.items():
            entry = login_index.get(uploader_guid)
            if entry is None:
                continue
            times, ips = entry
            idx = max(0, bisect.bisect_right(times, rec.ended_at) - 1)
            up = geodb.get(ips[idx])
            if up is None:
                continue
            totals["all"] += nbytes
            if up.asn == down.asn:
                totals["intra_as"] += nbytes
            if up.country_code == down.country_code:
                totals["intra_country"] += nbytes
            if up.region == down.region:
                totals["intra_region"] += nbytes
    if totals["all"] == 0:
        return {"intra_as": 0.0, "intra_country": 0.0, "intra_region": 0.0}
    return {
        "intra_as": totals["intra_as"] / totals["all"],
        "intra_country": totals["intra_country"] / totals["all"],
        "intra_region": totals["intra_region"] / totals["all"],
    }


def site_local_share(logs: LogStore, site_of_guid: dict[str, str]) -> float:
    """Fraction of p2p bytes exchanged within one LAN site (§5.3).

    ``site_of_guid`` maps peer GUIDs to site ids (the operator knows its
    fleet).  The paper found this case rare in 2012 but flagged it as the
    software-update opportunity; the enterprise-updates experiment measures
    it directly.
    """
    local = 0
    total = 0
    for rec in logs.downloads:
        down_site = site_of_guid.get(rec.guid, "")
        for uploader, nbytes in rec.per_uploader_bytes.items():
            total += nbytes
            if down_site and site_of_guid.get(uploader, "") == down_site:
                local += nbytes
    return local / total if total else 0.0
