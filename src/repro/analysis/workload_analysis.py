"""Section 4.4 analyses: the workload's shape (Figure 3).

* :func:`figure3a_size_cdfs` — request distribution by object size, split
  into infrastructure-only / all / peer-assisted (the paper's headline:
  82% of peer-assisted requests are for objects larger than 500 MB);
* :func:`figure3b_popularity` — downloads per object by popularity rank
  (the "nearly ubiquitous power law");
* :func:`figure3c_bytes_over_time` — bytes served per hour across the trace
  (the diurnal pattern).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.analysis.logstore import LogStore
from repro.analysis.stats import cdf_points

__all__ = [
    "figure3a_size_cdfs", "figure3b_popularity", "figure3c_bytes_over_time",
    "fraction_of_requests_above", "power_law_exponent",
]


def figure3a_size_cdfs(logs: LogStore) -> dict[str, list[tuple[float, float]]]:
    """CDFs of request count vs object size (GB), per delivery class.

    Returns ``{"infrastructure": [...], "all": [...], "peer_assisted": [...]}``
    with (size_gb, cumulative fraction) points.
    """
    infra: list[float] = []
    p2p: list[float] = []
    for rec in logs.downloads:
        size_gb = rec.size / 1e9
        if rec.p2p_enabled:
            p2p.append(size_gb)
        else:
            infra.append(size_gb)
    return {
        "infrastructure": cdf_points(infra),
        "all": cdf_points(infra + p2p),
        "peer_assisted": cdf_points(p2p),
    }


def fraction_of_requests_above(logs: LogStore, size_bytes: float,
                               *, p2p_only: bool = True) -> float:
    """Fraction of (peer-assisted) requests for objects above a size.

    The paper reports 82% of peer-assisted requests above 500 MB.
    """
    pool = [r for r in logs.downloads if r.p2p_enabled] if p2p_only else logs.downloads
    if not pool:
        return 0.0
    return sum(1 for r in pool if r.size > size_bytes) / len(pool)


def figure3b_popularity(logs: LogStore) -> list[tuple[int, int]]:
    """Downloads per object, by descending popularity rank.

    Returns (rank, download count) with rank starting at 1 — both axes are
    plotted on log scales in the paper.
    """
    counts = Counter(rec.cid for rec in logs.downloads)
    ordered = sorted(counts.values(), reverse=True)
    return [(rank + 1, count) for rank, count in enumerate(ordered)]


def power_law_exponent(series: list[tuple[int, int]]) -> float:
    """Least-squares slope of log(count) vs log(rank) — the Zipf exponent.

    Returns the (negative) slope; a workload is "power-law-ish" when this
    is clearly below zero.  Requires at least three distinct ranks.
    """
    if len(series) < 3:
        raise ValueError("need at least 3 points to fit a power law")
    ranks = np.log10([r for r, _ in series])
    counts = np.log10([max(c, 1) for _, c in series])
    slope, _intercept = np.polyfit(ranks, counts, 1)
    return float(slope)


def figure3c_bytes_over_time(
    logs: LogStore,
    *,
    bucket_seconds: float = 3600.0,
) -> list[tuple[float, float]]:
    """Bytes delivered per time bucket (Figure 3c's TB/hour series).

    A download's bytes are attributed uniformly across its duration, which
    matches how a byte-rate plot of flow logs behaves.  Returns
    (bucket start time, bytes in bucket).
    """
    if bucket_seconds <= 0:
        raise ValueError("bucket_seconds must be positive")
    buckets: Counter = Counter()
    for rec in logs.downloads:
        total = rec.total_bytes
        if total <= 0:
            continue
        start, end = rec.started_at, max(rec.ended_at, rec.started_at + 1.0)
        duration = end - start
        first = int(start // bucket_seconds)
        last = int((end - 1e-9) // bucket_seconds)
        for b in range(first, last + 1):
            lo = max(start, b * bucket_seconds)
            hi = min(end, (b + 1) * bucket_seconds)
            buckets[b] += total * (hi - lo) / duration
    return [(b * bucket_seconds, v) for b, v in sorted(buckets.items())]
