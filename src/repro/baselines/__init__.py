"""Baselines: the two ends of the CDN design space (paper §2.1).

* :func:`make_infrastructure_cdn` — pure infrastructure delivery (NetSession
  with peer assist switched off);
* :class:`PureP2PSwarm` — a BitTorrent-like pure peer-to-peer CDN with
  tit-for-tat incentives and no backstop.
"""

from repro.baselines.infra_cdn import (
    InfraCostReport, infrastructure_cost, make_infrastructure_cdn,
)
from repro.baselines.managed_swarm import ManagedSwarmConfig, ManagedSwarmSystem
from repro.baselines.p2p_cdn import (
    P2PConfig, P2PDownload, P2PPeer, PureP2PSwarm, Torrent,
)

__all__ = [
    "make_infrastructure_cdn", "infrastructure_cost", "InfraCostReport",
    "PureP2PSwarm", "P2PConfig", "P2PPeer", "P2PDownload", "Torrent",
    "ManagedSwarmSystem", "ManagedSwarmConfig",
]
