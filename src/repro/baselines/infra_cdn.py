"""Pure infrastructure-CDN baseline.

The paper's design space (§2.1) has the classic Akamai CDN at one end:
every byte comes from managed edge servers.  NetSession degrades to exactly
this when the control plane is unreachable or p2p is globally disabled
(§3.8), so the baseline reuses the full system with
``p2p_globally_enabled=False`` — same edge network, same clients, same
logs — making cost/QoS comparisons apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.logstore import LogStore
from repro.analysis.records import OUTCOME_COMPLETED
from repro.core.config import SystemConfig
from repro.core.system import NetSessionSystem

__all__ = ["make_infrastructure_cdn", "InfraCostReport", "infrastructure_cost"]


def make_infrastructure_cdn(
    config: SystemConfig | None = None,
    **system_kwargs,
) -> NetSessionSystem:
    """A NetSession deployment with peer assist switched off system-wide."""
    from dataclasses import replace

    cfg = config if config is not None else SystemConfig()
    cfg = replace(cfg, p2p_globally_enabled=False)
    return NetSessionSystem(cfg, **system_kwargs)


@dataclass
class InfraCostReport:
    """Infrastructure load for a trace: what the CDN operator pays for."""

    edge_bytes: int
    peer_bytes: int
    downloads: int
    completed: int

    @property
    def edge_share(self) -> float:
        """Fraction of delivered bytes that the infrastructure served."""
        total = self.edge_bytes + self.peer_bytes
        return self.edge_bytes / total if total else 0.0

    @property
    def completion_rate(self) -> float:
        """Fraction of initiated downloads that completed."""
        return self.completed / self.downloads if self.downloads else 0.0


def infrastructure_cost(logs: LogStore) -> InfraCostReport:
    """Aggregate the infrastructure-vs-peer byte split for a trace."""
    edge = 0
    peer = 0
    completed = 0
    for rec in logs.downloads:
        edge += rec.edge_bytes
        peer += rec.peer_bytes
        if rec.outcome == OUTCOME_COMPLETED:
            completed += 1
    return InfraCostReport(
        edge_bytes=edge,
        peer_bytes=peer,
        downloads=len(logs.downloads),
        completed=completed,
    )
