"""Antfarm-style managed swarms: coordinated infrastructure seeding.

Paper §7: "The Antfarm system [22], in particular, has some similarities to
NetSession.  Antfarm combines peer-to-peer swarms with a coordinator, which
carefully directs bandwidth provided by the infrastructure servers to
maximize the aggregate bandwidth of the swarms.  NetSession's control plane
plays a similar role but, unlike Antfarm's coordinator, it does not
implement an explicit incentive mechanism."

This baseline reproduces that design point on the same fluid swarm model as
the pure-P2P baseline: a fixed infrastructure seeding budget is split
across concurrent torrents.  Two allocation policies are provided:

* ``equal_split`` — the naive control: every swarm gets budget / n;
* ``managed`` — Antfarm's idea: each re-choke interval the coordinator
  measures every swarm's *self-sufficiency* (aggregate peer upload vs
  leecher demand) and water-fills the budget into the swarms where an extra
  byte of seeding buys the most aggregate download bandwidth — young and
  seeder-poor swarms first.

The benchmark compares aggregate completion times under both policies — the
gap is Antfarm's headline claim, reproduced here in miniature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.p2p_cdn import P2PConfig, P2PPeer, PureP2PSwarm, Torrent

__all__ = ["ManagedSwarmConfig", "ManagedSwarmSystem"]


@dataclass(frozen=True)
class ManagedSwarmConfig:
    """Knobs for the coordinated-seeding baseline."""

    #: Total infrastructure seeding bandwidth, bytes/second.
    seed_budget_bps: float = 10e6 / 8 * 40  # 40 Mbit/s of managed seeding
    #: Allocation policy: "managed" (Antfarm) or "equal_split" (control).
    policy: str = "managed"
    #: Re-evaluation cadence, seconds (Antfarm re-plans continuously; we
    #: re-plan at the swarm model's re-choke granularity).
    replan_interval: float = 10.0

    def __post_init__(self):
        if self.seed_budget_bps <= 0:
            raise ValueError("seed budget must be positive")
        if self.policy not in ("managed", "equal_split"):
            raise ValueError(f"unknown policy {self.policy!r}")


class ManagedSwarmSystem:
    """Multiple swarms sharing a coordinated infrastructure seeder."""

    def __init__(self, config: ManagedSwarmConfig | None = None, *, seed: int = 0):
        self.config = config if config is not None else ManagedSwarmConfig()
        self.swarm = PureP2PSwarm(
            P2PConfig(recheck_interval=self.config.replan_interval), seed=seed
        )
        #: Per-torrent infrastructure seeder peers (virtual, coordinator-fed).
        self._infra_seeders: dict[str, P2PPeer] = {}
        #: The coordinator's current per-torrent bandwidth plan.
        self.allocation: dict[str, float] = {}

    # ------------------------------------------------------------------ setup

    def add_torrent(self, name: str, size: float) -> Torrent:
        """Publish a torrent; the infrastructure is its initial seeder."""
        infra = P2PPeer(f"infra-{name}", up_bps=0.0, down_bps=1e12)
        torrent = self.swarm.add_torrent(name, size, [infra])
        self._infra_seeders[name] = infra
        return torrent

    def start_download(self, torrent: Torrent, peer: P2PPeer):
        """A leecher joins one of the managed swarms."""
        return self.swarm.start_download(torrent, peer)

    # ------------------------------------------------------------- simulation

    def run(self, duration: float) -> None:
        """Advance the system, re-planning the seed allocation each interval."""
        steps = max(1, int(duration / self.config.replan_interval))
        for _ in range(steps):
            self._replan()
            self.swarm._tick(self.config.replan_interval)

    # ------------------------------------------------------------ coordinator

    def _demand_and_supply(self, torrent: Torrent) -> tuple[float, float]:
        """(leecher demand, peer-side upload supply) for one swarm, bytes/s."""
        demand = 0.0
        supply = 0.0
        for download in torrent.downloads.values():
            if download.complete or download.failed or not download.peer.online:
                continue
            demand += download.peer.down_bps
            if not download.peer.free_rider and download.received > 0:
                supply += download.peer.up_bps
        for seeder in torrent.seeders:
            if seeder.online and seeder.name not in self._infra_seeders_names():
                supply += seeder.up_bps
        return demand, supply

    def _infra_seeders_names(self) -> set[str]:
        return {p.name for p in self._infra_seeders.values()}

    def _replan(self) -> None:
        """Divide the seeding budget across swarms per the active policy."""
        budget = self.config.seed_budget_bps
        active = {
            name: torrent for name, torrent in self.swarm.torrents.items()
            if any(not d.complete and not d.failed and d.peer.online
                   for d in torrent.downloads.values())
        }
        self.allocation = {name: 0.0 for name in self._infra_seeders}
        if not active:
            self._apply()
            return

        if self.config.policy == "equal_split":
            share = budget / len(active)
            for name in active:
                self.allocation[name] = share
            self._apply()
            return

        # Managed: water-fill into the least self-sufficient swarms first —
        # a seeded byte yields the most aggregate throughput where the
        # peers cover the smallest fraction of demand [Peterson & Sirer].
        deficits: dict[str, float] = {}
        sufficiency: dict[str, float] = {}
        for name, torrent in active.items():
            demand, supply = self._demand_and_supply(torrent)
            deficits[name] = max(0.0, demand - supply)
            sufficiency[name] = supply / demand if demand > 0 else 1.0
        total_deficit = sum(deficits.values())
        if total_deficit <= 0:
            # Every swarm is self-sufficient: trickle evenly.
            share = budget / len(active)
            for name in active:
                self.allocation[name] = share
        else:
            remaining = budget
            for name in sorted(active, key=lambda n: sufficiency[n]):
                grant = min(deficits[name], remaining)
                self.allocation[name] = grant
                remaining -= grant
                if remaining <= 0:
                    break
            if remaining > 0:
                bonus = remaining / len(active)
                for name in active:
                    self.allocation[name] += bonus
        self._apply()

    def _apply(self) -> None:
        for name, infra in self._infra_seeders.items():
            infra.up_bps = self.allocation.get(name, 0.0)

    # --------------------------------------------------------------- metrics

    def aggregate_stats(self) -> dict[str, float]:
        """Fleet-wide completion rate and mean completion time."""
        done_times: list[float] = []
        total = 0
        completed = 0
        for torrent in self.swarm.torrents.values():
            for download in torrent.downloads.values():
                total += 1
                if download.complete and download.end_time is not None:
                    completed += 1
                    done_times.append(download.end_time - download.start_time)
        return {
            "completed": completed / total if total else 0.0,
            "mean_time": sum(done_times) / len(done_times) if done_times else 0.0,
        }
