"""Pure peer-to-peer CDN baseline: a BitTorrent-like swarm.

The other end of the paper's design space (§2.1): no infrastructure beyond
a tracker and an initial seeder.  The contrast with NetSession that the
paper draws — and that the baseline benchmarks quantify — is threefold:

* **incentives**: BitTorrent needs tit-for-tat choking because peers only
  get good service if they reciprocate; NetSession deliberately has none
  (§3.4).  Free-riders here are limited to optimistic-unchoke scraps.
* **no backstop**: when seeders churn away, downloads stall or die; there
  is no edge server to "cover the difference".
* **no central QoS control**: speed depends entirely on swarm composition.

The model is a fluid BitTorrent approximation in the style of analytic BT
models: time advances in fixed re-choke intervals; each interval, every
peer allocates its upload capacity across up to four unchoked neighbours
(three reciprocation-ranked plus one optimistic), and progress advances
subject to piece availability (a leecher can only pull what the neighbour
has and it lacks).  This captures the dynamics the comparison needs without
a packet-level protocol.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["P2PConfig", "P2PPeer", "P2PDownload", "Torrent", "PureP2PSwarm"]


@dataclass(frozen=True)
class P2PConfig:
    """Knobs for the BitTorrent-like baseline."""

    recheck_interval: float = 10.0
    upload_slots: int = 4
    optimistic_slots: int = 1
    #: Neighbours a leecher knows about (from tracker announces).
    max_neighbours: int = 30
    #: A download that makes no progress for this long is declared failed.
    stall_timeout: float = 6 * 3600.0
    #: Seeders stay this long after completing (short sessions are the
    #: p2p norm the paper cites [4, 14, 27]).
    seed_linger_mean: float = 1800.0

    def __post_init__(self):
        if self.recheck_interval <= 0:
            raise ValueError("recheck_interval must be positive")
        if self.upload_slots < 1:
            raise ValueError("need at least one upload slot")


@dataclass
class P2PPeer:
    """One BitTorrent client."""

    name: str
    up_bps: float
    down_bps: float
    #: Free-riders never upload (the paper's incentive literature [23, 29]).
    free_rider: bool = False
    online: bool = True

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, P2PPeer) and other.name == self.name


@dataclass
class P2PDownload:
    """One peer's progress in one torrent."""

    peer: P2PPeer
    size: float
    received: float = 0.0
    start_time: float = 0.0
    end_time: float | None = None
    last_progress_time: float = 0.0
    failed: bool = False
    #: Reciprocation ledger: bytes received from each neighbour recently.
    credit: dict[str, float] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """All bytes received."""
        return self.received >= self.size - 0.5

    @property
    def progress(self) -> float:
        """Fraction of the object held."""
        return min(1.0, self.received / self.size)


class Torrent:
    """One object being swarmed, with its member set."""

    def __init__(self, name: str, size: float):
        if size <= 0:
            raise ValueError("torrent size must be positive")
        self.name = name
        self.size = float(size)
        self.downloads: dict[str, P2PDownload] = {}
        self.seeders: set[P2PPeer] = set()

    def members(self) -> list[P2PPeer]:
        """Everyone in the swarm (tracker view)."""
        active = [d.peer for d in self.downloads.values()
                  if not d.complete and not d.failed and d.peer.online]
        return active + [s for s in self.seeders if s.online]


class PureP2PSwarm:
    """The fluid swarm simulator: tracker + peers + tit-for-tat dynamics."""

    def __init__(self, config: P2PConfig | None = None, *, seed: int = 0):
        self.config = config if config is not None else P2PConfig()
        self.rng = random.Random(seed)
        self.torrents: dict[str, Torrent] = {}
        self.now = 0.0
        #: (departure time, torrent, peer): finished seeders that will churn.
        self._departures: list[tuple[float, "Torrent", P2PPeer]] = []

    # ------------------------------------------------------------------ setup

    def add_torrent(self, name: str, size: float, initial_seeders: list[P2PPeer]) -> Torrent:
        """Publish a torrent with its initial seeder set."""
        torrent = Torrent(name, size)
        torrent.seeders.update(initial_seeders)
        self.torrents[name] = torrent
        return torrent

    def start_download(self, torrent: Torrent, peer: P2PPeer) -> P2PDownload:
        """A leecher joins the swarm."""
        download = P2PDownload(
            peer=peer, size=torrent.size,
            start_time=self.now, last_progress_time=self.now,
        )
        torrent.downloads[peer.name] = download
        return download

    # ------------------------------------------------------------- simulation

    def run(self, duration: float) -> None:
        """Advance the swarm by ``duration`` seconds of fluid dynamics."""
        steps = max(1, int(duration / self.config.recheck_interval))
        for _ in range(steps):
            self._tick(self.config.recheck_interval)

    def _tick(self, dt: float) -> None:
        self.now += dt
        if self._departures:
            staying = []
            for when, torrent, peer in self._departures:
                if when <= self.now:
                    torrent.seeders.discard(peer)
                else:
                    staying.append((when, torrent, peer))
            self._departures = staying
        for torrent in self.torrents.values():
            self._tick_torrent(torrent, dt)

    def _tick_torrent(self, torrent: Torrent, dt: float) -> None:
        cfg = self.config
        leechers = [
            d for d in torrent.downloads.values()
            if not d.complete and not d.failed and d.peer.online
        ]
        if not leechers:
            return
        uploaders: list[tuple[P2PPeer, P2PDownload | None]] = [
            (s, None) for s in torrent.seeders if s.online
        ]
        uploaders += [
            (d.peer, d) for d in torrent.downloads.values()
            if d.peer.online and not d.failed and not d.peer.free_rider
            and d.received > 0 and not d.complete
        ]

        # Each uploader picks who to unchoke this interval.
        rate_in: dict[str, float] = {d.peer.name: 0.0 for d in leechers}
        gave: dict[tuple[str, str], float] = {}
        for uploader, up_state in uploaders:
            if uploader.free_rider:
                continue
            candidates = [
                d for d in leechers
                if d.peer is not uploader and self._has_useful(up_state, d)
            ]
            if not candidates:
                continue
            # Tit-for-tat: rank by what they gave *us* recently.  Free
            # riders earn no credit, so they only ever win the optimistic
            # slot.  Seeders rotate among requesters (shuffle; stable-sort
            # ties keep the rotation fair rather than positional).
            self.rng.shuffle(candidates)
            if up_state is not None:
                candidates.sort(
                    key=lambda d: (up_state.credit.get(d.peer.name, 0.0),
                                   not d.peer.free_rider),
                    reverse=True,
                )
            regular = candidates[: cfg.upload_slots - cfg.optimistic_slots]
            rest = [d for d in candidates if d not in regular]
            optimistic = self.rng.sample(rest, min(cfg.optimistic_slots, len(rest)))
            unchoked = regular + optimistic
            if not unchoked:
                continue
            share = uploader.up_bps / len(unchoked)
            for d in unchoked:
                rate_in[d.peer.name] += share
                gave[(uploader.name, d.peer.name)] = share

        # Advance progress, bounded by each leecher's downlink and by
        # availability (cannot hold more than the best uploader's progress
        # grants; seeders grant everything).
        for d in leechers:
            rate = min(rate_in.get(d.peer.name, 0.0), d.peer.down_bps)
            if rate > 0:
                d.received = min(d.size, d.received + rate * dt)
                d.last_progress_time = self.now
                for (up_name, down_name), r in gave.items():
                    if down_name == d.peer.name:
                        d.credit[up_name] = d.credit.get(up_name, 0.0) * 0.5 + r * dt
            if d.complete and d.end_time is None:
                d.end_time = self.now
                self._on_complete(torrent, d)
            elif self.now - d.last_progress_time > cfg.stall_timeout:
                d.failed = True

    def _has_useful(self, up_state: P2PDownload | None, down: P2PDownload) -> bool:
        """Can this uploader offer pieces the downloader lacks?

        Seeders always can.  Between leechers we use the standard fluid-BT
        assumption [Qiu & Srikant]: random piece selection keeps holdings
        mostly disjoint, so any leecher with a non-trivial share is useful
        to any other that is not nearly done.
        """
        if up_state is None:
            return True
        return up_state.progress > 0.02 and down.progress < 0.98

    def _on_complete(self, torrent: Torrent, download: P2PDownload) -> None:
        """A finished leecher seeds briefly, then churns away."""
        torrent.seeders.add(download.peer)
        linger = self.rng.expovariate(1.0 / self.config.seed_linger_mean)
        departure = self.now + linger
        self._departures.append((departure, torrent, download.peer))

    # --------------------------------------------------------------- metrics

    def completion_stats(self, torrent: Torrent) -> dict[str, float]:
        """Completion rate, failure rate, and mean time for one torrent."""
        downloads = list(torrent.downloads.values())
        if not downloads:
            return {"completed": 0.0, "failed": 0.0, "mean_time": 0.0}
        done = [d for d in downloads if d.complete]
        failed = [d for d in downloads if d.failed]
        times = [d.end_time - d.start_time for d in done if d.end_time is not None]
        return {
            "completed": len(done) / len(downloads),
            "failed": len(failed) / len(downloads),
            "mean_time": sum(times) / len(times) if times else 0.0,
        }
