"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available experiments (one per paper table/figure).
``run <experiment ...>``
    Run one or more experiments and print their paper-style tables.
``study``
    Run the whole measurement study (all experiments).
``trace``
    Generate a synthetic trace and export it, anonymized, as JSON lines —
    the shape of the data set the paper's authors worked from.

Examples
--------
::

    python -m repro list
    python -m repro run exp_offload exp_fig6 --scale small
    python -m repro study --scale standard
    python -m repro trace --out ./trace --scale small
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

from repro.experiments import ALL_EXPERIMENTS

#: Experiments that default to the mobility-focused trace.
MOBILITY_EXPERIMENTS = {"exp_mobility", "exp_fig12"}


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="small",
                        choices=("small", "standard", "mobility"),
                        help="scenario scale (default: small)")
    parser.add_argument("--seed", type=int, default=42)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NetSession reproduction (IMC 2013) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run selected experiments")
    run.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    _add_scale(run)

    study = sub.add_parser("study", help="run the full measurement study")
    _add_scale(study)

    trace = sub.add_parser("trace", help="generate and export a synthetic trace")
    trace.add_argument("--out", required=True, help="output directory")
    trace.add_argument("--salt", default="netsession-release",
                       help="anonymization salt")
    _add_scale(trace)

    return parser


def _run_experiments(names: list[str], scale: str, seed: int) -> int:
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        effective = "mobility" if name in MOBILITY_EXPERIMENTS else scale
        started = time.time()
        output = module.run(effective, seed)
        print(f"\n# {name}  (scale={effective}, {time.time() - started:.1f}s)")
        print(output.text)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for name in ALL_EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            doc = (module.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{name:24s} {summary}")
        return 0

    if args.command == "run":
        return _run_experiments(args.experiments, args.scale, args.seed)

    if args.command == "study":
        return _run_experiments(list(ALL_EXPERIMENTS), args.scale, args.seed)

    if args.command == "trace":
        from repro.analysis.export import export_trace
        from repro.experiments.common import standard_config
        from repro.workload import run_scenario

        result = run_scenario(standard_config(args.scale, args.seed))
        counts = export_trace(result.logstore, result.geodb, args.out,
                              salt=args.salt)
        for name, count in sorted(counts.items()):
            print(f"{name}: {count} records")
        print(f"exported to {args.out}")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
