"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available experiments (one per paper table/figure).
``run <experiment ...>``
    Run one or more experiments and print their paper-style tables.
    ``--jobs N`` fans the scenario runs out across a process pool (the
    tables render serially afterwards, so output is byte-identical for
    every job count); ``--cache-dir``/``--no-cache`` control the on-disk
    result cache.
``study``
    Run the whole measurement study (all experiments).  Takes the same
    ``--jobs``/``--cache-dir``/``--no-cache`` flags as ``run``.
``trace``
    Generate a synthetic trace and export it, anonymized, as JSON lines —
    the shape of the data set the paper's authors worked from.
``faults``
    Run one fault-injection drill from the scenario library and print its
    report; with ``--list``, show the available scenarios; with ``--all``,
    run the whole library (``--jobs N`` runs drills scenario-parallel,
    reports print in library order regardless).  The report is fully
    deterministic: the same ``--scenario``/``--seed`` pair prints
    byte-identical output on every run — and the same bytes again from a
    pool worker.
``vod``
    Run the VoD serving-policy sweep (``exp_vod_policies``): the catch-up-TV
    streaming workload under every serving policy plus the infra-only
    baseline.  Takes the same ``--jobs``/``--cache-dir``/``--no-cache``
    flags as ``run`` (scenarios fan out across the pool, the table renders
    serially, so stdout is byte-identical for every job count);
    ``--json`` emits the metrics as JSON for CI artifacts.
``devices``
    Run the device-tier sweep (``exp_device_tiers``): the heterogeneous
    smartrouter/mobile/settop population vs the homogeneous baseline, with
    class-aware ranking, reputation tie-breaks, and operator placement on
    the router fleet.  Same runner flags and JSON mode as ``vod``.
``perf``
    Run the standard scenario once and print the simulator/allocation
    counters (:class:`~repro.core.system.SystemStats`); with ``--profile``,
    wrap the run in :mod:`cProfile` and print the hottest functions.
    ``run``/``study`` accept ``--perf`` to append the same counter table
    after the normal experiment output.
``audit``
    Run the standard scenario (or, with ``--scenario``, a fault drill)
    with the invariant sanitizer on and print the audit report — every
    recorded :class:`~repro.invariants.InvariantViolation`, deduplicated.
    Observe mode by default; ``--strict`` raises on the first error and
    exits non-zero, which is what CI wants.
``scale``
    Measure the peers-vs-wall scaling curve: lean scenarios at increasing
    population sizes under the columnar store, ``active_peer_cap`` session
    scheduling, and region-sharded execution.  Merges the measurements
    into ``BENCH_scale.json`` (same trajectory shape as
    ``BENCH_simcore.json``; gate with ``benchmarks/gate.py``).
``cache <ls|clear|verify>``
    Inspect the on-disk result cache: list entries with their scenario
    labels and staleness, clear everything, or verify payload digests
    (``verify`` exits 1 when corruption is found).

Examples
--------
::

    python -m repro list
    python -m repro run exp_offload exp_fig6 --scale small
    python -m repro run exp_table1 --perf
    python -m repro study --scale standard --jobs 4
    python -m repro trace --out ./trace --scale small
    python -m repro faults --scenario control_plane_blackout --seed 42
    python -m repro faults --all --jobs 4
    python -m repro vod --scale small --jobs 2 --json
    python -m repro perf --scale small --profile
    python -m repro audit --scale small
    python -m repro audit --scenario rolling_upgrade --strict
    python -m repro scale --peers 100000 --shards 2 --strict
    python -m repro cache ls
    python -m repro cache verify
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
import time

from repro.experiments import ALL_EXPERIMENTS

#: Experiments that default to the mobility-focused trace.
MOBILITY_EXPERIMENTS = {"exp_mobility", "exp_fig12"}


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="small",
                        choices=("small", "standard", "mobility"),
                        help="scenario scale (default: small)")
    parser.add_argument("--seed", type=int, default=42)


def _add_runner_opts(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="process-pool width for scenario runs "
                             "(default: all cores); output is byte-identical "
                             "for every value")
    _add_cache_dir(parser)
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk result cache entirely")


def _add_cache_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk result cache location (default: "
                             "$REPRO_CACHE_DIR or .repro-cache)")


def _cache_root(args) -> str:
    from repro.runner import DEFAULT_CACHE_DIR

    return (args.cache_dir
            or os.environ.get("REPRO_CACHE_DIR")
            or DEFAULT_CACHE_DIR)


def _resolve_cache(args):
    """The ResultCache a run/study should use, or None with ``--no-cache``."""
    if getattr(args, "no_cache", False):
        return None
    from repro.runner import ResultCache

    return ResultCache(_cache_root(args))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NetSession reproduction (IMC 2013) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run selected experiments")
    run.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    _add_scale(run)
    _add_runner_opts(run)
    run.add_argument("--perf", action="store_true",
                     help="print perf counters for each scenario after the tables")

    study = sub.add_parser("study", help="run the full measurement study")
    _add_scale(study)
    _add_runner_opts(study)
    study.add_argument("--perf", action="store_true",
                       help="print perf counters for each scenario after the tables")

    trace = sub.add_parser("trace", help="generate and export a synthetic trace")
    trace.add_argument("--out", required=True, help="output directory")
    trace.add_argument("--salt", default="netsession-release",
                       help="anonymization salt")
    _add_scale(trace)

    faults = sub.add_parser("faults", help="run a fault-injection drill")
    faults.add_argument("--scenario", default="control_plane_blackout",
                        help="scenario name (default: control_plane_blackout)")
    faults.add_argument("--seed", type=int, default=42)
    faults.add_argument("--at", type=float, default=600.0,
                        help="fault start, seconds into the run (default: 600)")
    faults.add_argument("--duration", type=float, default=3600.0,
                        help="fault hold period, seconds (default: 3600)")
    faults.add_argument("--list", action="store_true", dest="list_scenarios",
                        help="list available scenarios and exit")
    faults.add_argument("--all", action="store_true", dest="all_scenarios",
                        help="drill every scenario in the library")
    faults.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="with --all: run drills scenario-parallel "
                             "(default: all cores); reports still print in "
                             "library order")
    faults.add_argument("--json", action="store_true", dest="json_report",
                        help="emit the drill report as JSON (for CI artifacts)")

    vod = sub.add_parser(
        "vod", help="run the VoD serving-policy sweep (QoE vs ISP transit)"
    )
    _add_scale(vod)
    _add_runner_opts(vod)
    vod.add_argument("--json", action="store_true", dest="json_report",
                     help="emit the policy metrics as JSON (for CI artifacts)")

    devices = sub.add_parser(
        "devices",
        help="run the device-tier sweep (smartrouter capture, ranking shift)",
    )
    _add_scale(devices)
    _add_runner_opts(devices)
    devices.add_argument("--json", action="store_true", dest="json_report",
                         help="emit the tier metrics as JSON (for CI artifacts)")

    perf = sub.add_parser(
        "perf", help="run the standard scenario and print perf counters"
    )
    _add_scale(perf)
    perf.add_argument("--profile", action="store_true",
                      help="run under cProfile and print the hottest functions")
    perf.add_argument("--profile-limit", type=int, default=20, metavar="N",
                      help="functions to show with --profile (default: 20)")
    perf.add_argument("--kernel", choices=("auto", "numpy", "python"),
                      default=None,
                      help="water-filling kernel override (default: the "
                           "config's, normally auto -> numpy when available)")
    perf.add_argument("--json", action="store_true", dest="json_report",
                      help="emit the counters as JSON (for scripts/CI)")

    audit = sub.add_parser(
        "audit", help="run with the invariant sanitizer on and print the report"
    )
    _add_scale(audit)
    audit.add_argument("--scenario", default=None, metavar="FAULT",
                       help="audit a fault drill instead of the standard "
                            "scenario (any name from 'repro faults --list')")
    audit.add_argument("--at", type=float, default=600.0,
                       help="with --scenario: fault start, seconds (default: 600)")
    audit.add_argument("--duration", type=float, default=3600.0,
                       help="with --scenario: fault hold, seconds (default: 3600)")
    audit.add_argument("--strict", action="store_true",
                       help="raise on the first error-severity violation "
                            "(exit code 1) instead of recording it")
    audit.add_argument("--every", type=int, default=None, metavar="N",
                       help="sampled-audit cadence in simulator events "
                            "(default: InvariantConfig.every_events)")
    audit.add_argument("--json", action="store_true", dest="json_report",
                       help="emit the audit summary as JSON")

    scale_cmd = sub.add_parser(
        "scale",
        help="measure the peers-vs-wall scaling curve (columnar + shards)",
    )
    scale_cmd.add_argument("--peers", type=int, nargs="+", metavar="N",
                           default=[10_000, 100_000],
                           help="population sizes to measure "
                                "(default: 10000 100000)")
    scale_cmd.add_argument("--days", type=float, default=3.0,
                           help="trace length in days (default: 3.0)")
    scale_cmd.add_argument("--seed", type=int, default=42)
    scale_cmd.add_argument("--shards", default="auto", metavar="N",
                           help="region-shard pool width: an integer, "
                                "'auto' (REPRO_SHARDS or 2), or 'off' for "
                                "the classic unsharded trace "
                                "(default: auto)")
    scale_cmd.add_argument("--strict", action="store_true",
                           help="run every shard with the invariant "
                                "sanitizer in strict mode")
    scale_cmd.add_argument("--out", default="BENCH_scale.json", metavar="PATH",
                           help="trajectory file to merge results into "
                                "(default: BENCH_scale.json); 'none' skips "
                                "recording")

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk result cache"
    )
    cache.add_argument("action", choices=("ls", "clear", "verify"),
                       help="ls: list entries; clear: delete everything; "
                            "verify: check payload digests (exit 1 on "
                            "corruption)")
    _add_cache_dir(cache)

    return parser


def _run_experiments(names: list[str], scale: str, seed: int, *,
                     perf: bool = False, jobs: int | None = None,
                     cache=None) -> int:
    from repro.experiments import planned_configs
    from repro.experiments.common import configure_runner, prefetch
    from repro.runner import default_jobs

    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2

    configure_runner(jobs=jobs if jobs is not None else default_jobs(),
                     cache=cache)
    # Fan the whole batch's scenario plan out across the pool up front; the
    # experiments below then render from cache hits, serially and in order,
    # so stdout is byte-identical for every --jobs value.
    plan = []
    for name in names:
        effective = "mobility" if name in MOBILITY_EXPERIMENTS else scale
        plan.extend(planned_configs(name, effective, seed))
    prefetch(plan)

    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        effective = "mobility" if name in MOBILITY_EXPERIMENTS else scale
        started = time.time()
        output = module.run(effective, seed)
        print(f"\n# {name}  (scale={effective})")
        print(output.text)
        # Wall-clock goes to stderr: timing must never perturb the
        # byte-parity of the rendered study.
        print(f"# {name}: {time.time() - started:.1f}s", file=sys.stderr)
    if perf:
        _print_cached_perf()
    return 0


def _print_cached_perf() -> None:
    """Append perf-counter tables for every scenario the batch ran.

    Printed strictly after the experiment tables so the paper-style output
    (and its golden files) is unchanged by ``--perf``.  Artifacts are
    ordered by their human-readable labels (which embed the fingerprint),
    so the listing is deterministic however the pool scheduled the runs.
    """
    from repro.analysis.report import render_perf
    from repro.experiments.common import cached_results

    artifacts = sorted(cached_results().values(), key=lambda a: a.label())
    for artifact in artifacts:
        print()
        print(render_perf(
            f"perf counters  ({artifact.label()})",
            artifact.stats.as_dict(),
        ))


def _run_perf(scale: str, seed: int, *, profile: bool, profile_limit: int,
              kernel: str | None = None, json_report: bool = False) -> int:
    from dataclasses import replace

    from repro.analysis.report import render_perf
    from repro.experiments.common import standard_config
    from repro.workload import run_scenario

    config = standard_config(scale, seed)
    if kernel is not None:
        config = replace(config, system=replace(config.system, kernel=kernel))
    resolved = config.system.resolve_kernel()
    started = time.perf_counter()
    if profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        result = run_scenario(config)
        profiler.disable()
    else:
        profiler = None
        result = run_scenario(config)
    elapsed = time.perf_counter() - started

    stats = result.system.stats()
    counters: dict[str, object] = {"wall_seconds": round(elapsed, 2)}
    counters.update(stats.as_dict())
    if json_report:
        payload = {"scale": scale, "seed": seed, "kernel": resolved,
                   **counters}
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_perf(
            f"perf counters  (scale={scale}, seed={seed}, kernel={resolved})",
            counters,
        ))
    if profiler is not None:
        print()
        pstats.Stats(profiler).strip_dirs().sort_stats("cumulative").print_stats(
            profile_limit
        )
    return 0


def _run_audit(args) -> int:
    from dataclasses import replace

    from repro.analysis.report import render_audit
    from repro.core.config import InvariantConfig
    from repro.invariants import InvariantViolationError

    overrides: dict[str, object] = {
        "mode": "strict" if args.strict else "observe",
    }
    if args.every is not None:
        overrides["every_events"] = args.every
    invariants = InvariantConfig(**overrides)

    try:
        if args.scenario is not None:
            from repro.faults import SCENARIOS, run_drill, scenario_names

            if args.scenario not in SCENARIOS:
                print(f"unknown scenario: {args.scenario}", file=sys.stderr)
                print(f"available: {', '.join(scenario_names())}", file=sys.stderr)
                return 2
            report = run_drill(args.scenario, args.seed,
                               fault_at=args.at, fault_duration=args.duration,
                               invariants=invariants)
            audit = report.invariants
            title = (f"invariant audit  (scenario={args.scenario}, "
                     f"seed={args.seed})")
        else:
            from repro.experiments.common import standard_config
            from repro.workload import run_scenario

            config = standard_config(args.scale, args.seed)
            config = replace(config,
                             system=config.system.with_invariants(**overrides))
            result = run_scenario(config)
            auditor = result.system.auditor
            audit = {
                **auditor.stats().as_dict(),
                "violations": [v.as_dict() for v in auditor.report()],
            }
            title = (f"invariant audit  (scale={args.scale}, "
                     f"seed={args.seed})")
    except InvariantViolationError as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        return 1

    if args.json_report:
        print(json.dumps(audit, indent=2, sort_keys=True))
    else:
        print(render_audit(title, audit))
    return 0


def _run_faults(args) -> int:
    from repro.faults import (
        SCENARIOS, DrillRequest, run_drill, run_drill_portable, scenario_names,
    )

    if args.list_scenarios:
        for name, factory in SCENARIOS.items():
            doc = (factory.__doc__ or "").strip().splitlines()
            print(f"{name:24s} {doc[0] if doc else ''}")
        return 0

    if args.all_scenarios:
        from repro.runner import default_jobs, parallel_map

        jobs = args.jobs if args.jobs is not None else default_jobs()
        requests = [
            DrillRequest(scenario=name, seed=args.seed,
                         fault_at=args.at, fault_duration=args.duration)
            for name in scenario_names()  # library order, always
        ]
        try:
            reports = parallel_map(run_drill_portable, requests, jobs=jobs)
        except ValueError as exc:  # bad --at/--duration (spec validation)
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json_report:
            print(json.dumps([r.data for r in reports],
                             indent=2, sort_keys=True))
        else:
            print("\n\n".join(r.text for r in reports))
        return 0

    if args.scenario not in SCENARIOS:
        print(f"unknown scenario: {args.scenario}", file=sys.stderr)
        print(f"available: {', '.join(scenario_names())}", file=sys.stderr)
        return 2
    try:
        report = run_drill(args.scenario, args.seed,
                           fault_at=args.at, fault_duration=args.duration)
    except ValueError as exc:  # bad --at/--duration (spec validation)
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json_report:
        print(json.dumps(report.as_json(), indent=2, sort_keys=True))
    else:
        print(report.text)
    return 0


def _run_vod(args) -> int:
    from repro.experiments import planned_configs
    from repro.experiments.common import configure_runner, prefetch
    from repro.experiments.exp_vod_policies import run
    from repro.runner import default_jobs

    configure_runner(
        jobs=args.jobs if args.jobs is not None else default_jobs(),
        cache=_resolve_cache(args),
    )
    # Same discipline as ``run``: fan the per-policy scenarios out across
    # the pool, then render serially — stdout is byte-identical for every
    # --jobs value, and timing goes to stderr.
    started = time.time()
    prefetch(planned_configs("exp_vod_policies", args.scale, args.seed))
    output = run(args.scale, args.seed)
    if args.json_report:
        print(json.dumps(
            {"name": output.name, "scale": args.scale, "seed": args.seed,
             "metrics": output.metrics},
            indent=2, sort_keys=True,
        ))
    else:
        print(output.text)
    print(f"# vod: {time.time() - started:.1f}s", file=sys.stderr)
    return 0


def _run_devices(args) -> int:
    from repro.experiments import planned_configs
    from repro.experiments.common import configure_runner, prefetch
    from repro.experiments.exp_device_tiers import run
    from repro.runner import default_jobs

    configure_runner(
        jobs=args.jobs if args.jobs is not None else default_jobs(),
        cache=_resolve_cache(args),
    )
    # Same discipline as ``vod``: per-cell scenarios fan out across the
    # pool, the table renders serially — byte-identical at any --jobs.
    started = time.time()
    prefetch(planned_configs("exp_device_tiers", args.scale, args.seed))
    output = run(args.scale, args.seed)
    if args.json_report:
        print(json.dumps(
            {"name": output.name, "scale": args.scale, "seed": args.seed,
             "metrics": output.metrics},
            indent=2, sort_keys=True,
        ))
    else:
        print(output.text)
    print(f"# devices: {time.time() - started:.1f}s", file=sys.stderr)
    return 0


def _run_scale(args) -> int:
    from pathlib import Path

    from repro.experiments.exp_scale import record_curve, run_curve

    if args.shards == "off":
        shards: int | str | None = None
    elif args.shards == "auto":
        shards = "auto"
    else:
        try:
            shards = int(args.shards)
        except ValueError:
            print(f"--shards must be an integer, 'auto', or 'off'; "
                  f"got {args.shards!r}", file=sys.stderr)
            return 2
    output, results = run_curve(args.peers, seed=args.seed, days=args.days,
                                shards=shards, strict=args.strict)
    print(output.text)
    if args.out != "none":
        path = Path(args.out)
        record_curve(results, path)
        print(f"\nwrote {path}", file=sys.stderr)
    return 0


def _run_cache(args) -> int:
    from repro.runner import ResultCache

    cache = ResultCache(_cache_root(args))

    if args.action == "ls":
        entries = cache.entries(all_namespaces=True)
        if not entries:
            print(f"cache empty ({cache.root})")
            return 0
        print(f"cache at {cache.root}  (active namespace: {cache.namespace})")
        for entry in entries:
            flag = "stale " if entry.stale else "      "
            print(f"{flag}{entry.fingerprint[:16]}  "
                  f"{entry.size / 1e6:8.1f} MB  {entry.label}")
        total = sum(e.size for e in entries)
        print(f"{len(entries)} entries, {total / 1e6:.1f} MB")
        return 0

    if args.action == "clear":
        removed = cache.clear(all_namespaces=True)
        print(f"removed {removed} entries from {cache.root}")
        return 0

    if args.action == "verify":
        problems = cache.verify(all_namespaces=True)
        checked = len(cache.entries(all_namespaces=True))
        for fingerprint, problem in problems:
            print(f"CORRUPT {fingerprint[:16]}: {problem}", file=sys.stderr)
        if problems:
            print(f"{len(problems)} of {checked} entries corrupt")
            return 1
        print(f"ok: {checked} entries verified")
        return 0

    raise AssertionError(f"unhandled cache action {args.action!r}")  # pragma: no cover


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for name in ALL_EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            doc = (module.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{name:24s} {summary}")
        return 0

    if args.command == "run":
        return _run_experiments(args.experiments, args.scale, args.seed,
                                perf=args.perf, jobs=args.jobs,
                                cache=_resolve_cache(args))

    if args.command == "study":
        return _run_experiments(list(ALL_EXPERIMENTS), args.scale, args.seed,
                                perf=args.perf, jobs=args.jobs,
                                cache=_resolve_cache(args))

    if args.command == "vod":
        return _run_vod(args)

    if args.command == "devices":
        return _run_devices(args)

    if args.command == "perf":
        return _run_perf(args.scale, args.seed,
                         profile=args.profile, profile_limit=args.profile_limit,
                         kernel=args.kernel, json_report=args.json_report)

    if args.command == "audit":
        return _run_audit(args)

    if args.command == "scale":
        return _run_scale(args)

    if args.command == "cache":
        return _run_cache(args)

    if args.command == "trace":
        from repro.analysis.export import export_trace
        from repro.experiments.common import standard_config
        from repro.workload import run_scenario

        result = run_scenario(standard_config(args.scale, args.seed))
        counts = export_trace(result.logstore, result.geodb, args.out,
                              salt=args.salt)
        for name, count in sorted(counts.items()):
            print(f"{name}: {count} records")
        print(f"exported to {args.out}")
        return 0

    if args.command == "faults":
        return _run_faults(args)

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
