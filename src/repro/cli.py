"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available experiments (one per paper table/figure).
``run <experiment ...>``
    Run one or more experiments and print their paper-style tables.
``study``
    Run the whole measurement study (all experiments).
``trace``
    Generate a synthetic trace and export it, anonymized, as JSON lines —
    the shape of the data set the paper's authors worked from.
``faults``
    Run one fault-injection drill from the scenario library and print its
    report; with ``--list``, show the available scenarios.  The report is
    fully deterministic: the same ``--scenario``/``--seed`` pair prints
    byte-identical output on every run.
``perf``
    Run the standard scenario once and print the simulator/allocation
    counters (:class:`~repro.core.system.SystemStats`); with ``--profile``,
    wrap the run in :mod:`cProfile` and print the hottest functions.
    ``run``/``study`` accept ``--perf`` to append the same counter table
    after the normal experiment output.
``audit``
    Run the standard scenario (or, with ``--scenario``, a fault drill)
    with the invariant sanitizer on and print the audit report — every
    recorded :class:`~repro.invariants.InvariantViolation`, deduplicated.
    Observe mode by default; ``--strict`` raises on the first error and
    exits non-zero, which is what CI wants.

Examples
--------
::

    python -m repro list
    python -m repro run exp_offload exp_fig6 --scale small
    python -m repro run exp_table1 --perf
    python -m repro study --scale standard
    python -m repro trace --out ./trace --scale small
    python -m repro faults --scenario control_plane_blackout --seed 42
    python -m repro faults --scenario region_cn_outage --json
    python -m repro perf --scale small --profile
    python -m repro audit --scale small
    python -m repro audit --scenario rolling_upgrade --strict
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
import time

from repro.experiments import ALL_EXPERIMENTS

#: Experiments that default to the mobility-focused trace.
MOBILITY_EXPERIMENTS = {"exp_mobility", "exp_fig12"}


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="small",
                        choices=("small", "standard", "mobility"),
                        help="scenario scale (default: small)")
    parser.add_argument("--seed", type=int, default=42)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NetSession reproduction (IMC 2013) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run selected experiments")
    run.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    _add_scale(run)
    run.add_argument("--perf", action="store_true",
                     help="print perf counters for each scenario after the tables")

    study = sub.add_parser("study", help="run the full measurement study")
    _add_scale(study)
    study.add_argument("--perf", action="store_true",
                       help="print perf counters for each scenario after the tables")

    trace = sub.add_parser("trace", help="generate and export a synthetic trace")
    trace.add_argument("--out", required=True, help="output directory")
    trace.add_argument("--salt", default="netsession-release",
                       help="anonymization salt")
    _add_scale(trace)

    faults = sub.add_parser("faults", help="run a fault-injection drill")
    faults.add_argument("--scenario", default="control_plane_blackout",
                        help="scenario name (default: control_plane_blackout)")
    faults.add_argument("--seed", type=int, default=42)
    faults.add_argument("--at", type=float, default=600.0,
                        help="fault start, seconds into the run (default: 600)")
    faults.add_argument("--duration", type=float, default=3600.0,
                        help="fault hold period, seconds (default: 3600)")
    faults.add_argument("--list", action="store_true", dest="list_scenarios",
                        help="list available scenarios and exit")
    faults.add_argument("--json", action="store_true", dest="json_report",
                        help="emit the drill report as JSON (for CI artifacts)")

    perf = sub.add_parser(
        "perf", help="run the standard scenario and print perf counters"
    )
    _add_scale(perf)
    perf.add_argument("--profile", action="store_true",
                      help="run under cProfile and print the hottest functions")
    perf.add_argument("--profile-limit", type=int, default=20, metavar="N",
                      help="functions to show with --profile (default: 20)")

    audit = sub.add_parser(
        "audit", help="run with the invariant sanitizer on and print the report"
    )
    _add_scale(audit)
    audit.add_argument("--scenario", default=None, metavar="FAULT",
                       help="audit a fault drill instead of the standard "
                            "scenario (any name from 'repro faults --list')")
    audit.add_argument("--at", type=float, default=600.0,
                       help="with --scenario: fault start, seconds (default: 600)")
    audit.add_argument("--duration", type=float, default=3600.0,
                       help="with --scenario: fault hold, seconds (default: 3600)")
    audit.add_argument("--strict", action="store_true",
                       help="raise on the first error-severity violation "
                            "(exit code 1) instead of recording it")
    audit.add_argument("--every", type=int, default=None, metavar="N",
                       help="sampled-audit cadence in simulator events "
                            "(default: InvariantConfig.every_events)")
    audit.add_argument("--json", action="store_true", dest="json_report",
                       help="emit the audit summary as JSON")

    return parser


def _run_experiments(names: list[str], scale: str, seed: int,
                     *, perf: bool = False) -> int:
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        effective = "mobility" if name in MOBILITY_EXPERIMENTS else scale
        started = time.time()
        output = module.run(effective, seed)
        print(f"\n# {name}  (scale={effective}, {time.time() - started:.1f}s)")
        print(output.text)
    if perf:
        _print_cached_perf()
    return 0


def _print_cached_perf() -> None:
    """Append perf-counter tables for every scenario the batch ran.

    Printed strictly after the experiment tables so the paper-style output
    (and its golden files) is unchanged by ``--perf``.
    """
    from repro.analysis.report import render_perf
    from repro.experiments.common import cached_results

    for (scale, seed), result in sorted(cached_results().items()):
        stats = result.system.stats()
        print()
        print(render_perf(
            f"perf counters  (scale={scale}, seed={seed})", stats.as_dict()
        ))


def _run_perf(scale: str, seed: int, *, profile: bool, profile_limit: int) -> int:
    from repro.analysis.report import render_perf
    from repro.experiments.common import standard_config
    from repro.workload import run_scenario

    config = standard_config(scale, seed)
    started = time.perf_counter()
    if profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        result = run_scenario(config)
        profiler.disable()
    else:
        profiler = None
        result = run_scenario(config)
    elapsed = time.perf_counter() - started

    stats = result.system.stats()
    counters: dict[str, object] = {"wall_seconds": round(elapsed, 2)}
    counters.update(stats.as_dict())
    print(render_perf(f"perf counters  (scale={scale}, seed={seed})", counters))
    if profiler is not None:
        print()
        pstats.Stats(profiler).strip_dirs().sort_stats("cumulative").print_stats(
            profile_limit
        )
    return 0


def _run_audit(args) -> int:
    from dataclasses import replace

    from repro.analysis.report import render_audit
    from repro.core.config import InvariantConfig
    from repro.invariants import InvariantViolationError

    overrides: dict[str, object] = {
        "mode": "strict" if args.strict else "observe",
    }
    if args.every is not None:
        overrides["every_events"] = args.every
    invariants = InvariantConfig(**overrides)

    try:
        if args.scenario is not None:
            from repro.faults import SCENARIOS, run_drill, scenario_names

            if args.scenario not in SCENARIOS:
                print(f"unknown scenario: {args.scenario}", file=sys.stderr)
                print(f"available: {', '.join(scenario_names())}", file=sys.stderr)
                return 2
            report = run_drill(args.scenario, args.seed,
                               fault_at=args.at, fault_duration=args.duration,
                               invariants=invariants)
            audit = report.invariants
            title = (f"invariant audit  (scenario={args.scenario}, "
                     f"seed={args.seed})")
        else:
            from repro.experiments.common import standard_config
            from repro.workload import run_scenario

            config = standard_config(args.scale, args.seed)
            config = replace(config,
                             system=config.system.with_invariants(**overrides))
            result = run_scenario(config)
            auditor = result.system.auditor
            audit = {
                **auditor.stats().as_dict(),
                "violations": [v.as_dict() for v in auditor.report()],
            }
            title = (f"invariant audit  (scale={args.scale}, "
                     f"seed={args.seed})")
    except InvariantViolationError as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        return 1

    if args.json_report:
        print(json.dumps(audit, indent=2, sort_keys=True))
    else:
        print(render_audit(title, audit))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for name in ALL_EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            doc = (module.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{name:24s} {summary}")
        return 0

    if args.command == "run":
        return _run_experiments(args.experiments, args.scale, args.seed,
                                perf=args.perf)

    if args.command == "study":
        return _run_experiments(list(ALL_EXPERIMENTS), args.scale, args.seed,
                                perf=args.perf)

    if args.command == "perf":
        return _run_perf(args.scale, args.seed,
                         profile=args.profile, profile_limit=args.profile_limit)

    if args.command == "audit":
        return _run_audit(args)

    if args.command == "trace":
        from repro.analysis.export import export_trace
        from repro.experiments.common import standard_config
        from repro.workload import run_scenario

        result = run_scenario(standard_config(args.scale, args.seed))
        counts = export_trace(result.logstore, result.geodb, args.out,
                              salt=args.salt)
        for name, count in sorted(counts.items()):
            print(f"{name}: {count} records")
        print(f"exported to {args.out}")
        return 0

    if args.command == "faults":
        from repro.faults import SCENARIOS, run_drill, scenario_names

        if args.list_scenarios:
            for name, factory in SCENARIOS.items():
                doc = (factory.__doc__ or "").strip().splitlines()
                print(f"{name:24s} {doc[0] if doc else ''}")
            return 0
        if args.scenario not in SCENARIOS:
            print(f"unknown scenario: {args.scenario}", file=sys.stderr)
            print(f"available: {', '.join(scenario_names())}", file=sys.stderr)
            return 2
        try:
            report = run_drill(args.scenario, args.seed,
                               fault_at=args.at, fault_duration=args.duration)
        except ValueError as exc:  # bad --at/--duration (spec validation)
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json_report:
            print(json.dumps(report.as_json(), indent=2, sort_keys=True))
        else:
            print(report.text)
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
