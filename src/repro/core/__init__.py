"""The paper's system: a full NetSession implementation (paper §3).

Public API:

* :class:`NetSessionSystem` — a runnable deployment (start here);
* :class:`ContentProvider` / :class:`ContentObject` — the content model;
* :class:`PeerNode` — the NetSession Interface client;
* :class:`DownloadSession` — one Download-Manager download;
* :class:`SystemConfig` / :class:`ClientConfig` / :class:`ControlPlaneConfig`
  — all the knobs, with paper-faithful defaults.
"""

from repro.core.accounting import AccountingService, BillingSummary
from repro.core.config import ClientConfig, ControlPlaneConfig, SystemConfig
from repro.core.content import PIECE_SIZE, ContentObject, ContentProvider
from repro.core.edge import AuthorizationError, AuthToken, EdgeNetwork, EdgeServer
from repro.core.peer import CacheEntry, IdentitySnapshot, PeerNode
from repro.core.placement import PlacementConfig, PredictivePlacer
from repro.core.selection import QueryContext, select_peers
from repro.core.streaming import StreamingSession, start_streaming
from repro.core.swarm import Chunk, DownloadSession, EdgeConnection, PeerConnection
from repro.core.system import NetSessionSystem, SystemStats

__all__ = [
    "NetSessionSystem", "SystemStats",
    "ContentProvider", "ContentObject", "PIECE_SIZE",
    "PeerNode", "CacheEntry", "IdentitySnapshot",
    "DownloadSession", "PeerConnection", "EdgeConnection", "Chunk",
    "StreamingSession", "start_streaming",
    "PredictivePlacer", "PlacementConfig",
    "SystemConfig", "ClientConfig", "ControlPlaneConfig",
    "EdgeNetwork", "EdgeServer", "AuthToken", "AuthorizationError",
    "AccountingService", "BillingSummary",
    "QueryContext", "select_peers",
]
