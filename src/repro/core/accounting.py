"""Reliable accounting: billing records and accounting-attack filtering.

Goal 3 of NetSession's design (paper §3.1) is reliable accounting for
services provided — content providers pay per byte and expect trustworthy
reports.  But peers are untrusted machines: a compromised client can
misreport its downloads to distort a provider's bill (the *accounting
attacks* of [Aditya et al., NSDI 2012], cited in §3.5 and §6.2).

NetSession's defence is that the infrastructure has its own trusted view:
edge servers log the bytes they actually served.  This service cross-checks
each peer-submitted usage report against the edge logs and rejects reports
whose claimed infrastructure bytes disagree beyond a tolerance.  Peer-to-peer
bytes are additionally sanity-checked against the object size.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.edge import EdgeNetwork
from repro.core.messages import UsageReport

__all__ = ["AccountingService", "BillingSummary"]


@dataclass
class BillingSummary:
    """Aggregated, validated usage for one content provider (CP code)."""

    cp_code: int
    completed_downloads: int = 0
    failed_downloads: int = 0
    aborted_downloads: int = 0
    edge_bytes: int = 0
    peer_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """All validated useful bytes billed to this provider."""
        return self.edge_bytes + self.peer_bytes

    @property
    def offload_fraction(self) -> float:
        """Fraction of this provider's bytes the peers delivered."""
        if self.total_bytes == 0:
            return 0.0
        return self.peer_bytes / self.total_bytes


class AccountingService:
    """Validates usage reports against trusted edge-server state."""

    #: Relative tolerance when comparing claimed vs trusted edge bytes.
    #: Real systems tolerate small skews from in-flight data at report time.
    EDGE_TOLERANCE = 0.02

    def __init__(self, edge: EdgeNetwork):
        self.edge = edge
        self.accepted: list[UsageReport] = []
        self.rejected: list[tuple[UsageReport, str]] = []
        self.billing: dict[int, BillingSummary] = {}
        #: Validated upload credit per uploader GUID (bytes served to others).
        self.upload_credit: dict[str, int] = defaultdict(int)

    def ingest(self, report: UsageReport) -> bool:
        """Validate and (if clean) bill one usage report.

        Returns True when accepted.  Rejection reasons:

        * ``edge-mismatch`` — claimed infrastructure bytes disagree with the
          trusted edge logs (the canonical accounting attack);
        * ``oversized`` — claimed totals exceed the object size (plus
          retransmission slack), impossible for an honest client;
        * ``negative`` — nonsensical byte counts.
        """
        reason = self._validate(report)
        if reason is not None:
            self.rejected.append((report, reason))
            return False
        self.accepted.append(report)

        summary = self.billing.get(report.cp_code)
        if summary is None:
            summary = BillingSummary(cp_code=report.cp_code)
            self.billing[report.cp_code] = summary
        if report.outcome == "completed":
            summary.completed_downloads += 1
        elif report.outcome == "failed":
            summary.failed_downloads += 1
        else:
            summary.aborted_downloads += 1
        summary.edge_bytes += report.claimed_edge_bytes
        summary.peer_bytes += report.claimed_peer_bytes
        for uploader, nbytes in report.per_uploader_bytes.items():
            self.upload_credit[uploader] += nbytes
        return True

    def _validate(self, report: UsageReport) -> str | None:
        if report.claimed_edge_bytes < 0 or report.claimed_peer_bytes < 0:
            return "negative"
        if any(b < 0 for b in report.per_uploader_bytes.values()):
            return "negative"
        per_uploader_total = sum(report.per_uploader_bytes.values())
        if per_uploader_total > report.claimed_peer_bytes * (1 + self.EDGE_TOLERANCE) + 1:
            return "oversized"

        trusted = self.edge.trusted_bytes_served(report.guid, report.cid)
        claimed = report.claimed_edge_bytes
        slack = max(self.EDGE_TOLERANCE * max(trusted, claimed), 1024.0)
        if abs(trusted - claimed) > slack:
            return "edge-mismatch"

        try:
            obj = self.edge.lookup(report.cid)
        except KeyError:
            return "unknown-object"
        # Useful bytes can't exceed the object size; allow retransmission
        # slack on top for corrupted-and-refetched pieces.
        useful = report.claimed_edge_bytes + report.claimed_peer_bytes
        if useful > obj.size * 1.10 + 1024:
            return "oversized"
        return None

    # ------------------------------------------------------------- reporting

    def provider_report(self, cp_code: int) -> BillingSummary:
        """The billing summary for one provider (empty if no traffic)."""
        return self.billing.get(cp_code, BillingSummary(cp_code=cp_code))

    def rejection_rate(self) -> float:
        """Fraction of all ingested reports that failed validation."""
        total = len(self.accepted) + len(self.rejected)
        if total == 0:
            return 0.0
        return len(self.rejected) / total

    def ledger_drift(self) -> list[str]:
        """Internal-consistency check: billing must equal the accepted log.

        Re-aggregates the accepted reports from scratch and compares the
        result with the incrementally maintained :attr:`billing` summaries
        and :attr:`upload_credit` ledger.  Any discrepancy means the
        incremental bookkeeping diverged from the source of truth — a bug,
        never legitimate drift.  Returns human-readable descriptions (empty
        when consistent); the invariant auditor runs this at end-of-run.
        """
        drift: list[str] = []
        edge_by_cp: dict[int, int] = defaultdict(int)
        peer_by_cp: dict[int, int] = defaultdict(int)
        outcomes_by_cp: dict[int, int] = defaultdict(int)
        credit: dict[str, int] = defaultdict(int)
        for report in self.accepted:
            edge_by_cp[report.cp_code] += report.claimed_edge_bytes
            peer_by_cp[report.cp_code] += report.claimed_peer_bytes
            outcomes_by_cp[report.cp_code] += 1
            for uploader, nbytes in report.per_uploader_bytes.items():
                credit[uploader] += nbytes

        for cp_code, summary in sorted(self.billing.items()):
            n_outcomes = (summary.completed_downloads + summary.failed_downloads
                          + summary.aborted_downloads)
            if summary.edge_bytes != edge_by_cp.get(cp_code, 0):
                drift.append(
                    f"cp {cp_code}: billed edge_bytes {summary.edge_bytes} != "
                    f"accepted-report sum {edge_by_cp.get(cp_code, 0)}"
                )
            if summary.peer_bytes != peer_by_cp.get(cp_code, 0):
                drift.append(
                    f"cp {cp_code}: billed peer_bytes {summary.peer_bytes} != "
                    f"accepted-report sum {peer_by_cp.get(cp_code, 0)}"
                )
            if n_outcomes != outcomes_by_cp.get(cp_code, 0):
                drift.append(
                    f"cp {cp_code}: billed outcome count {n_outcomes} != "
                    f"accepted-report count {outcomes_by_cp.get(cp_code, 0)}"
                )
        for cp_code in edge_by_cp:
            if cp_code not in self.billing:
                drift.append(f"cp {cp_code}: accepted reports but no billing summary")
        for uploader in set(credit) | set(self.upload_credit):
            if self.upload_credit.get(uploader, 0) != credit.get(uploader, 0):
                drift.append(
                    f"uploader {uploader}: credit {self.upload_credit.get(uploader, 0)}"
                    f" != accepted-report sum {credit.get(uploader, 0)}"
                )
        return drift
