"""System and client configuration: the knobs the paper describes.

Configuration flows from the content provider and the CDN operator to the
peers through the trusted edge-server connections (paper §3.5: "These
policies and options are securely communicated to the peers through the
trusted edge-server infrastructure").  The values here encode the specific
behaviours the paper calls out:

* up to 40 peers returned per control-plane query (§3.7);
* a globally configurable cap on upload connections, *not* tit-for-tat (§3.4);
* per-object upload-count limits and rate limiting (§3.9);
* upload back-off when the user's connection is busy (§3.9);
* cache retention for completed downloads (§5.2: "keeps it in a local cache
  for a certain amount of time").
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

__all__ = [
    "ClientConfig", "ControlChannelConfig", "ControlPlaneConfig",
    "DefenseConfig", "InvariantConfig", "SystemConfig",
]


@dataclass(frozen=True)
class ClientConfig:
    """Per-peer configuration, centrally distributed (paper §3.5, §3.9)."""

    #: Maximum simultaneous upload connections a peer serves (global limit;
    #: NetSession has no per-peer reciprocity).
    max_upload_connections: int = 6
    #: Maximum simultaneous peer download connections per transfer.
    max_peer_connections: int = 30
    #: Cap on upload rate as a fraction of the peer's uplink capacity —
    #: uploads are "intentionally limited using custom protocols".
    upload_rate_fraction: float = 0.8
    #: A peer uploads each object at most this many times (§3.9, §6.1: this
    #: is one of the mechanisms keeping AS traffic balanced).
    max_uploads_per_object: int = 20
    #: Seconds a completed object stays in the local cache / registered
    #: with the control plane.  Default one week.
    cache_retention: float = 7 * 24 * 3600.0
    #: When the user's own traffic occupies the link, uploads throttle to
    #: this fraction of the normal cap (back-off best practice, §3.9).
    backoff_rate_fraction: float = 0.1
    #: Probability per hour that a peer's link is busy with other traffic.
    #: Drives the back-off machinery.
    link_busy_prob_per_hour: float = 0.05
    #: Report usage statistics to the CN every this many seconds.
    stats_report_interval: float = 300.0

    # --- download engine ---------------------------------------------------
    #: Work-unit sizing: a connection pulls roughly this many seconds of
    #: transfer (at its estimated rate) per request batch.  Pieces (and
    #: their hashes) stay at PIECE_SIZE; batching only amortises request
    #: overhead — small batches keep work flowing to fast connections and
    #: keep the endgame short.
    chunk_target_seconds: float = 90.0
    #: Ceiling on pieces per batch (bounds memory and endgame stalls).
    chunk_max_pieces: int = 32
    #: Pieces in a connection's first batch, before its rate is known.
    chunk_initial_pieces: int = 2
    #: Probability that a NAT-compatible connection attempt still succeeds
    #: (transient network failures eat the rest).
    connect_success_prob: float = 0.92
    #: Handshake delay range in seconds for a peer connection attempt.
    handshake_delay: tuple[float, float] = (0.2, 2.0)
    #: Control-plane query round-trip range in seconds.
    query_latency: tuple[float, float] = (0.05, 0.3)
    #: Additional queries issued when too few peer connections succeed
    #: (§3.7: "additional queries are issued until a sufficient number of
    #: peer connections succeed").
    max_extra_queries: int = 3

    # --- edge backstop policy ----------------------------------------------
    #: Keep at least one infrastructure connection and size it so that total
    #: throughput reaches this fraction of the client's downlink; when the
    #: peers alone exceed it, the edge connection idles at a trickle.  The
    #: paper's Figure 4 shows peer-assisted downloads running somewhat below
    #: edge-only line rate, i.e. production tolerates a QoS target below
    #: 1.0 in exchange for offload.
    edge_target_fraction: float = 0.6
    #: Trickle rate (fraction of downlink) for the always-on edge connection.
    edge_trickle_fraction: float = 0.02
    #: How often the backstop policy re-evaluates the edge cap, seconds.
    backstop_interval: float = 15.0
    #: Re-apply the edge cap only when it moves by more than this relative
    #: amount (hysteresis; avoids needless rate reallocation).
    backstop_hysteresis: float = 0.15
    #: Disable to let the edge connection run at full fair share even in
    #: peer-assisted downloads (ablation: no offload incentive).
    edge_backstop_enabled: bool = True

    # --- integrity ----------------------------------------------------------
    #: Per-piece probability that a piece received from an (honest) peer
    #: fails hash verification (link corruption, disk errors).
    piece_corruption_prob: float = 1e-4
    #: Download fails with a system cause after this many corrupted pieces
    #: ("too many corrupted content blocks", §5.2).
    max_corrupted_pieces: int = 30
    #: Drop a peer connection after this many corrupted pieces from it.
    conn_corruption_ban: int = 2

    def __post_init__(self):
        if self.max_upload_connections < 0:
            raise ValueError("max_upload_connections must be >= 0")
        if not 0 < self.upload_rate_fraction <= 1.0:
            raise ValueError("upload_rate_fraction must be in (0, 1]")
        if self.max_uploads_per_object <= 0:
            raise ValueError("max_uploads_per_object must be positive")
        if self.cache_retention <= 0:
            raise ValueError("cache_retention must be positive")


@dataclass(frozen=True)
class ControlPlaneConfig:
    """Control-plane behaviour (paper §3.6–3.8)."""

    #: Peers returned per query ("By default, up to 40 peers are returned").
    peers_per_query: int = 40
    #: Minimum successful peer connections before the client stops issuing
    #: additional queries.
    target_peer_connections: int = 25
    #: Probability of occasionally selecting from a less-specific locality
    #: set, "proportional to the specificity of the set" (§3.7).
    diversity_probability: float = 0.10
    #: Reconnection rate limit (reconnects/second accepted per CN) used
    #: during large-scale failures (§3.8).
    reconnect_rate_limit: float = 500.0
    #: How long a DN keeps a peer's registration without a refresh before
    #: expiring it (soft state).
    registration_ttl: float = 6 * 3600.0
    #: The CN/DN system is interconnected across regions and can "in
    #: principle search for peers from any region" (§3.7).  When the local
    #: DNs return fewer candidates than this, the CN widens the search to
    #: remote regions; 0 disables remote search entirely.
    remote_search_threshold: int = 5

    def __post_init__(self):
        if self.peers_per_query <= 0:
            raise ValueError("peers_per_query must be positive")
        if not 0.0 <= self.diversity_probability <= 1.0:
            raise ValueError("diversity_probability must be in [0, 1]")


@dataclass(frozen=True)
class ControlChannelConfig:
    """Peer↔CN control-channel behaviour (the §3.8 reliability layer).

    Every control RPC (login, query, register/refresh, usage report, RE-ADD
    reply) flows through a per-peer :class:`~repro.core.control.channel.ControlChannel`
    governed by these knobs.  The defaults describe an *ideal* channel —
    zero latency, zero loss — under which every RPC is delivered
    synchronously, exactly as a direct Python call: the fixed-seed golden
    experiments depend on that equivalence.  Fault scenarios raise latency
    and loss per peer (see :class:`~repro.faults.spec.ControlMessageLoss`).
    """

    #: One-way message latency, seconds.  0 = synchronous delivery.
    latency: float = 0.0
    #: Per-direction message loss probability.  0 = lossless.
    loss_prob: float = 0.0
    #: Seconds a request waits for its response before retrying.
    request_timeout: float = 15.0
    #: Retries per request after the first attempt; past this the request
    #: gives up (the caller's ``on_giveup`` fires).
    max_retries: int = 4
    #: First retry backoff, seconds; doubles per retry up to the cap.
    backoff_base: float = 2.0
    #: Ceiling on the exponential backoff, seconds.
    backoff_cap: float = 120.0
    #: Jitter fraction applied to each backoff delay, drawn from the
    #: channel's own string-seeded RNG (deterministic per peer).
    backoff_jitter: float = 0.25
    #: Consecutive failed attempts (across requests) that trip the circuit
    #: breaker into the ``degraded`` edge-only state.
    breaker_threshold: int = 5
    #: Seconds between recovery probes while degraded.  On probe success the
    #: peer re-logs-in, re-registers, and promotes edge-only sessions.
    probe_interval: float = 60.0

    def __post_init__(self):
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError("loss_prob must be in [0, 1)")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 0 < backoff_base <= backoff_cap")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")
        if self.breaker_threshold <= 0:
            raise ValueError("breaker_threshold must be positive")
        if self.probe_interval <= 0:
            raise ValueError("probe_interval must be positive")


@dataclass(frozen=True)
class InvariantConfig:
    """Runtime invariant-audit behaviour (the sanitizer layer).

    The system registers an :class:`~repro.invariants.auditor.InvariantAuditor`
    with the simulator, which runs the cheap checkers every ``every_events``
    processed events and the full set (including final-only reconciliation
    checkers) at end-of-run.  Like a sanitizer, the layer has three modes:

    * ``off``     — never check (the auditor is not even installed);
    * ``observe`` — check, record structured violations, never raise;
    * ``strict``  — raise :class:`~repro.invariants.violation.InvariantViolationError`
      on the first *error*-severity violation (warnings are still only
      recorded — they describe legitimate soft-state drift windows).

    The default mode ``auto`` resolves through the ``REPRO_INVARIANTS``
    environment variable (``off``/``observe``/``strict``) and falls back to
    ``observe`` — the layer is cheap enough to leave on.
    """

    #: ``auto`` (env-resolved), ``off``, ``observe``, or ``strict``.
    mode: str = "auto"
    #: Run the sampled checkers every this many simulator events (the
    #: end-of-run audit always runs).  Must be positive.
    every_events: int = 20_000
    #: Cap on *distinct* recorded violations (deduplicated by invariant,
    #: severity, and subject); further distinct ones are dropped and counted.
    max_violations: int = 200
    #: Restrict the audit to these checker names; empty = all registered.
    checkers: tuple[str, ...] = ()

    _MODES = ("auto", "off", "observe", "strict")

    def __post_init__(self):
        if self.mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {self.mode!r}")
        if self.every_events <= 0:
            raise ValueError("every_events must be positive")
        if self.max_violations <= 0:
            raise ValueError("max_violations must be positive")

    def resolve_mode(self) -> str:
        """The effective mode: ``auto`` resolved via ``REPRO_INVARIANTS``."""
        if self.mode != "auto":
            return self.mode
        env = os.environ.get("REPRO_INVARIANTS", "").strip().lower()
        if env in ("off", "observe", "strict"):
            return env
        return "observe"


@dataclass(frozen=True)
class DefenseConfig:
    """Reputation/quarantine defense against persistently adversarial peers.

    Sessions record per-uploader observations (verified bytes delivered,
    corrupted pieces, refused/empty connections, trickling serves) and ship
    them CN-side inside the existing :class:`~repro.core.messages.UsageReport`
    RPC.  When enabled, the CN aggregates them into a per-peer reputation
    score that ranks query candidates, quarantines peers whose score falls
    below ``quarantine_threshold`` (with registration eviction), and
    re-admits them on probation after ``probation_interval``.

    **Disabled by default**: with ``enabled=False`` no reputation engine is
    constructed, no score is updated, selection consumes the exact same RNG
    stream, and every golden experiment stays byte-identical.  The session-
    side observation bookkeeping always runs — it is pure counting with no
    RNG draws and also feeds the drill/`SystemStats` corruption counters.
    """

    #: Master switch.  False = no engine, no ranking, no quarantine.
    enabled: bool = False
    #: Score credit per verified megabyte delivered by an uploader.
    contribution_weight: float = 1.0
    #: Score penalty per corrupted piece attributed to an uploader.
    corruption_penalty: float = 8.0
    #: Score penalty per refused/empty connection (free-riders and
    #: stale advertisers; honest-but-busy peers eat this too, which is why
    #: it is small — contribution credit dominates for real contributors).
    refusal_penalty: float = 1.0
    #: Score penalty per trickling serve (average rate below
    #: ``slow_rate_floor`` when a connection ends).
    slow_penalty: float = 4.0
    #: Serve rate (bytes/s) below which a closing connection counts as a
    #: slow-loris observation.  Well below honest back-off rates.
    slow_rate_floor: float = 4096.0
    #: Exponential half-life of the score, seconds (time decay: old sins
    #: and old virtues both fade).
    decay_half_life: float = 6 * 3600.0
    #: Hard clamp on the score in both directions.
    score_min: float = -100.0
    score_max: float = 100.0
    #: Quarantine a peer when its score falls to or below this value.
    quarantine_threshold: float = -10.0
    #: Seconds a quarantined peer sits out before probation re-admission.
    probation_interval: float = 1800.0
    #: Score a re-admitted peer restarts probation with (half-way back to
    #: the threshold: one fresh offense re-quarantines immediately).
    probation_score: float = -5.0

    def __post_init__(self):
        if self.decay_half_life <= 0:
            raise ValueError("decay_half_life must be positive")
        if self.score_min >= self.score_max:
            raise ValueError("need score_min < score_max")
        if not self.score_min <= self.quarantine_threshold < self.score_max:
            raise ValueError("quarantine_threshold must lie within the score bounds")
        if self.probation_interval <= 0:
            raise ValueError("probation_interval must be positive")
        if not self.quarantine_threshold <= self.probation_score <= self.score_max:
            raise ValueError("probation_score must be in [quarantine_threshold, score_max]")
        for name in ("contribution_weight", "corruption_penalty",
                     "refusal_penalty", "slow_penalty", "slow_rate_floor"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass(frozen=True)
class SystemConfig:
    """Top-level assembly of all configuration."""

    client: ClientConfig = field(default_factory=ClientConfig)
    control_plane: ControlPlaneConfig = field(default_factory=ControlPlaneConfig)
    channel: ControlChannelConfig = field(default_factory=ControlChannelConfig)
    invariants: InvariantConfig = field(default_factory=InvariantConfig)
    defense: DefenseConfig = field(default_factory=DefenseConfig)
    #: Control-plane and edge deployment density, per network region.  The
    #: real deployment ran 197 control-plane servers over <20 network
    #: regions; one CN/DN pair per region is the scale-appropriate default.
    cns_per_region: int = 1
    dns_per_region: int = 1
    edge_servers_per_region: int = 2
    #: Edge egress per server in Mbit/s; None = overprovisioned (never the
    #: bottleneck), matching the paper's production observations.
    edge_egress_mbps: float | None = None
    #: If False, peers never query the control plane — the system degrades
    #: to a pure infrastructure CDN (used for the edge-only baseline and the
    #: total-control-plane-failure scenario of §3.8).
    p2p_globally_enabled: bool = True
    #: Rate-allocation settlement policy.  True (default) coalesces
    #: same-timestamp mutation bursts into one water-filling pass per
    #: simulator event; False restores the per-mutation reference engine
    #: (kept for the equivalence tests and perf benchmarks — the two
    #: policies produce identical rate trajectories).
    flow_batching: bool = True
    #: Water-filling kernel: ``numpy`` settles large components on the
    #: vectorized array backend, ``python`` always uses the dict-based
    #: reference implementation.  The two are bit-identical — the knob
    #: only moves wall time.  The default ``auto`` resolves through the
    #: ``REPRO_KERNEL`` environment variable and falls back to ``numpy``
    #: (or ``python`` when numpy is not importable).
    kernel: str = "auto"

    _KERNELS = ("auto", "numpy", "python")

    def __post_init__(self):
        if self.kernel not in self._KERNELS:
            raise ValueError(
                f"kernel must be one of {self._KERNELS}, got {self.kernel!r}"
            )

    def resolve_kernel(self) -> str:
        """The effective kernel: ``auto`` resolved via ``REPRO_KERNEL``."""
        if self.kernel != "auto":
            return self.kernel
        env = os.environ.get("REPRO_KERNEL", "").strip().lower()
        if env in ("numpy", "python"):
            return env
        try:
            import numpy  # noqa: F401 — availability probe only
        except ImportError:  # pragma: no cover - numpy is a hard dep here
            return "python"
        return "numpy"

    def with_client(self, **changes) -> "SystemConfig":
        """Return a copy with client-config fields replaced."""
        return replace(self, client=replace(self.client, **changes))

    def with_control_plane(self, **changes) -> "SystemConfig":
        """Return a copy with control-plane fields replaced."""
        return replace(self, control_plane=replace(self.control_plane, **changes))

    def with_channel(self, **changes) -> "SystemConfig":
        """Return a copy with control-channel fields replaced."""
        return replace(self, channel=replace(self.channel, **changes))

    def with_invariants(self, **changes) -> "SystemConfig":
        """Return a copy with invariant-audit fields replaced."""
        return replace(self, invariants=replace(self.invariants, **changes))

    def with_defense(self, **changes) -> "SystemConfig":
        """Return a copy with reputation-defense fields replaced."""
        return replace(self, defense=replace(self.defense, **changes))
