"""Content model: providers, objects, versions, and pieces.

Every file NetSession distributes belongs to a *content provider* (the
paper's Customers A–J) identified by a CP code, and is broken by the edge
servers into fixed-size pieces with individually verifiable hashes
(paper §3.4–3.5).  Content providers decide per file whether peer-to-peer
delivery is enabled; in the paper's trace only 1.7% of files had it enabled,
but those accounted for 57.4% of all bytes (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ids import content_id, piece_hash

__all__ = ["ContentProvider", "ContentObject", "PIECE_SIZE"]

#: Piece size in bytes.  BitTorrent-era systems used 256 KiB–4 MiB; NetSession
#: distributes multi-GB installers, so we use 4 MiB.
PIECE_SIZE = 4 * 1024 * 1024


@dataclass(frozen=True)
class ContentProvider:
    """A customer account distributing content through the CDN.

    ``cp_code`` is the accounting identifier the paper's download records
    carry.  ``upload_default_rate`` is the probability that a binary bundled
    by this provider has peer uploads initially enabled — the paper's
    Table 4 shows it varies from <1% to 94% across customers (providers ship
    different bundles over time, and some use NetSession purely as a
    download manager).
    """

    cp_code: int
    name: str
    upload_default_rate: float = 1.0
    #: Regional popularity mix: region name -> probability a download of this
    #: provider's content originates there (Table 2 rows).
    region_mix: dict[str, float] = field(default_factory=dict, hash=False, compare=False)

    def __post_init__(self):
        if self.cp_code <= 0:
            raise ValueError(f"cp_code must be positive, got {self.cp_code}")
        if not 0.0 <= self.upload_default_rate <= 1.0:
            raise ValueError(
                f"upload_default_rate must be in [0, 1], got {self.upload_default_rate}"
            )


class ContentObject:
    """One downloadable object (a file at a specific version).

    The object knows its own piece layout and hashes, which the edge servers
    hand to peers so they can verify pieces regardless of where the bytes
    came from.
    """

    __slots__ = ("url", "version", "cid", "size", "provider", "p2p_enabled",
                 "num_pieces", "last_piece_size")

    def __init__(
        self,
        url: str,
        size: int,
        provider: ContentProvider,
        *,
        p2p_enabled: bool = False,
        version: int = 1,
    ):
        if size <= 0:
            raise ValueError(f"object size must be positive, got {size}")
        if version <= 0:
            raise ValueError(f"version must be positive, got {version}")
        self.url = url
        self.version = version
        self.cid = content_id(url, version)
        self.size = int(size)
        self.provider = provider
        self.p2p_enabled = p2p_enabled
        full, rem = divmod(self.size, PIECE_SIZE)
        self.num_pieces = full + (1 if rem else 0)
        self.last_piece_size = rem if rem else PIECE_SIZE

    def piece_size(self, index: int) -> int:
        """Size in bytes of piece ``index``."""
        if not 0 <= index < self.num_pieces:
            raise IndexError(f"piece {index} out of range for {self.num_pieces} pieces")
        if index == self.num_pieces - 1:
            return self.last_piece_size
        return PIECE_SIZE

    def expected_hash(self, index: int) -> str:
        """The trusted hash of piece ``index`` (as published by edge servers)."""
        if not 0 <= index < self.num_pieces:
            raise IndexError(f"piece {index} out of range for {self.num_pieces} pieces")
        return piece_hash(self.cid, index)

    def new_version(self) -> "ContentObject":
        """Publish an updated version of this object (new cid, new hashes)."""
        return ContentObject(
            self.url, self.size, self.provider,
            p2p_enabled=self.p2p_enabled, version=self.version + 1,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = "p2p" if self.p2p_enabled else "infra"
        return f"<ContentObject {self.url} v{self.version} {self.size}B {flag}>"

    def __hash__(self) -> int:
        return hash(self.cid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ContentObject) and other.cid == self.cid
