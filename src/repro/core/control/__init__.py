"""NetSession control plane: connection nodes, database nodes, STUN, monitoring."""

from repro.core.control.connection_node import ConnectionNode
from repro.core.control.database_node import DatabaseNode, PeerRegistration
from repro.core.control.monitoring import MonitoringService
from repro.core.control.plane import ControlPlane
from repro.core.control.stun import StunService

__all__ = [
    "ConnectionNode", "DatabaseNode", "PeerRegistration",
    "MonitoringService", "ControlPlane", "StunService",
]
