"""NetSession control plane: connection nodes, database nodes, STUN, monitoring,
and the per-peer control-channel reliability layer."""

from repro.core.control.channel import ControlChannel, ControlChannelStats
from repro.core.control.connection_node import ConnectionNode
from repro.core.control.database_node import DatabaseNode, PeerRegistration
from repro.core.control.monitoring import MonitoringService
from repro.core.control.plane import ControlPlane
from repro.core.control.stun import StunService

__all__ = [
    "ConnectionNode", "ControlChannel", "ControlChannelStats",
    "DatabaseNode", "PeerRegistration",
    "MonitoringService", "ControlPlane", "StunService",
]
