"""The control-channel reliability layer: lossy RPC between peer and CN.

Every peer↔CN interaction — login, peer query, register/refresh,
unregister, usage report, RE-ADD reply — flows through a per-peer
:class:`ControlChannel`.  The channel models the persistent control
connection of §3.4 as an unreliable transport and implements the §3.8
client-side robustness story on top of it:

* **lossy, latent RPC** — each message direction has a configurable
  one-way latency and loss probability; a request whose message (or
  response) is lost is detected by a per-request timeout;
* **retries with capped exponential backoff** — failed attempts retry at
  ``backoff_base * 2^attempt`` seconds (capped), with deterministic jitter
  drawn from the channel's own string-seeded RNG;
* **CN failover** — when the peer's CN has died, the next request fails
  over through :meth:`ControlPlane.cn_for` and re-opens the control
  connection on the replacement, instead of waiting for an external
  ``reconnect()``;
* **circuit breaker and recoverable degradation** — after
  ``breaker_threshold`` consecutive failed attempts the channel trips into
  an explicit ``degraded`` state: the peer runs edge-only (the §3.8
  fallback) while periodic recovery probes test the control plane.  On
  probe success the peer re-logs-in, re-registers its cache, and every
  in-flight edge-only download is promoted back to hybrid mid-transfer.

State machine: ``healthy`` → ``retrying`` (request in backoff) →
``degraded`` (breaker tripped, edge-only) → ``probing`` (recovery probe in
flight) → recovered (back to ``healthy``).  See DESIGN.md's
"Control-channel reliability" section.

**Determinism and the ideal channel.**  With the default configuration
(zero latency, zero loss) every request takes a synchronous fast path that
is byte-for-byte equivalent to the direct method calls the pre-channel
code made: no simulator events are scheduled, no RNG is consumed.  The
channel's own RNG is string-seeded from the peer GUID, so even the lossy
paths never perturb any other random stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.control.connection_node import ConnectionNode
    from repro.core.messages import UsageReport
    from repro.core.peer import PeerNode

__all__ = ["ControlChannel", "ControlChannelStats",
           "HEALTHY", "RETRYING", "DEGRADED", "PROBING", "ALL_STATES"]

#: Channel states (the §3.8 client-side state machine).
HEALTHY = "healthy"
RETRYING = "retrying"
DEGRADED = "degraded"
PROBING = "probing"

#: Every legal state.  PROBING is transient *within* a probe callback and is
#: never observable at event boundaries; the invariant auditor checks that.
ALL_STATES = frozenset((HEALTHY, RETRYING, DEGRADED, PROBING))


@dataclass
class ControlChannelStats:
    """Fleet-wide robustness counters, aggregated across all channels.

    Mirrors :class:`~repro.net.flows.FlowNetworkStats`: cumulative since
    system creation, O(1) to read, snapshot/as_dict for reports and JSON.
    One instance lives on the system; every peer's channel increments it.
    """

    #: RPCs issued (all operations, before any retries).
    requests: int = 0
    #: Individual send attempts (first tries plus retries).
    attempts: int = 0
    #: Messages lost in flight (either direction).
    lost_messages: int = 0
    #: Attempts that expired waiting for a response.
    timeouts: int = 0
    #: Backoff retries scheduled.
    retries: int = 0
    #: Requests that exhausted their retries (caller's on_giveup fired).
    giveups: int = 0
    #: Requests dropped immediately because the channel was degraded.
    dropped_degraded: int = 0
    #: Requests re-homed to a replacement CN after their CN died.
    failovers: int = 0
    #: Circuit-breaker trips into the degraded (edge-only) state.
    breaker_trips: int = 0
    #: Recovery probes sent while degraded, and how many failed.
    probes: int = 0
    probe_failures: int = 0
    #: Successful recoveries (probe success or externally-driven reconnect
    #: of a degraded channel).
    recoveries: int = 0
    #: Total seconds spent degraded (closed periods only: recovery or the
    #: peer going offline ends a period).
    degraded_seconds: float = 0.0
    #: Edge-only downloads promoted back to hybrid after recovery.
    sessions_promoted: int = 0

    @property
    def mean_time_to_recover(self) -> float:
        """Mean seconds from breaker trip to recovery (0.0 if none)."""
        if self.recoveries == 0:
            return 0.0
        return self.degraded_seconds / self.recoveries

    def snapshot(self) -> "ControlChannelStats":
        """An independent copy of the current counters."""
        return replace(self)

    def as_dict(self) -> dict[str, float]:
        """Counters plus derived statistics, for reports and JSON."""
        return {
            "requests": self.requests,
            "attempts": self.attempts,
            "lost_messages": self.lost_messages,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "giveups": self.giveups,
            "dropped_degraded": self.dropped_degraded,
            "failovers": self.failovers,
            "breaker_trips": self.breaker_trips,
            "probes": self.probes,
            "probe_failures": self.probe_failures,
            "recoveries": self.recoveries,
            "degraded_seconds": round(self.degraded_seconds, 1),
            "mean_time_to_recover": round(self.mean_time_to_recover, 1),
            "sessions_promoted": self.sessions_promoted,
        }


class _Request:
    """One in-flight RPC: its closure, callbacks, and retry state."""

    __slots__ = ("op", "execute", "on_result", "on_giveup", "attempt",
                 "fresh_login", "done", "timed_out", "timeout_event",
                 "retry_event")

    def __init__(self, op, execute, on_result, on_giveup, *, fresh_login):
        self.op = op
        self.execute = execute
        self.on_result = on_result
        self.on_giveup = on_giveup
        self.attempt = 0
        #: Login requests resolve a fresh CN mapping instead of failing
        #: over (there is no connection to fail over *from* yet).
        self.fresh_login = fresh_login
        self.done = False
        self.timed_out = False
        self.timeout_event = None
        self.retry_event = None


class ControlChannel:
    """One peer's control connection, as an unreliable RPC transport."""

    def __init__(self, peer: "PeerNode"):
        self.peer = peer
        self.system = peer.system
        cfg = peer.system.config.channel
        self.cfg = cfg
        #: Live link parameters; fault specs override these per peer.
        self.latency = cfg.latency
        self.loss_prob = cfg.loss_prob
        #: False while a partition separates this peer from every CN
        #: (:class:`~repro.faults.spec.RegionPartition`).
        self.reachable = True
        # String seeding keeps the stream stable across processes and, more
        # importantly, consumes nothing from any existing RNG — creating a
        # channel cannot perturb the fixed-seed experiment pipeline.
        self.rng = random.Random(f"ctrl-channel:{peer.guid}")
        self.stats = peer.system.channel_stats
        self.state = HEALTHY
        self.consecutive_failures = 0
        #: When the current degraded period began (None while not degraded).
        self.degraded_since: Optional[float] = None
        #: Times this channel's breaker has tripped.
        self.times_degraded = 0
        #: When the last recovery completed, and how long the outage was.
        self.last_recovered_at: Optional[float] = None
        self.last_downtime: Optional[float] = None
        self._probe_event = None
        self._pending: set[_Request] = set()
        self._connecting = False

    # ------------------------------------------------------------ public RPCs

    def connect(self) -> None:
        """Open the control connection (login).  Sets ``peer.cn`` on success.

        With the ideal channel this is synchronous: ``peer.cn`` is assigned
        before the call returns, exactly as the direct
        ``ControlPlane.login`` call used to behave.  On failure the normal
        retry → breaker → degraded machinery applies, so a peer that comes
        up during a total control-plane outage ends degraded with recovery
        probes running (§3.8 edge-only fallback, now recoverable).
        """
        peer = self.peer
        self._connecting = True

        def execute(cn: "ConnectionNode"):
            cn.login(peer, self.system.sim.now)
            return cn

        def on_result(cn: "ConnectionNode") -> None:
            self._connecting = False
            peer.cn = cn

        def on_giveup() -> None:
            self._connecting = False

        self.request("login", execute, on_result=on_result,
                     on_giveup=on_giveup, fresh_login=True)

    def ensure_connected(self) -> None:
        """Re-establish the control connection if it is gone.

        Used by download sessions that start while the CN is unreachable:
        if the channel is healthy but the connection is dead, a login
        request (with failover) is issued; if the channel is already
        retrying or degraded, the existing machinery is left to finish —
        recovery will promote the session either way.
        """
        peer = self.peer
        if not peer.online or self._connecting:
            return
        if self.state != HEALTHY:
            return
        if peer.cn is not None and peer.cn.alive:
            return
        self._connecting = True

        def execute(cn: "ConnectionNode"):
            cn.login(peer, self.system.sim.now)
            return cn

        def on_result(cn: "ConnectionNode") -> None:
            self._connecting = False
            self._reestablished(cn)

        def on_giveup() -> None:
            self._connecting = False

        self.request("relogin", execute, on_result=on_result,
                     on_giveup=on_giveup, fresh_login=True)

    def query(self, cid: str, token, exclude, on_response) -> None:
        """Ask the CN for upload candidates (§3.7), with failover."""
        peer = self.peer
        self.request(
            "query",
            lambda cn: cn.query(peer, cid, token, exclude=exclude),
            on_result=on_response,
        )

    def register(self, cid: str, on_registered=None) -> None:
        """Register one cached object with the directory."""
        peer = self.peer
        self.request(
            "register",
            lambda cn: cn.register_content(peer, cid, self.system.sim.now),
            on_result=(lambda _res: on_registered()) if on_registered else None,
        )

    def unregister(self, cid: str) -> None:
        """Withdraw one (peer, object) directory entry."""
        peer = self.peer
        self.request("unregister", lambda cn: cn.unregister_content(peer, cid))

    def refresh_registrations(self) -> None:
        """Soft-state refresh of every shareable object (§3.8).

        The whole refresh is one RPC: if the peer's CN has died, the
        request fails over to a live CN (re-opening the control connection
        there) instead of silently skipping the refresh and letting the
        registrations expire out of the directory.
        """
        peer = self.peer

        def execute(cn: "ConnectionNode"):
            now = self.system.sim.now
            count = 0
            for cid in peer.shareable_cids():
                cn.register_content(peer, cid, now)
                count += 1
            return count

        self.request("refresh", execute)

    def report_usage(self, report: "UsageReport") -> None:
        """Upload a usage report; defer to the accounting log on give-up.

        Matches the production semantics: reports that cannot reach a CN
        are uploaded when connectivity returns — the trace still sees the
        download, billing is deferred (modelled as a direct ingest).
        """
        self.request(
            "usage",
            lambda cn: cn.report_usage(report),
            on_giveup=lambda: self.system.accounting.ingest(report),
        )

    def answer_re_add(self, cn: "ConnectionNode") -> bool:
        """Reply to a RE-ADD broadcast by re-listing stored files (§3.8).

        Returns True when the reply was sent (it may still be lost in
        flight; the periodic refresh heals any gap).  A degraded or
        partitioned peer cannot answer.
        """
        peer = self.peer
        if self.state == DEGRADED or not self.reachable:
            return False

        def deliver() -> None:
            if not cn.alive or not peer.online:
                return
            now = self.system.sim.now
            for cid in peer.handle_re_add():
                cn.register_content(peer, cid, now)

        if self._ideal():
            deliver()
            return True
        self.stats.attempts += 1
        if self.rng.random() < self.loss_prob:
            self.stats.lost_messages += 1
            return False
        self.system.sim.schedule(2.0 * self.latency, deliver)
        return True

    # -------------------------------------------------------- request engine

    def request(self, op: str, execute, *, on_result=None, on_giveup=None,
                fresh_login: bool = False) -> None:
        """Issue one RPC: ``execute(cn)`` runs CN-side at delivery time.

        ``on_result`` receives the return value of ``execute`` once the
        response arrives; ``on_giveup`` fires when the request exhausts its
        retries or the channel is (or goes) degraded.
        """
        self.stats.requests += 1
        if self.state == DEGRADED:
            self.stats.dropped_degraded += 1
            if on_giveup is not None:
                on_giveup()
            return
        req = _Request(op, execute, on_result, on_giveup,
                       fresh_login=fresh_login)
        self._pending.add(req)
        self._attempt(req)

    def _ideal(self) -> bool:
        return self.latency <= 0 and self.loss_prob <= 0 and self.reachable

    def _resolve_cn(self, req: _Request) -> Optional["ConnectionNode"]:
        """The CN this attempt talks to, failing over if ours has died."""
        peer = self.peer
        if req.fresh_login:
            return self.system.control.cn_for(peer)
        cn = peer.cn
        if cn is not None and cn.alive and peer.guid in cn.connected:
            return cn
        # CN-side liveness: the CN died, or it restarted and no longer
        # holds our connection (membership in its table is the ground
        # truth).  Either way the peer notices on its next send and fails
        # over on its own (§3.8), re-opening the control connection —
        # possibly on the same, recovered node.
        cn = self.system.control.cn_for(peer)
        if cn is None:
            return None
        cn.login(peer, self.system.sim.now)
        self.stats.failovers += 1
        self._reestablished(cn)
        return cn

    def _attempt(self, req: _Request) -> None:
        req.retry_event = None
        if req.done:
            self._pending.discard(req)
            return
        if not self.peer.online:
            # The peer dropped offline with this request queued; hand it to
            # the give-up path so deferred work (usage reports) still runs.
            self._giveup(req)
            return
        cn = self._resolve_cn(req)
        if cn is None:
            # Nothing reachable at all; fail fast (no message to lose).
            self._attempt_failed(req)
            return
        if self._ideal():
            result = req.execute(cn)
            self._succeed(req, result)
            return
        self.stats.attempts += 1
        req.timed_out = False
        req.timeout_event = self.system.sim.schedule(
            self.cfg.request_timeout, lambda: self._timeout(req)
        )
        if not self.reachable or self.rng.random() < self.loss_prob:
            # Request message lost: nothing arrives, the timeout fires.
            self.stats.lost_messages += 1
            return
        self.system.sim.schedule(self.latency, lambda: self._deliver(req, cn))

    def _deliver(self, req: _Request, cn: "ConnectionNode") -> None:
        """The request message arrives CN-side (one latency later)."""
        if req.done or req.timed_out:
            return
        if not cn.alive:
            return  # the CN died in flight; no response, the timeout fires
        result = req.execute(cn)
        # The CN-side effect has happened even if the response is lost —
        # retries are idempotent re-applications, as in the real protocol.
        if not self.reachable or self.rng.random() < self.loss_prob:
            self.stats.lost_messages += 1
            return
        self.system.sim.schedule(
            self.latency, lambda: self._respond(req, result)
        )

    def _respond(self, req: _Request, result: object) -> None:
        """The response arrives client-side (another latency later)."""
        if req.done or req.timed_out:
            return  # superseded by a timeout/retry; drop the stale response
        self._succeed(req, result)

    def _succeed(self, req: _Request, result: object) -> None:
        req.done = True
        self._pending.discard(req)
        if req.timeout_event is not None:
            req.timeout_event.cancel()
            req.timeout_event = None
        self.consecutive_failures = 0
        if self.state == RETRYING:
            self.state = HEALTHY
        if req.on_result is not None:
            req.on_result(result)

    def _timeout(self, req: _Request) -> None:
        if req.done:
            return
        req.timed_out = True
        req.timeout_event = None
        self.stats.timeouts += 1
        self._attempt_failed(req)

    def _attempt_failed(self, req: _Request) -> None:
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.cfg.breaker_threshold:
            self._giveup(req)
            self._trip()
            return
        if req.attempt >= self.cfg.max_retries:
            self._giveup(req)
            return
        req.attempt += 1
        self.stats.retries += 1
        if self.state == HEALTHY:
            self.state = RETRYING
        delay = min(self.cfg.backoff_cap,
                    self.cfg.backoff_base * (2.0 ** (req.attempt - 1)))
        jitter = self.cfg.backoff_jitter
        if jitter > 0:
            delay *= 1.0 + jitter * self.rng.uniform(-1.0, 1.0)
        req.retry_event = self.system.sim.schedule(
            delay, lambda: self._attempt(req)
        )

    def _giveup(self, req: _Request) -> None:
        req.done = True
        self._pending.discard(req)
        if req.timeout_event is not None:
            req.timeout_event.cancel()
            req.timeout_event = None
        self.stats.giveups += 1
        if req.on_giveup is not None:
            req.on_giveup()

    # -------------------------------------------- degradation and recovery

    def _trip(self) -> None:
        """Trip the circuit breaker: edge-only until a probe succeeds."""
        if self.state == DEGRADED:
            return
        self.state = DEGRADED
        self.stats.breaker_trips += 1
        self.times_degraded += 1
        self.degraded_since = self.system.sim.now
        self.peer.cn = None
        # Shed in-flight requests: they would only hammer a dead plane.
        for req in list(self._pending):
            self._giveup(req)
        self._schedule_probe()

    def _schedule_probe(self) -> None:
        if self._probe_event is not None:
            self._probe_event.cancel()
        self._probe_event = self.system.sim.schedule(
            self.cfg.probe_interval, self._probe
        )

    def _probe(self) -> None:
        """One recovery probe: can we reach a CN again?"""
        self._probe_event = None
        if self.state != DEGRADED or not self.peer.online:
            return
        self.stats.probes += 1
        self.state = PROBING
        cn = self.system.control.cn_for(self.peer)
        delivered = (
            cn is not None
            and self.reachable
            and (self.loss_prob <= 0 or self.rng.random() >= self.loss_prob)
        )
        if not delivered:
            self.stats.probe_failures += 1
            self.state = DEGRADED
            self._schedule_probe()
            return
        cn.login(self.peer, self.system.sim.now)
        self._recovered(cn)

    def reconnect(self) -> None:
        """Externally-driven reconnection (§3.8 rate-limited recovery path).

        Invoked by :meth:`ControlPlane.schedule_reconnects` after CN
        failures and blackout restores.  A healthy channel simply re-opens
        the connection; a degraded one treats this as an immediate probe.
        """
        peer = self.peer
        if not peer.online:
            return
        if self.state == DEGRADED:
            self.stats.probes += 1
        cn = self.system.control.cn_for(peer)
        if cn is None or not self.reachable:
            if self.state == DEGRADED:
                self.stats.probe_failures += 1
            elif peer.cn is None or not peer.cn.alive:
                # The old behaviour left a dead reference; now the failed
                # reconnect counts towards the breaker so probes take over.
                self._note_unreachable()
            peer.cn = None if cn is None else peer.cn
            return
        cn.login(peer, self.system.sim.now)
        self._reestablished(cn)

    def _note_unreachable(self) -> None:
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.cfg.breaker_threshold:
            self._trip()

    def _reestablished(self, cn: "ConnectionNode") -> None:
        """A control connection is open again: heal state, promote sessions."""
        peer = self.peer
        peer.cn = cn
        if self.state == DEGRADED or self.state == PROBING:
            self._recovered(cn)
            return
        self.consecutive_failures = 0
        self.state = HEALTHY
        self._promote_sessions()

    def _recovered(self, cn: "ConnectionNode") -> None:
        """Recovery proper: close the degraded period, restore soft state."""
        peer = self.peer
        now = self.system.sim.now
        peer.cn = cn
        if self.degraded_since is not None:
            downtime = now - self.degraded_since
            self.stats.degraded_seconds += downtime
            self.last_downtime = downtime
            self.degraded_since = None
        self.stats.recoveries += 1
        self.last_recovered_at = now
        self.consecutive_failures = 0
        self.state = HEALTHY
        if self._probe_event is not None:
            self._probe_event.cancel()
            self._probe_event = None
        # The login above re-registered the shareable cache; reflect that
        # in the local flags so later evictions withdraw their entries.
        for cid in peer.shareable_cids():
            entry = peer.cache.get(cid)
            if entry is not None:
                entry.registered = True
        self._promote_sessions()

    def _promote_sessions(self) -> None:
        """Promote in-flight edge-only downloads back to hybrid (§3.8)."""
        promoted = 0
        for session in list(self.peer.sessions.values()):
            if session.promote_to_hybrid():
                promoted += 1
        self.stats.sessions_promoted += promoted

    # ------------------------------------------------------------- lifecycle

    def reset(self) -> None:
        """The peer went offline: drop all channel state.

        An open degraded period is accounted (without counting a recovery);
        pending requests, retries, and probes are cancelled.  The next
        ``go_online`` starts from a clean, healthy channel.
        """
        now = self.system.sim.now
        if self.degraded_since is not None:
            self.stats.degraded_seconds += now - self.degraded_since
            self.degraded_since = None
        if self._probe_event is not None:
            self._probe_event.cancel()
            self._probe_event = None
        for req in list(self._pending):
            req.done = True
            if req.timeout_event is not None:
                req.timeout_event.cancel()
            if req.retry_event is not None:
                req.retry_event.cancel()
            if req.on_giveup is not None:
                req.on_giveup()
        self._pending.clear()
        self.state = HEALTHY
        self.consecutive_failures = 0
        self._connecting = False

    def degraded_for(self, now: float) -> float:
        """Seconds the current degraded period has lasted (0.0 if healthy)."""
        if self.degraded_since is None:
            return 0.0
        return now - self.degraded_since

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ControlChannel peer={self.peer.guid[:8]} {self.state} "
            f"lat={self.latency}s loss={self.loss_prob}>"
        )
