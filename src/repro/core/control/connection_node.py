"""Connection nodes: the peers' endpoint into the control plane (paper §3.6).

A CN terminates the persistent TCP connections of up to ~150,000 peers.  It
receives logins and usage statistics, answers object queries by consulting
its *local* database nodes, instructs peer pairs to connect to each other,
and — after a DN failure — broadcasts RE-ADD so the peers repopulate the
directory from their own state (§3.8).

The peer objects a CN holds must provide the small protocol documented in
:class:`repro.core.peer.PeerNode`: identity (``guid``, ``ip``), locality
(``asn``, ``country_code``, ``geo_region``), connectivity (``nat_profile``),
preferences (``uploads_enabled``), ``shareable_cids()`` and
``handle_re_add()``.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.analysis.logstore import LogStore
from repro.analysis.records import LoginRecord, RegistrationRecord
from repro.core.config import ControlPlaneConfig
from repro.core.control.database_node import DatabaseNode, PeerRegistration
from repro.core.control.stun import StunService
from repro.core.edge import AuthToken, EdgeNetwork
from repro.core.messages import PeerCandidate, PeerQueryResponse, UsageReport
from repro.core.selection import QueryContext, device_rank_key, select_peers

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.accounting import AccountingService
    from repro.core.peer import PeerNode

__all__ = ["ConnectionNode"]


def _compose_admission(policy_admits, reputation, now):
    """Serving-policy filter ∧ reputation quarantine gate."""
    if policy_admits is None:
        return lambda query, reg: reputation.admits(reg.guid, now)
    return lambda query, reg: (
        reputation.admits(reg.guid, now) and policy_admits(query, reg)
    )


class ConnectionNode:
    """One CN: login handling, peer queries, usage collection."""

    def __init__(
        self,
        name: str,
        network_region: str,
        local_dns: list[DatabaseNode],
        edge: EdgeNetwork,
        stun: StunService,
        logstore: LogStore,
        accounting: "AccountingService",
        config: ControlPlaneConfig,
        rng: random.Random,
        *,
        locality_aware: bool = True,
    ):
        if not local_dns:
            raise ValueError(f"CN {name} needs at least one local DN")
        self.name = name
        self.network_region = network_region
        self.local_dns = local_dns
        self.edge = edge
        self.stun = stun
        self.logstore = logstore
        self.accounting = accounting
        self.config = config
        self.rng = rng
        self.locality_aware = locality_aware
        self.alive = True
        self.connected: dict[str, "PeerNode"] = {}
        #: Set by the control plane: callable(cid, exclude_region) returning
        #: registrations from remote regions (§3.7: the CN/DN system is
        #: interconnected, so cross-region search is possible).
        self.remote_lookup = None
        #: Optional serving policy (see :mod:`repro.vod.policy`): filters
        #: candidates and can veto cross-region widening for the cids it
        #: governs.  None (the default) changes nothing.
        self.serving_policy = None
        #: Optional reputation engine (see :mod:`repro.adversary.reputation`),
        #: installed by the system when ``SystemConfig.defense.enabled``:
        #: quarantined peers are filtered out of (and evicted from) the
        #: directory and candidates are ranked by score.  None = no defense.
        self.reputation = None
        #: Optional device-tier ranking weights (class name -> weight),
        #: installed by population synthesis when a device mix declares
        #: non-zero selection weights.  Composes with the reputation rank
        #: (class dominates, score breaks ties).  None = class-blind.
        self.device_rank_weights = None
        #: Candidates returned on the *first* query per (guid, cid) — feeds
        #: the Figure 6 field of the download record.
        self.first_query_counts: dict[tuple[str, str], int] = {}

    # ----------------------------------------------------------------- login

    def login(self, peer: "PeerNode", now: float) -> None:
        """Accept a peer's persistent connection.

        Runs a STUN probe, records the login (Table 1's login entries), and
        registers whatever complete objects the peer is willing to share.
        """
        if not self.alive:
            raise ConnectionError(f"CN {self.name} is down")
        self.connected[peer.guid] = peer
        self.stun.probe(peer.nat_profile)
        self.logstore.add_login(LoginRecord(
            guid=peer.guid,
            ip=peer.ip,
            timestamp=now,
            software_version=peer.software_version,
            uploads_enabled=peer.uploads_enabled,
            secondary_guids=tuple(peer.secondary_history),
        ))
        if peer.uploads_enabled:
            for cid in peer.shareable_cids():
                self.register_content(peer, cid, now)

    def logout(self, peer: "PeerNode") -> None:
        """Peer closed its connection; drop its directory entries."""
        self.connected.pop(peer.guid, None)
        for dn in self.local_dns:
            dn.unregister_peer(peer.guid)

    # -------------------------------------------------------------- directory

    def _dn_for(self, cid: str) -> DatabaseNode | None:
        """Deterministically map a cid to one of the local (alive) DNs."""
        alive = [dn for dn in self.local_dns if dn.alive]
        if not alive:
            return None
        # Stable hash (cids are hex) so the cid->DN mapping is reproducible
        # across processes regardless of PYTHONHASHSEED.
        return alive[int(cid[:8], 16) % len(alive)]

    def register_content(self, peer: "PeerNode", cid: str, now: float) -> None:
        """Record that ``peer`` holds a complete copy of ``cid``."""
        if not peer.uploads_enabled:
            return
        if (self.reputation is not None
                and self.reputation.is_quarantined(peer.guid, now)):
            # Quarantined peers stay out of the directory: eviction would be
            # pointless if the next refresh re-registered them.
            return
        dn = self._dn_for(cid)
        if dn is None:
            return
        added = dn.register(PeerRegistration(
            guid=peer.guid,
            cid=cid,
            asn=peer.asn,
            country_code=peer.country_code,
            region=peer.geo_region,
            nat_reported=peer.nat_profile.reported_type.value,
            uploads_enabled=peer.uploads_enabled,
            registered_at=now,
            refreshed_at=now,
            lan_id=peer.lan_id,
            device_class=peer.device_class,
        ))
        if added:
            self.logstore.add_registration(RegistrationRecord(
                guid=peer.guid, cid=cid, timestamp=now,
                network_region=self.network_region,
            ))

    def unregister_content(self, peer: "PeerNode", cid: str) -> None:
        """Remove a (peer, object) directory entry (evicted, budget spent)."""
        for dn in self.local_dns:
            dn.unregister(peer.guid, cid)

    # ----------------------------------------------------------------- query

    def query(
        self,
        peer: "PeerNode",
        cid: str,
        token: AuthToken,
        exclude: frozenset[str] = frozenset(),
    ) -> PeerQueryResponse:
        """Answer a peer's request for upload candidates (§3.7).

        Verifies the edge-issued authorization token first (§3.5: tokens
        prevent users from obtaining content from peers that they are not
        authorized to get from the infrastructure).
        """
        if not self.alive:
            raise ConnectionError(f"CN {self.name} is down")
        if not self.edge.verify_token(token, peer.guid, cid):
            return PeerQueryResponse(cid=cid, candidates=())
        dn = self._dn_for(cid)
        if dn is None:
            return PeerQueryResponse(cid=cid, candidates=())

        context = QueryContext(
            guid=peer.guid,
            asn=peer.asn,
            country_code=peer.country_code,
            region=peer.geo_region,
            nat_reported=peer.nat_profile.reported_type.value,
            lan_id=peer.lan_id,
        )
        pool = dn.peers_for(cid)
        # Widen to remote regions when the local directory is thin (§3.7).
        # With locality disabled (ablation), the structural level is ablated
        # too: candidates always come from the whole interconnected CN/DN
        # system, not just the local region.
        policy = self.serving_policy
        threshold = self.config.remote_search_threshold
        widen = (
            (threshold > 0 and len(pool) < threshold) or not self.locality_aware
        )
        if widen and policy is not None and not policy.allow_widening(
                context, cid):
            widen = False  # e.g. isp_local: remote regions stay closed
        if widen and self.remote_lookup is not None:
            pool = pool + self.remote_lookup(cid, self.network_region)
        # Compose the serving-policy filter with the reputation gate and
        # ranking.  Both hooks are None by default, in which case the call
        # below is identical (argument-for-argument) to the undefended one.
        candidate_filter = policy.admits if policy is not None else None
        rank_key = None
        reputation = self.reputation
        if reputation is not None:
            now = reputation.clock()
            rank_key = reputation.rank_key(now)
            candidate_filter = _compose_admission(
                candidate_filter, reputation, now)
        if self.device_rank_weights is not None:
            rank_key = device_rank_key(self.device_rank_weights, rank_key)
        selected = select_peers(
            pool,
            context,
            self.config.peers_per_query,
            self.rng,
            exclude=exclude,
            diversity_probability=self.config.diversity_probability,
            locality_aware=self.locality_aware,
            candidate_filter=candidate_filter,
            rank_key=rank_key,
        )
        if reputation is not None:
            # The quarantined-never-selected audit: the filter above must
            # make this dead code; the counter proves it stayed that way.
            for reg in selected:
                if reputation.is_quarantined(reg.guid, now):
                    reputation.quarantine_leaks += 1
        for reg in selected:
            dn.rotate_to_end(cid, reg.guid)

        key = (peer.guid, cid)
        if key not in self.first_query_counts:
            self.first_query_counts[key] = len(selected)

        candidates = tuple(
            PeerCandidate(guid=r.guid, ip="", asn=r.asn, nat_type=r.nat_reported)
            for r in selected
        )
        return PeerQueryResponse(cid=cid, candidates=candidates)

    def pop_first_query_count(self, guid: str, cid: str) -> int:
        """Retrieve (and clear) the Figure 6 counter for a finished download."""
        return self.first_query_counts.pop((guid, cid), 0)

    # ------------------------------------------------------------ accounting

    def report_usage(self, report: UsageReport) -> bool:
        """Ingest a peer's usage report; returns False if it was rejected.

        Validation (cross-check against trusted edge logs) happens in the
        accounting service; rejected reports are still counted there for the
        §6.2 attack analysis but do not reach billing.  Accepted reports
        additionally feed the reputation engine (when the defense is on):
        the per-uploader contribution and misbehavior observations ride the
        same RPC the peer already sends — and because rejected reports stop
        here, an accounting inflator can't poison anyone's score.
        """
        accepted = self.accounting.ingest(report)
        if accepted and self.reputation is not None:
            self.reputation.ingest_report(report, self.reputation.clock())
        return accepted

    # -------------------------------------------------------------- failures

    def fail(self) -> list["PeerNode"]:
        """Crash this CN.  Returns the peers that must reconnect elsewhere."""
        self.alive = False
        orphans = list(self.connected.values())
        self.connected.clear()
        for dn in self.local_dns:
            for peer in orphans:
                dn.unregister_peer(peer.guid)
        return orphans

    def recover(self) -> None:
        """Restart the CN (empty connection table)."""
        self.alive = True

    def broadcast_re_add(self, now: float) -> int:
        """Ask every connected peer to re-list its files (§3.8 RE-ADD).

        The exchange rides each peer's control channel, so replies can be
        delayed or lost under an active fault (the periodic registration
        refresh heals any gap).  Returns the number of peers that answered.
        """
        answered = 0
        for peer in list(self.connected.values()):
            channel = getattr(peer, "channel", None)
            if channel is not None:
                if channel.answer_re_add(self):
                    answered += 1
                continue
            cids = peer.handle_re_add()
            for cid in cids:
                self.register_content(peer, cid, now)
            answered += 1
        return answered

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CN {self.name} region={self.network_region} peers={len(self.connected)}>"
