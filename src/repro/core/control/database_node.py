"""Database nodes: the control plane's object→peer directory.

A DN (paper §3.6) maintains "a database of which objects are currently
available on which peers, as well as details about the connectivity of these
peers".  Peers appear only when (a) uploads are enabled and (b) the peer
currently has objects to share.  DN state is *soft* (§3.8): it can be lost
and rebuilt from the peers via RE-ADD, and registrations expire unless
refreshed.

Each DN serves one control-plane network region; CNs query only their local
DNs (§3.7), which is what keeps peer-to-peer traffic local.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PeerRegistration", "DatabaseNode"]


@dataclass
class PeerRegistration:
    """Directory entry: one peer holding one object, plus connectivity info.

    Locality fields feed the nested selection sets of §3.7 (AS → country →
    geographic region → world); ``nat_reported`` feeds the connectivity
    filter.
    """

    guid: str
    cid: str
    asn: int
    country_code: str
    region: str            # geographic region
    nat_reported: str      # STUN-reported NAT type value
    uploads_enabled: bool
    registered_at: float
    refreshed_at: float
    #: Corporate LAN site id; "" for residential peers (§5.3 extension).
    lan_id: str = ""
    #: Device-tier name ("desktop" covers the homogeneous default); feeds
    #: class-aware candidate ranking when a device mix sets weights.
    device_class: str = "desktop"


class DatabaseNode:
    """One DN: per-object ordered peer lists with soft-state expiry.

    Peer lists are kept in insertion/rotation order: when the selection
    logic picks a peer it rotates it to the end ("when a peer is selected,
    it is placed at the end of a peer selection list for fairness", §3.7).
    Python dicts preserve insertion order, which gives us an O(1) rotate.
    """

    def __init__(self, name: str, network_region: str, registration_ttl: float):
        if registration_ttl <= 0:
            raise ValueError("registration TTL must be positive")
        self.name = name
        self.network_region = network_region
        self.registration_ttl = registration_ttl
        self.table: dict[str, dict[str, PeerRegistration]] = {}
        self.alive = True

    # --------------------------------------------------------------- updates

    def register(self, reg: PeerRegistration) -> bool:
        """Add or refresh a registration.  Returns True if newly added."""
        if not self.alive:
            return False
        entries = self.table.setdefault(reg.cid, {})
        existed = reg.guid in entries
        if existed:
            entries[reg.guid].refreshed_at = reg.refreshed_at
            entries[reg.guid].nat_reported = reg.nat_reported
        else:
            entries[reg.guid] = reg
        return not existed

    def unregister(self, guid: str, cid: str) -> None:
        """Remove one (peer, object) entry."""
        entries = self.table.get(cid)
        if entries is not None:
            entries.pop(guid, None)
            if not entries:
                del self.table[cid]

    def unregister_peer(self, guid: str) -> int:
        """Remove a peer from every object list (offline or quarantined).

        Returns the number of entries removed (the reputation engine counts
        quarantine evictions).
        """
        removed = 0
        empty = []
        for cid, entries in self.table.items():
            if entries.pop(guid, None) is not None:
                removed += 1
            if not entries:
                empty.append(cid)
        for cid in empty:
            del self.table[cid]
        return removed

    def expire(self, now: float) -> int:
        """Drop registrations not refreshed within the TTL; returns count."""
        dropped = 0
        empty = []
        for cid, entries in self.table.items():
            stale = [g for g, r in entries.items()
                     if now - r.refreshed_at > self.registration_ttl]
            for g in stale:
                del entries[g]
                dropped += 1
            if not entries:
                empty.append(cid)
        for cid in empty:
            del self.table[cid]
        return dropped

    def rotate_to_end(self, cid: str, guid: str) -> None:
        """Fairness rotation: move a just-selected peer to the list's end."""
        entries = self.table.get(cid)
        if entries and guid in entries:
            entries[guid] = entries.pop(guid)

    # -------------------------------------------------------------- failures

    def fail(self) -> None:
        """Simulate a DN crash: all soft state is lost (§3.8)."""
        self.table.clear()
        self.alive = False

    def recover(self) -> None:
        """Bring the DN back (empty); RE-ADD repopulates it."""
        self.alive = True

    # ---------------------------------------------------------------- reads

    def peers_for(self, cid: str) -> list[PeerRegistration]:
        """Current registrations for an object, in rotation order."""
        return list(self.table.get(cid, {}).values())

    def copy_count(self, cid: str) -> int:
        """Number of peers currently registered for an object."""
        return len(self.table.get(cid, {}))

    def total_registrations(self) -> int:
        """Total (peer, object) entries held."""
        return sum(len(v) for v in self.table.values())
