"""Monitoring nodes: operational telemetry (paper §3.6, §3.8).

"Peers upload information about their operation and about problems, such as
application crash reports, to these nodes.  Processing their logs helps to
monitor the network in real-time, to identify problems, and to troubleshoot
specific user issues."  §3.8 adds that download/upload performance is
constantly monitored with automated alerts for large-scale problems.

We keep per-kind counters, a bounded recent-report ring, and a trivial
alerting rule (report rate over a sliding window) — enough to exercise the
reporting code path from the peers and to test the §3.8 claims.
"""

from __future__ import annotations

from collections import Counter, deque

from repro.core.messages import CrashReport

__all__ = ["MonitoringService"]


class MonitoringService:
    """Collects crash/error reports and raises rate alerts."""

    def __init__(self, *, window: float = 3600.0, alert_threshold: int = 1000,
                 recent_capacity: int = 1000, alert_cooldown: float | None = None):
        if window <= 0:
            raise ValueError("monitoring window must be positive")
        if alert_cooldown is not None and alert_cooldown < 0:
            raise ValueError("alert cooldown must be non-negative")
        self.window = window
        self.alert_threshold = alert_threshold
        #: Minimum seconds between alerts while the rate stays over the
        #: threshold; defaults to the window length.
        self.alert_cooldown = window if alert_cooldown is None else alert_cooldown
        self.counts: Counter[str] = Counter()
        self.recent: deque[CrashReport] = deque(maxlen=recent_capacity)
        self._window_times: deque[float] = deque()
        self._last_alert_at: float | None = None
        self.alerts: list[tuple[float, str]] = []

    def report(self, report: CrashReport) -> None:
        """Ingest one report; may trigger an alert.

        The sliding window is *kept* across alerts so a sustained overload
        keeps re-alerting; the cooldown is what spaces the alerts out.
        (Clearing the window on alert — the old behaviour — silently
        suppressed every follow-up alert until the window refilled from
        zero, hiding exactly the large-scale problems §3.8 monitors for.)
        """
        self.counts[report.kind] += 1
        self.recent.append(report)
        self._window_times.append(report.timestamp)
        cutoff = report.timestamp - self.window
        while self._window_times and self._window_times[0] < cutoff:
            self._window_times.popleft()
        if len(self._window_times) >= self.alert_threshold:
            in_cooldown = (
                self._last_alert_at is not None
                and report.timestamp - self._last_alert_at < self.alert_cooldown
            )
            if not in_cooldown:
                self.alerts.append(
                    (report.timestamp, f"report rate >= {self.alert_threshold}/window")
                )
                self._last_alert_at = report.timestamp

    def total_reports(self) -> int:
        """All reports ever ingested."""
        return sum(self.counts.values())
