"""The NetSession control plane: CN/DN assembly, mapping, and robustness.

Assembles the per-region connection nodes and database nodes, maps each
peer to a CN in its network region (standing in for Akamai's DNS-based
mapping, §3.7), and implements the §3.8 robustness story:

* **CN failure** — connected peers simply reconnect to another CN; during a
  large-scale failure reconnections are rate-limited for smooth recovery;
* **DN failure** — soft state is lost; the region's CNs broadcast RE-ADD and
  peers re-list their stored files, repopulating the directory;
* **total control-plane failure** — peers that cannot reach any CN fall back
  to edge-only downloads (handled in the peer; tested in the failure suite);
* **soft-state expiry** — registrations not refreshed within the TTL are
  dropped on a periodic sweep.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.analysis.logstore import LogStore
from repro.core.config import SystemConfig
from repro.core.control.connection_node import ConnectionNode
from repro.core.control.database_node import DatabaseNode
from repro.core.control.monitoring import MonitoringService
from repro.core.control.stun import StunService
from repro.core.edge import EdgeNetwork
from repro.net.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.accounting import AccountingService
    from repro.core.peer import PeerNode

__all__ = ["ControlPlane"]


class ControlPlane:
    """All control-plane servers plus the peer↔CN mapping logic."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        edge: EdgeNetwork,
        logstore: LogStore,
        accounting: "AccountingService",
        network_regions: list[str],
        rng: random.Random,
        *,
        locality_aware: bool = True,
    ):
        if not network_regions:
            raise ValueError("control plane needs at least one network region")
        self.sim = sim
        self.config = config
        self.edge = edge
        self.logstore = logstore
        self.accounting = accounting
        self.rng = rng
        self.stun = StunService()
        self.monitoring = MonitoringService()

        self.dns_by_region: dict[str, list[DatabaseNode]] = {}
        self.cns_by_region: dict[str, list[ConnectionNode]] = {}
        self.all_cns: list[ConnectionNode] = []
        self.all_dns: list[DatabaseNode] = []
        for region in network_regions:
            dns = [
                DatabaseNode(
                    f"dn-{region}-{i}", region,
                    config.control_plane.registration_ttl,
                )
                for i in range(config.dns_per_region)
            ]
            self.dns_by_region[region] = dns
            self.all_dns.extend(dns)
            cns = [
                ConnectionNode(
                    f"cn-{region}-{i}", region, dns, edge, self.stun,
                    logstore, accounting, config.control_plane, rng,
                    locality_aware=locality_aware,
                )
                for i in range(config.cns_per_region)
            ]
            self.cns_by_region[region] = cns
            self.all_cns.extend(cns)

        for cn in self.all_cns:
            cn.remote_lookup = self._remote_peers_for

        #: Tokens available for rate-limited reconnection (§3.8).
        self._reconnect_tokens = config.control_plane.reconnect_rate_limit
        self._last_token_refill = sim.now

        # Periodic soft-state expiry sweep (hourly).
        sim.every(3600.0, self._expire_sweep)

    # --------------------------------------------------------------- mapping

    def cn_for(self, peer: "PeerNode") -> ConnectionNode | None:
        """Map a peer to an alive CN, preferring its own network region.

        Akamai's DNS maps each peer to the closest available CN (§3.7); if
        the local region's CNs are all down, any alive CN elsewhere is used;
        if none is alive anywhere, returns None (edge-only fallback, §3.8).
        """
        local = [cn for cn in self.cns_by_region.get(peer.network_region, ())
                 if cn.alive]
        if local:
            return self.rng.choice(local)
        anywhere = [cn for cn in self.all_cns if cn.alive]
        if anywhere:
            return self.rng.choice(anywhere)
        return None

    def login(self, peer: "PeerNode") -> ConnectionNode | None:
        """Open a peer's persistent connection; returns its CN (or None)."""
        cn = self.cn_for(peer)
        if cn is None:
            return None
        cn.login(peer, self.sim.now)
        return cn

    # -------------------------------------------------------------- failures

    def fail_cn(self, cn: ConnectionNode) -> int:
        """Crash a CN; orphaned peers reconnect elsewhere, rate-limited.

        Returns the number of orphaned peers scheduled for reconnection.
        """
        return self.schedule_reconnects(cn.fail())

    def recover_cn(self, cn: ConnectionNode) -> None:
        """Restart a crashed CN (ops bring the node back; §3.8)."""
        cn.recover()

    def schedule_reconnects(self, peers: list["PeerNode"]) -> int:
        """Schedule rate-limited reconnections for ``peers`` (§3.8).

        The shared token bucket smooths recovery after large-scale failures:
        a burst up to the limit reconnects within seconds, the rest is
        spread at the limit rate.  Used after CN crashes and when service is
        restored after a control-plane blackout.
        """
        self._refill_tokens()
        delay = 0.0
        rate = self.config.control_plane.reconnect_rate_limit
        for peer in peers:
            if self._reconnect_tokens >= 1:
                self._reconnect_tokens -= 1
                jitter = self.rng.uniform(0.0, 2.0)
            else:
                # Past the burst budget: spread reconnects at the limit rate.
                delay += 1.0 / rate
                jitter = delay + self.rng.uniform(0.0, 2.0)
            self.sim.schedule(jitter, peer.reconnect)
        return len(peers)

    def fail_dn(self, dn: DatabaseNode, *, recover: bool = True) -> int:
        """Crash a DN, losing its soft state; optionally recover via RE-ADD.

        Returns the number of peers that answered the RE-ADD broadcast.
        """
        dn.fail()
        if not recover:
            return 0
        dn.recover()
        answered = 0
        for cn in self.cns_by_region.get(dn.network_region, ()):
            if cn.alive:
                answered += cn.broadcast_re_add(self.sim.now)
        return answered

    def blackout(self, network_region: str | None = None) -> int:
        """Take down every CN and DN (in one region, or everywhere).

        Directory soft state is lost with the DNs.  If any CN survives
        elsewhere (regional blackout), the orphaned peers are reconnected to
        it rate-limited; in a total blackout there is nothing to reconnect
        to and peers fall back to edge-only delivery (§3.8) until
        :meth:`restore`.  Returns the number of orphaned peers.
        """
        orphans: list["PeerNode"] = []
        for cn in self.all_cns:
            if cn.alive and (network_region is None or cn.network_region == network_region):
                orphans.extend(cn.fail())
        for dn in self.all_dns:
            if dn.alive and (network_region is None or dn.network_region == network_region):
                dn.fail()
        if any(cn.alive for cn in self.all_cns):
            self.schedule_reconnects(orphans)
        return len(orphans)

    def restore(self, network_region: str | None = None,
                peers: list["PeerNode"] | None = None) -> int:
        """Bring a blacked-out control plane back (in one region, or all).

        DNs recover empty — their soft state is rebuilt by the peers, via
        the registrations each login performs and the periodic refresh
        (the RE-ADD path, §3.8).  ``peers`` are the clients to reconnect,
        rate-limited; pass the online peers that lost their CN.  Returns
        the number of reconnections scheduled.
        """
        for dn in self.all_dns:
            if not dn.alive and (network_region is None or dn.network_region == network_region):
                dn.recover()
        for cn in self.all_cns:
            if not cn.alive and (network_region is None or cn.network_region == network_region):
                cn.recover()
        if peers is None:
            return 0
        return self.reconnect_stranded(peers)

    def reconnect_stranded(self, peers: list["PeerNode"]) -> int:
        """Reconnect the online peers in ``peers`` that lost their CN.

        A recovered CN restarts with an empty connection table, so a
        peer's stale ``cn`` reference may look alive again — membership
        in the table is the ground truth for "still connected".
        """
        stranded = [
            p for p in peers
            if p.online and (
                p.cn is None or not p.cn.alive or p.guid not in p.cn.connected
            )
        ]
        return self.schedule_reconnects(stranded)

    def rolling_restart(self) -> int:
        """Restart every CN and DN in a short timeframe (§3.8 software push).

        Models the production practice: nodes go down one at a time, peers
        reconnect, DNs are repopulated by RE-ADD.  Returns total reconnects.
        """
        reconnects = 0
        for dn in self.all_dns:
            self.fail_dn(dn, recover=True)
        for cn in self.all_cns:
            reconnects += self.fail_cn(cn)
            cn.recover()
        return reconnects

    def _refill_tokens(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_token_refill
        rate = self.config.control_plane.reconnect_rate_limit
        self._reconnect_tokens = min(rate, self._reconnect_tokens + elapsed * rate)
        self._last_token_refill = now

    def _remote_peers_for(self, cid: str, exclude_region: str) -> list:
        """Cross-region directory search (§3.7's interconnected CN/DN)."""
        found = []
        for region, dns in self.dns_by_region.items():
            if region == exclude_region:
                continue
            for dn in dns:
                if dn.alive:
                    found.extend(dn.peers_for(cid))
        return found

    def _expire_sweep(self) -> None:
        for dn in self.all_dns:
            dn.expire(self.sim.now)

    # --------------------------------------------------------------- queries

    def connected_peer_count(self) -> int:
        """Peers currently holding a control connection, fleet-wide."""
        return sum(len(cn.connected) for cn in self.all_cns)

    def total_registrations(self) -> int:
        """Directory entries across all DNs."""
        return sum(dn.total_registrations() for dn in self.all_dns)
