"""STUN service: connectivity determination for NAT traversal (paper §3.6).

"Peers periodically communicate with STUN components over UDP and TCP to
determine the details of their connectivity (which are then stored in the DN
databases) and to enable NAT traversal."

The heavy lifting (the NAT taxonomy and misclassification model) lives in
:mod:`repro.net.nat`; this service is the control-plane component peers talk
to, and it records probe volume for the monitoring dashboards.
"""

from __future__ import annotations

from repro.net.nat import NATProfile, NATType

__all__ = ["StunService"]


class StunService:
    """Answers connectivity probes and counts them."""

    def __init__(self, name: str = "stun-0"):
        self.name = name
        self.probe_count = 0

    def probe(self, profile: NATProfile) -> NATType:
        """Classify a peer's NAT.

        Returns the *reported* type — the taxonomy the probe concludes,
        which differs from the true type with the model's misclassification
        probability.  The result is what gets stored in the DN database and
        used by peer selection.
        """
        self.probe_count += 1
        return profile.reported_type
