"""Edge servers: the infrastructure half of the hybrid CDN.

Edge servers (paper §3.5) do four things for NetSession beyond serving
bytes over HTTP(S):

* **content integrity** — they generate and publish the secure content IDs
  and per-piece hashes that let peers verify pieces from any source;
* **authorization** — a peer must authenticate to an edge server to obtain
  an encrypted token before it may search for (or receive from) peers;
* **policy distribution** — per-provider download/upload policies reach
  peers through this trusted channel;
* **trusted accounting ground truth** — edge servers log the bytes they
  serve, which the accounting layer uses to detect misreporting peers
  (§3.5, §6.2).

The infrastructure is assumed well provisioned (the paper's edge-only
downloads run at client line rate), so egress capacity is unconstrained by
default; a finite capacity can be configured for backstop-stress ablations.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.core.content import ContentObject
from repro.net.flows import Resource
from repro.net.links import mbps

__all__ = ["EdgeServer", "EdgeNetwork", "AuthToken", "AuthorizationError"]


class AuthorizationError(Exception):
    """Raised when a peer requests content its provider's policy forbids."""


@dataclass(frozen=True)
class AuthToken:
    """Encrypted token allowing a peer to search for peers holding a cid.

    In the real system this is an opaque encrypted blob; here it is a keyed
    digest the control plane can verify, which is behaviourally equivalent:
    a peer cannot forge a token for content it was not authorized to fetch.
    """

    guid: str
    cid: str
    digest: str

    @staticmethod
    def issue(guid: str, cid: str, secret: str) -> "AuthToken":
        """Create a token for (guid, cid) under the CDN's signing secret."""
        digest = hashlib.sha256(f"{secret}|{guid}|{cid}".encode()).hexdigest()[:32]
        return AuthToken(guid=guid, cid=cid, digest=digest)

    def valid_for(self, guid: str, cid: str, secret: str) -> bool:
        """Verify the token binds to this peer and content under ``secret``."""
        if guid != self.guid or cid != self.cid:
            return False
        expect = hashlib.sha256(f"{secret}|{guid}|{cid}".encode()).hexdigest()[:32]
        return expect == self.digest


class EdgeServer:
    """One edge server: an egress capacity plus byte-serving logs."""

    #: Egress assumed for an unconstrained server when a brownout needs a
    #: concrete baseline to scale from (matches EdgeCapacityModel's default).
    ASSUMED_EGRESS_MBPS = 10_000.0

    def __init__(self, name: str, network_region: str, egress_mbps: float | None):
        self.name = name
        self.network_region = network_region
        capacity = None if egress_mbps is None else mbps(egress_mbps)
        # Resource(None) models an overprovisioned server that never
        # bottlenecks an individual client download.
        self.egress = Resource(f"edge:{name}", capacity) if capacity else \
            Resource(f"edge:{name}", None)
        #: While a brownout fault degrades this server, the original egress
        #: capacity (possibly None = unconstrained); cleared on recovery.
        self.pre_brownout: tuple[float | None] | None = None
        #: Trusted per-(guid, cid) byte counts — accounting ground truth.
        self.served_bytes: dict[tuple[str, str], int] = {}

    def record_served(self, guid: str, cid: str, nbytes: int) -> None:
        """Log bytes served to a peer (called as edge flows complete)."""
        if nbytes < 0:
            raise ValueError(f"cannot serve negative bytes: {nbytes}")
        key = (guid, cid)
        self.served_bytes[key] = self.served_bytes.get(key, 0) + int(nbytes)

    def total_served(self) -> int:
        """All bytes this server has delivered."""
        return sum(self.served_bytes.values())

    @property
    def browned_out(self) -> bool:
        """Is a brownout fault currently degrading this server?"""
        return self.pre_brownout is not None

    def apply_brownout(self, flows, capacity_factor: float) -> bool:
        """Degrade this server's egress to ``capacity_factor`` of normal.

        Models partial infrastructure failure (overload, a rack down behind
        the VIP): the server keeps serving, slowly.  An unconstrained server
        is scaled from :attr:`ASSUMED_EGRESS_MBPS`.  Flows started while the
        brownout holds contend for the reduced egress; flows already in
        flight on a previously *unconstrained* server keep their rate (they
        were admitted without traversing the egress resource).  Returns
        False if already browned out — brownouts do not stack.
        """
        if not 0 < capacity_factor <= 1.0:
            raise ValueError(f"capacity_factor must be in (0, 1], got {capacity_factor}")
        if self.browned_out:
            return False
        self.pre_brownout = (self.egress.capacity,)
        baseline = self.egress.capacity
        if baseline is None:
            baseline = mbps(self.ASSUMED_EGRESS_MBPS)
        flows.set_resource_capacity(self.egress, max(1.0, baseline * capacity_factor))
        return True

    def clear_brownout(self, flows) -> bool:
        """Undo :meth:`apply_brownout`, restoring the original egress."""
        if self.pre_brownout is None:
            return False
        (capacity,) = self.pre_brownout
        self.pre_brownout = None
        flows.set_resource_capacity(self.egress, capacity)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EdgeServer {self.name} region={self.network_region}>"


class EdgeNetwork:
    """The fleet of edge servers plus the catalog of published content.

    Maps each peer to a server in its network region (Akamai's DNS-based
    mapping, §3.7) and answers authorization and integrity queries.
    """

    def __init__(
        self,
        network_regions: list[str],
        rng: random.Random,
        *,
        servers_per_region: int = 2,
        egress_mbps: float | None = None,
        signing_secret: str = "netsession-secret",
    ):
        if servers_per_region <= 0:
            raise ValueError("need at least one edge server per region")
        self._rng = rng
        self._secret = signing_secret
        self.servers: list[EdgeServer] = []
        self._by_region: dict[str, list[EdgeServer]] = {}
        self._rr_index: dict[str, int] = {}
        for region in network_regions:
            group = [
                EdgeServer(f"{region}-{i}", region, egress_mbps)
                for i in range(servers_per_region)
            ]
            self._by_region[region] = group
            self._rr_index[region] = 0
            self.servers.extend(group)
        self.catalog: dict[str, ContentObject] = {}

    # --------------------------------------------------------------- content

    def publish(self, obj: ContentObject) -> None:
        """Make an object available for download (provider onboarding)."""
        self.catalog[obj.cid] = obj

    def unpublish(self, cid: str) -> None:
        """Withdraw an object from distribution."""
        self.catalog.pop(cid, None)

    def lookup(self, cid: str) -> ContentObject:
        """Fetch the catalog entry; KeyError if not published."""
        return self.catalog[cid]

    def servers_in(self, network_region: str | None) -> list[EdgeServer]:
        """The servers in a network region; all servers when region is None."""
        if network_region is None:
            return list(self.servers)
        return list(self._by_region.get(network_region, ()))

    # ----------------------------------------------------------- interaction

    def server_for(self, network_region: str) -> EdgeServer:
        """Pick the edge server a peer in ``network_region`` downloads from.

        Round-robin within the region's group; falls back to a random server
        anywhere if the region has no local group (sparse-infrastructure
        areas — relevant to the §5.3 coverage analysis).
        """
        group = self._by_region.get(network_region)
        if not group:
            return self._rng.choice(self.servers)
        index = self._rr_index[network_region]
        self._rr_index[network_region] = (index + 1) % len(group)
        return group[index]

    def authorize(self, guid: str, obj: ContentObject) -> AuthToken:
        """Authenticate a peer for an object and issue a search token (§3.5).

        Raises :class:`AuthorizationError` if the object is not published.
        """
        if obj.cid not in self.catalog:
            raise AuthorizationError(f"object {obj.cid} is not published")
        return AuthToken.issue(guid, obj.cid, self._secret)

    def verify_token(self, token: AuthToken, guid: str, cid: str) -> bool:
        """Control-plane-side token check before answering a peer query."""
        return token.valid_for(guid, cid, self._secret)

    def piece_hashes(self, obj: ContentObject) -> list[str]:
        """The trusted per-piece hashes for an object (§3.5)."""
        return [obj.expected_hash(i) for i in range(obj.num_pieces)]

    def trusted_bytes_served(self, guid: str, cid: str) -> int:
        """Total bytes the infrastructure served to (guid, cid), fleet-wide."""
        return sum(s.served_bytes.get((guid, cid), 0) for s in self.servers)
