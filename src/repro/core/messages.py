"""Control-plane protocol messages.

Peers talk to the control plane over a persistent TCP connection (paper
§3.4); the message vocabulary below mirrors the interactions the paper
describes: login (with secondary-GUID history), content queries, content
registration, RE-ADD recovery after a DN failure, usage reports for
accounting, and connect instructions pushed to both endpoints of a
prospective peer-to-peer transfer.

In the simulation these are plain dataclasses passed through method calls —
the value of modelling them explicitly is that the log records, the
accounting checks, and the failure-recovery logic all operate on the same
payloads a wire protocol would carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Login", "PeerQuery", "PeerCandidate", "PeerQueryResponse",
    "RegisterContent", "UnregisterContent", "ReAddRequest",
    "UsageReport", "ConnectInstruction", "CrashReport",
]


@dataclass(frozen=True)
class Login:
    """Sent when a peer opens its persistent control connection."""

    guid: str
    ip: str
    software_version: str
    uploads_enabled: bool
    #: Last SECONDARY_HISTORY_LENGTH secondary GUIDs, newest first (§6.2).
    secondary_guids: tuple[str, ...] = ()


@dataclass(frozen=True)
class PeerQuery:
    """Ask the control plane for peers holding an object."""

    guid: str
    cid: str
    #: Encrypted authorization token obtained from an edge server (§3.5).
    auth_token: str
    #: Peers already connected (excluded from the response).
    exclude: frozenset[str] = frozenset()


@dataclass(frozen=True)
class PeerCandidate:
    """One peer in a query response."""

    guid: str
    ip: str
    asn: int
    nat_type: str


@dataclass(frozen=True)
class PeerQueryResponse:
    """The control plane's answer to a :class:`PeerQuery`."""

    cid: str
    candidates: tuple[PeerCandidate, ...]


@dataclass(frozen=True)
class RegisterContent:
    """Peer announces it holds a complete, verified copy of an object."""

    guid: str
    cid: str


@dataclass(frozen=True)
class UnregisterContent:
    """Peer announces it no longer serves an object (evicted / uploads off)."""

    guid: str
    cid: str


@dataclass(frozen=True)
class ReAddRequest:
    """CN asks its peers to re-list their stored files after a DN loss (§3.8)."""

    reason: str = "dn-failure"


@dataclass(frozen=True)
class UsageReport:
    """Per-download statistics a peer uploads for billing/monitoring (§3.4).

    ``claimed_*`` fields are what the peer says; the accounting layer
    cross-checks them against trusted edge-server records to filter
    accounting attacks (§3.5, [Aditya et al., NSDI 2012]).
    """

    guid: str
    cid: str
    cp_code: int
    started_at: float
    ended_at: float
    claimed_edge_bytes: int
    claimed_peer_bytes: int
    #: Bytes received from each uploading peer, keyed by uploader GUID.
    per_uploader_bytes: dict[str, int] = field(default_factory=dict)
    outcome: str = "completed"  # completed | failed | aborted
    failure_class: str | None = None  # "system" | "other" | None
    # Per-uploader misbehavior observations, keyed by uploader GUID.  These
    # feed the CN-side reputation engine (repro.adversary.reputation) when
    # the defense is enabled; accepted reports only, so accounting-rejected
    # (inflated) reports can't poison anyone's score.
    #: Hash-verification failures attributed to each uploader.
    per_uploader_corrupt: dict[str, int] = field(default_factory=dict)
    #: Refused or empty connections (grant denied / nothing served).
    per_uploader_refusals: dict[str, int] = field(default_factory=dict)
    #: Serves that ended below the slow-rate floor (slow-loris signature).
    per_uploader_slow: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class ConnectInstruction:
    """Control plane tells a peer to open a connection to another peer (§3.6)."""

    from_guid: str
    to_guid: str
    cid: str


@dataclass(frozen=True)
class CrashReport:
    """Operational report uploaded to a monitoring node (§3.6)."""

    guid: str
    kind: str          # "crash" | "error" | "warning"
    detail: str
    timestamp: float
