"""The NetSession Interface: the client software on each user machine.

Paper §3.4: a background application that runs whenever the user is logged
in, keeps a persistent control connection open, downloads over HTTP(S) from
edge servers and a BitTorrent-like swarming protocol from peers, and —
deliberately — has *no* incentive mechanism: users can disable uploads with
no effect on their own download performance.

§3.9's best practices are implemented here: uploads are rate-limited, each
object is uploaded at most a bounded number of times, uploads back off when
the user's connection is busy, content is only shared if the local user
downloaded it (no proactive caching), and cached objects expire after a
retention period.

A peer's identity is its install-time GUID; every software start draws a
fresh *secondary* GUID (the §6.2 cloning instrumentation).  Disk cloning and
re-imaging are modelled by snapshotting and restoring the identity state —
see :meth:`PeerNode.snapshot_identity` / :meth:`PeerNode.restore_identity`.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.control.channel import ControlChannel
from repro.core.ids import SECONDARY_HISTORY_LENGTH, make_guid, make_secondary_guid
from repro.core.messages import CrashReport
from repro.net.links import AccessLink
from repro.net.nat import NATProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.content import ContentObject
    from repro.core.control.connection_node import ConnectionNode
    from repro.core.swarm import DownloadSession
    from repro.core.system import NetSessionSystem
    from repro.net.geo import City, Country
    from repro.net.topology import AutonomousSystem

__all__ = ["PeerNode", "CacheEntry", "IdentitySnapshot"]


@dataclass
class CacheEntry:
    """A complete object held in the peer's local cache."""

    cid: str
    completed_at: float
    registered: bool = False


@dataclass(frozen=True)
class IdentitySnapshot:
    """Cloneable installation state: what a disk image captures (§6.2)."""

    guid: str
    secondary_history: tuple[str, ...]


class PeerNode:
    """One NetSession installation on one user machine."""

    #: Row index in the columnar population store this node was materialized
    #: from; None for object-mode peers and event-time extras (clones).
    _store_index: int | None = None

    def __init__(
        self,
        system: "NetSessionSystem",
        country: "Country",
        city: "City",
        asys: "AutonomousSystem",
        link: AccessLink,
        nat_profile: NATProfile,
        *,
        uploads_enabled: bool,
        installed_from_cp: int = 0,
        software_version: str | None = None,
        guid: str | None = None,
        rng: random.Random | None = None,
    ):
        self.system = system
        # ``rng`` lets the columnar store materialize a peer with the exact
        # per-peer stream object mode would have given it (replayed from the
        # recorded 64-bit seed) without consuming a fresh system.rng draw.
        self.rng: random.Random = (
            rng if rng is not None else random.Random(system.rng.getrandbits(64))
        )
        self.guid = guid if guid is not None else make_guid(self.rng)
        self.secondary_history: deque[str] = deque(maxlen=SECONDARY_HISTORY_LENGTH)
        # The version string identifies the bundle, as production installers
        # do — the Table 4 analysis attributes peers to providers with it.
        if software_version is None:
            software_version = f"ns-3.6-cp{installed_from_cp}"
        self.software_version = software_version
        self.installed_from_cp = installed_from_cp

        self.country = country
        self.city = city
        self.asys = asys
        self.link = link
        self.nat_profile = nat_profile
        self.uploads_enabled = uploads_enabled
        #: Corporate LAN membership (§5.3); None for residential peers.
        self.lan = None

        self.online = False
        self.ip: str = ""
        self.cn: Optional["ConnectionNode"] = None
        self._refresh_event = None
        #: The §3.8 reliability layer: every CN RPC flows through it, with
        #: retries, CN failover, and recoverable edge-only degradation.
        self.channel = ControlChannel(self)

        #: Per-piece corruption probability when this peer uploads; the
        #: population layer raises it for broken/malicious machines.
        self.piece_corruption_prob = system.config.client.piece_corruption_prob
        #: If True, this peer inflates its usage reports (accounting attack,
        #: §6.2); the accounting service should filter its reports.
        self.accounting_attacker = False
        #: Misbehavior profile (see :data:`repro.adversary.PROFILES`), or
        #: None for an honest peer.  Assigned by the adversary layer; the
        #: slow_loris throttle factor rides along with that profile.
        self.adversary_profile: Optional[str] = None
        self.adversary_slow_factor = 1.0
        #: Device tier (a :class:`repro.workload.devices.DeviceClass`), or
        #: None for the homogeneous-desktop default.  Set by population
        #: synthesis when ``PopulationConfig.device`` declares a mix; caps
        #: the upload rate and the cache budget, and drives scheduling.
        self.device = None

        self.cache: dict[str, CacheEntry] = {}
        self.uploads_done: dict[str, int] = {}
        self.active_upload_count = 0
        self.upload_flows: set = set()  # live Flow objects serving others
        self.link_busy = False

        self.sessions: dict[str, "DownloadSession"] = {}
        self._paused_for_offline: list[str] = []

        # Counters for tests and the §6.2 analyses.
        self.boot_count = 0
        self.setting_changes = 0
        #: Times the NAT in front of this machine re-assigned its mapping.
        self.nat_rebinds = 0

    # ------------------------------------------------------ locality shortcuts

    @property
    def asn(self) -> int:
        """The AS number this peer currently attaches from."""
        return self.asys.asn

    @property
    def country_code(self) -> str:
        """ISO country code of the current location."""
        return self.country.code

    @property
    def geo_region(self) -> str:
        """Geographic region (Table 2 regions) of the current location."""
        return self.country.region

    @property
    def network_region(self) -> str:
        """Control-plane network region the peer maps to."""
        return self.asys.network_region

    @property
    def lan_id(self) -> str:
        """The peer's LAN site id, or "" for residential peers."""
        return self.lan.site_id if self.lan is not None else ""

    @property
    def device_class(self) -> str:
        """Device-tier name ("desktop" for the homogeneous default)."""
        return self.device.name if self.device is not None else "desktop"

    # ---------------------------------------------------------------- lifecycle

    def boot(self) -> None:
        """A software start: draw a fresh secondary GUID (§6.2) and go online.

        Booting while online models a machine restart: the old session ends
        first (downloads pause and resume across the restart, §3.3).
        """
        if self.online:
            self.go_offline()
        self.boot_count += 1
        self.secondary_history.appendleft(make_secondary_guid(self.rng))
        self.go_online()

    def go_online(self) -> None:
        """Connect: obtain an IP, open the control connection, resume work.

        If no CN is reachable (total control-plane failure, §3.8) the peer
        still comes online — downloads fall back to edge-only while the
        channel's breaker/probe machinery keeps trying to get back in.
        """
        if self.online:
            return
        self.online = True
        self.ip = self.system.allocator.assign(self.asys, self.country, self.city)
        self.channel.connect()
        # Refresh directory registrations well inside the DN soft-state TTL
        # (registrations expire unless refreshed — §3.8 soft state).
        ttl = self.system.config.control_plane.registration_ttl
        self._refresh_event = self.system.sim.every(
            ttl / 3.0, self._refresh_registrations
        )
        resumable = self._paused_for_offline
        self._paused_for_offline = []
        for cid in resumable:
            session = self.sessions.get(cid)
            if session is not None and session.state == "paused":
                session.resume()

    def _refresh_registrations(self) -> None:
        """Periodic soft-state refresh of this peer's directory entries.

        Routed through the channel: if this peer's CN has died, the refresh
        fails over to a live CN (re-opening the control connection there)
        instead of silently no-oping until the registrations expire.
        """
        if not self.online:
            return
        self.channel.refresh_registrations()

    def go_offline(self) -> None:
        """Disconnect: pause downloads, kill uploads, close the control conn."""
        if not self.online:
            return
        if self._refresh_event is not None:
            self._refresh_event.cancel()
            self._refresh_event = None
        # One settlement for the whole disconnect burst (pauses tear down
        # sessions, each upload abort frees shared links).
        with self.system.flows.batch():
            for session in list(self.sessions.values()):
                if session.state == "active":
                    session.pause()
                    self._paused_for_offline.append(session.obj.cid)
            # Uploads die with the connection: notify each downloader's
            # session so in-flight pieces are credited/requeued and
            # replacements sought.
            for flow in list(self.upload_flows):
                conn = flow.meta
                if conn is not None and hasattr(conn, "handle_uploader_offline"):
                    conn.handle_uploader_offline()
                else:
                    self.system.flows.abort_flow(flow)
        self.upload_flows.clear()
        self.active_upload_count = 0
        self.channel.reset()
        if self.cn is not None:
            self.cn.logout(self)
            self.cn = None
        self.online = False
        self.ip = ""

    def reconnect(self) -> None:
        """Re-open the control connection after a CN failure (§3.8)."""
        if not self.online:
            return
        self.channel.reconnect()

    def churn(self, downtime: float) -> None:
        """Knock an online peer offline for ``downtime`` seconds.

        The fault layer's churn storms use this: the machine drops exactly
        as a real disconnect does (downloads pause, uploads die, directory
        entries are withdrawn) and comes back through the normal
        :meth:`go_online` path after the gap.
        """
        if downtime < 0:
            raise ValueError(f"downtime must be non-negative, got {downtime}")
        if not self.online:
            return
        self.go_offline()
        self.system.sim.schedule(downtime, self.go_online)

    def rebind_nat(self, profile: NATProfile) -> None:
        """The NAT in front of this peer re-assigned its mapping.

        Existing transfers survive (established mappings persist); new
        hole-punch attempts see the new behaviour.  The directory keeps the
        stale reported type until the next registration refresh — the same
        window of inconsistency the production system tolerates.
        """
        self.nat_profile = profile
        self.nat_rebinds += 1

    # ----------------------------------------------------------------- downloads

    def start_download(self, obj: "ContentObject") -> "DownloadSession":
        """Begin downloading an object via the Download Manager (§3.3)."""
        from repro.core.swarm import DownloadSession

        if not self.online:
            raise RuntimeError(f"peer {self.guid[:8]} is offline")
        if obj.cid in self.sessions:
            return self.sessions[obj.cid]
        session = DownloadSession(self.system, self, obj)
        self.sessions[obj.cid] = session
        session.start()
        return session

    def session_finished(self, session: "DownloadSession") -> None:
        """Callback from a session reaching a terminal state."""
        self.sessions.pop(session.obj.cid, None)

    def add_to_cache(self, cid: str) -> None:
        """Cache a completed object; register it and schedule expiry (§3.9)."""
        now = self.system.sim.now
        budget = self.device.cache_objects if self.device is not None else None
        if budget is not None and cid not in self.cache:
            # Storage-poor tiers hold only `cache_objects` entries: evict
            # the oldest (ties broken by cid, so both stores agree).
            while len(self.cache) >= budget:
                oldest = min(self.cache.values(),
                             key=lambda e: (e.completed_at, e.cid))
                self._evict(oldest.cid)
        self.cache[cid] = CacheEntry(cid=cid, completed_at=now)
        retention = self.system.config.client.cache_retention
        self.system.sim.schedule(retention, lambda: self._evict(cid))
        if self.uploads_enabled:
            self.channel.register(cid, on_registered=lambda: self._mark_registered(cid))

    def _mark_registered(self, cid: str) -> None:
        entry = self.cache.get(cid)
        if entry is not None:
            entry.registered = True

    def _evict(self, cid: str) -> None:
        entry = self.cache.pop(cid, None)
        if entry is not None and entry.registered:
            if self.adversary_profile == "stale_advertiser":
                # Keeps advertising content it no longer holds: the entry
                # lives until the soft-state TTL reaps it, and every grant
                # attempt against it is an empty connection.
                return
            self.channel.unregister(cid)

    def has_complete(self, cid: str) -> bool:
        """Does the local cache hold a verified complete copy?"""
        return cid in self.cache

    # ------------------------------------------------------------------ uploads

    def upload_budget_left(self, cid: str) -> int:
        """Remaining upload sessions allowed for an object (§3.9 cap)."""
        cap = self.system.config.client.max_uploads_per_object
        return max(0, cap - self.uploads_done.get(cid, 0))

    def can_upload(self, cid: str) -> bool:
        """Would this peer currently grant an upload of ``cid``?"""
        return (
            self.online
            and self.uploads_enabled
            and self.has_complete(cid)
            and self.active_upload_count < self.system.config.client.max_upload_connections
            and self.upload_budget_left(cid) > 0
        )

    def try_grant_upload(self, cid: str) -> bool:
        """Reserve an upload slot for ``cid``; True if granted.

        Counts against both the global connection limit and the per-object
        upload budget.  When the budget hits zero the peer withdraws the
        object from the directory.
        """
        if self.adversary_profile == "free_rider":
            # Registers with the directory but refuses every grant: the
            # downloader burns a candidate slot and records a refusal.
            return False
        if not self.can_upload(cid):
            return False
        self.active_upload_count += 1
        self.uploads_done[cid] = self.uploads_done.get(cid, 0) + 1
        if self.upload_budget_left(cid) == 0:
            self.channel.unregister(cid)
        return True

    def release_upload(self) -> None:
        """Free an upload slot (connection closed)."""
        if self.active_upload_count > 0:
            self.active_upload_count -= 1

    def upload_rate_cap(self) -> float:
        """Current per-flow upload rate cap in bytes/s (§3.9 throttling)."""
        cfg = self.system.config.client
        fraction = cfg.backoff_rate_fraction if self.link_busy else cfg.upload_rate_fraction
        # adversary_slow_factor is 1.0 for honest peers; a slow-loris peer
        # trickles at a tiny fraction of its honest cap, pinning the
        # downloader's connection slot.
        rate = fraction * self.link.up_bps * self.adversary_slow_factor
        if self.device is not None and self.device.uplink_cap_bps is not None:
            # Device-tier budget (router QoS carve-out, cellular friendliness)
            # caps the throttled rate, never the other way around.
            rate = min(rate, self.device.uplink_cap_bps)
        return max(1.0, rate)

    def set_link_busy(self, busy: bool) -> None:
        """User traffic appeared/cleared on the link: re-throttle uploads."""
        if busy == self.link_busy:
            return
        self.link_busy = busy
        cap = self.upload_rate_cap()
        with self.system.flows.batch():
            for flow in self.upload_flows:
                if flow.active:
                    self.system.flows.set_cap(flow, cap)

    # ---------------------------------------------------------------- settings

    def set_uploads_enabled(self, enabled: bool) -> None:
        """The user toggles peer uploads in the preferences UI (§3.4).

        Disabling withdraws all directory registrations; in-flight uploads
        are allowed to finish (NetSession does not yank bytes mid-transfer).
        Re-enabling re-registers the cache.
        """
        if enabled == self.uploads_enabled:
            return
        self.uploads_enabled = enabled
        self.setting_changes += 1
        if not self.online:
            return
        if enabled:
            for cid in self.shareable_cids():
                self.channel.register(
                    cid, on_registered=lambda c=cid: self._mark_registered(c)
                )
        else:
            for entry in self.cache.values():
                if entry.registered:
                    self.channel.unregister(entry.cid)
                    entry.registered = False

    # ------------------------------------------------------------ control plane

    def shareable_cids(self) -> list[str]:
        """Objects this peer would serve right now (directory contents)."""
        if not self.uploads_enabled:
            return []
        return [cid for cid in self.cache if self.upload_budget_left(cid) > 0]

    def handle_re_add(self) -> list[str]:
        """Answer a RE-ADD broadcast: re-list stored files (§3.8)."""
        return self.shareable_cids()

    def report_crash(self, detail: str = "segfault") -> None:
        """Upload a crash report to the monitoring nodes (§3.6)."""
        self.system.control.monitoring.report(CrashReport(
            guid=self.guid, kind="crash", detail=detail,
            timestamp=self.system.sim.now,
        ))

    # ----------------------------------------------------------------- mobility

    def move_to(self, country: "Country", city: "City", asys: "AutonomousSystem") -> None:
        """Relocate the machine (laptop commute, travel, VPN exit change).

        Implemented as the real event sequence: drop connectivity at the old
        location, change attachment, reconnect — which produces exactly the
        login-record pattern the §6.2 mobility analysis keys on.
        """
        was_online = self.online
        if was_online:
            self.go_offline()
        self.country = country
        self.city = city
        self.asys = asys
        if was_online:
            self.go_online()

    # ----------------------------------------------------------------- cloning

    def snapshot_identity(self) -> IdentitySnapshot:
        """Capture what a disk image would capture (primary GUID + history)."""
        return IdentitySnapshot(
            guid=self.guid,
            secondary_history=tuple(self.secondary_history),
        )

    def restore_identity(self, snapshot: IdentitySnapshot) -> None:
        """Roll this installation back to an imaged state (re-imaging, §6.2)."""
        self.guid = snapshot.guid
        self.secondary_history = deque(
            snapshot.secondary_history, maxlen=SECONDARY_HISTORY_LENGTH
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "online" if self.online else "offline"
        return f"<PeerNode {self.guid[:8]} {self.country_code}/AS{self.asn} {state}>"
