"""Predictive content placement — the feature NetSession deliberately lacks.

Paper §5.2: "NetSession does not use predictive caching — i.e., a peer only
downloads a file when it is requested by the local user."  That design keeps
peers unobtrusive (§3.9) but means every region cold-starts each popular
object through the infrastructure.

This extension implements the alternative so it can be measured: a
control-plane policy that watches demand, finds regions where a hot object
has too few registered copies, and asks idle, willing peers there to
prefetch it.  Prefetch downloads go through the normal Download Manager and
are flagged in the logs (``DownloadRecord.prefetch``), so the analyses can
separate user demand from placement traffic — exactly what the operator
would need to bill it differently.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.content import ContentObject
    from repro.core.system import NetSessionSystem

__all__ = ["PlacementConfig", "PredictivePlacer"]


@dataclass(frozen=True)
class PlacementConfig:
    """Knobs for the predictive-placement policy."""

    #: How often the policy re-evaluates demand, in seconds.
    interval: float = 3600.0
    #: Desired online registered copies per (hot object, network region).
    copies_target: int = 8
    #: Demand threshold: an object is "hot" once it has this many downloads
    #: in the trace so far.
    hot_threshold: int = 3
    #: At most this many prefetches started per evaluation, fleet-wide
    #: (placement must not swamp user traffic).
    max_prefetches_per_tick: int = 10
    #: Device class the operator steers prefetches toward (the always-on
    #: smartrouter fleet, typically).  None keeps the class-blind scan.
    prefer_class: str | None = None
    #: With ``prefer_class`` set: True places *only* on that class (strict
    #: operator carve-out); False prefers it but falls back to anyone.
    restrict_to_class: bool = False

    def __post_init__(self):
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.copies_target <= 0:
            raise ValueError("copies_target must be positive")
        if self.restrict_to_class and self.prefer_class is None:
            raise ValueError("restrict_to_class requires prefer_class")


class PredictivePlacer:
    """The control-plane-side placement loop."""

    def __init__(
        self,
        system: "NetSessionSystem",
        objects: list["ContentObject"],
        config: PlacementConfig | None = None,
    ):
        self.system = system
        self.config = config if config is not None else PlacementConfig()
        self.objects = [o for o in objects if o.p2p_enabled]
        self.prefetches_started = 0
        self._event = None

    def start(self) -> None:
        """Arm the periodic evaluation."""
        if self._event is None or not self._event.pending:
            self._event = self.system.sim.every(self.config.interval, self.tick)

    def stop(self) -> None:
        """Disarm the policy."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    # --------------------------------------------------------------- policy

    def _should_run(self) -> bool:
        """Policy hook: may this evaluation act now?

        The base placer always runs; subclasses gate it (e.g. the VoD
        off-peak placer only pushes during the demand trough).
        """
        return True

    def tick(self) -> int:
        """One evaluation: find deficits, start prefetches.  Returns count."""
        if not self._should_run():
            return 0
        cfg = self.config
        demand = Counter(
            rec.cid for rec in self.system.logstore.downloads
            if rec.p2p_enabled and not rec.prefetch
        )
        hot = [obj for obj in self.objects
               if demand.get(obj.cid, 0) >= cfg.hot_threshold]
        if not hot:
            return 0
        hot.sort(key=lambda o: demand.get(o.cid, 0), reverse=True)

        started = 0
        budget = cfg.max_prefetches_per_tick
        for obj in hot:
            if started >= budget:
                break
            deficits = self._region_deficits(obj)
            for region, deficit in deficits:
                while deficit > 0 and started < budget:
                    peer = self._pick_prefetcher(obj, region)
                    if peer is None:
                        break
                    session = peer.start_download(obj)
                    session.is_prefetch = True
                    started += 1
                    deficit -= 1
        self.prefetches_started += started
        return started

    def _region_deficits(self, obj: "ContentObject") -> list[tuple[str, int]]:
        """(region, missing copies) for regions below the copies target."""
        cfg = self.config
        out = []
        for region, dns in self.system.control.dns_by_region.items():
            copies = sum(dn.copy_count(obj.cid) for dn in dns if dn.alive)
            if copies < cfg.copies_target:
                out.append((region, cfg.copies_target - copies))
        # Fill the emptiest regions first.
        out.sort(key=lambda item: -item[1])
        return out

    def _pick_prefetcher(self, obj: "ContentObject", region: str):
        """An idle, online, upload-enabled peer in ``region`` lacking ``obj``.

        With ``prefer_class`` set, a peer of that device class wins over
        the first eligible peer of any other class; ``restrict_to_class``
        drops the fallback entirely (operator-controlled smartrouter
        placement — §5.2's missing feature, scoped to the fleet the
        operator actually controls).
        """
        prefer = self.config.prefer_class
        fallback = None
        for peer in self.system.peer_universe():
            if (
                peer.online
                and peer.uploads_enabled
                and peer.network_region == region
                and not peer.sessions            # idle
                and not peer.has_complete(obj.cid)
            ):
                if prefer is None or peer.device_class == prefer:
                    return peer
                if fallback is None and not self.config.restrict_to_class:
                    fallback = peer
        return fallback
