"""Locality-aware peer selection (paper §3.7).

The DN chooses peers at two levels of locality.  Level one is structural:
a peer's query only ever reaches its *local* DNs, so candidates come from
the same control-plane network region.  Level two — implemented here — works
on nested geolocation sets: every registered peer belongs simultaneously to
its specific AS, its country, a larger geographic region, and the universal
World set.  Selection starts from the most specific set the querying peer
shares and widens until enough suitable peers are found, with three extra
mechanisms from the paper:

* **connectivity filter** — only peers whose (STUN-reported) NAT type is
  hole-punch-compatible with the querier's are returned;
* **diversity** — occasionally a peer is drawn from a less specific set,
  with probability proportional to the specificity of the set being skipped;
* **fairness rotation** — a selected peer moves to the end of the rotation
  list so popular content spreads load across its holders (the caller
  applies the rotation via ``DatabaseNode.rotate_to_end``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.nat import NATType, can_connect

if TYPE_CHECKING:  # pragma: no cover - import would be circular at runtime
    from repro.core.control.database_node import PeerRegistration

__all__ = ["QueryContext", "device_rank_key", "select_peers",
           "specificity_level"]

#: Specificity levels, most specific first.  Same-LAN peers (§5.3's
#: corporate-network case) beat everything: bytes never leave the building.
_LEVEL_LAN = 4
_LEVEL_AS = 3
_LEVEL_COUNTRY = 2
_LEVEL_REGION = 1
_LEVEL_WORLD = 0


@dataclass(frozen=True)
class QueryContext:
    """Locality and connectivity of the peer asking for candidates."""

    guid: str
    asn: int
    country_code: str
    region: str
    nat_reported: str
    lan_id: str = ""


def specificity_level(query: QueryContext, reg: "PeerRegistration") -> int:
    """The most specific shared locality set between querier and candidate."""
    if query.lan_id and getattr(reg, "lan_id", "") == query.lan_id:
        return _LEVEL_LAN
    if reg.asn == query.asn:
        return _LEVEL_AS
    if reg.country_code == query.country_code:
        return _LEVEL_COUNTRY
    if reg.region == query.region:
        return _LEVEL_REGION
    return _LEVEL_WORLD


def device_rank_key(weights: dict, inner=None):
    """Class-aware rank key: device-tier weight first, inner score second.

    ``weights`` maps device-class names to ranking weights (an operator
    boosting its always-on smartrouter fleet, say); an ``inner`` key — the
    reputation score, typically — breaks ties within a class.  Ranking
    consumes no RNG, so installing it never moves an unrelated draw.
    """
    if inner is None:
        return lambda reg: (weights.get(getattr(reg, "device_class",
                                                "desktop"), 0.0), 0.0)
    return lambda reg: (weights.get(getattr(reg, "device_class",
                                            "desktop"), 0.0), inner(reg))


def select_peers(
    registrations: list["PeerRegistration"],
    query: QueryContext,
    count: int,
    rng: random.Random,
    *,
    exclude: frozenset[str] = frozenset(),
    diversity_probability: float = 0.10,
    locality_aware: bool = True,
    candidate_filter: Optional[
        Callable[[QueryContext, "PeerRegistration"], bool]] = None,
    rank_key: Optional[Callable[["PeerRegistration"], float]] = None,
) -> list["PeerRegistration"]:
    """Choose up to ``count`` candidates for ``query`` from ``registrations``.

    ``registrations`` must be in the DN's rotation order; within each
    locality set that order is preserved, which is what makes the caller's
    rotate-to-end fairness effective.  With ``locality_aware=False`` the
    nested-set logic is bypassed and candidates are drawn uniformly — the
    ablation baseline for the §6.1 locality claims.

    ``candidate_filter`` is the serving-policy hook (see
    :mod:`repro.vod.policy`): when given, a registration is only eligible
    if ``candidate_filter(query, reg)`` is true.  The filter runs before
    any RNG is consulted, so a pass-everything filter (or None) leaves the
    selection — and its random draws — bit-identical.

    ``rank_key`` is the reputation hook (see
    :mod:`repro.adversary.reputation`): when given, candidates *within each
    locality set* are stably sorted by descending key before selection, so
    high-contribution peers are preferred while locality still dominates
    and ties keep the DN's fairness rotation order.  Sorting consumes no
    RNG; ``None`` (the default) leaves the order — and therefore every
    draw — untouched.
    """
    if count <= 0:
        return []

    try:
        my_nat = NATType(query.nat_reported)
    except ValueError:
        my_nat = NATType.PORT_RESTRICTED  # conservative default

    eligible: list["PeerRegistration"] = []
    for reg in registrations:
        if reg.guid == query.guid or reg.guid in exclude:
            continue
        if not reg.uploads_enabled:
            continue
        if candidate_filter is not None and not candidate_filter(query, reg):
            continue
        try:
            peer_nat = NATType(reg.nat_reported)
        except ValueError:
            peer_nat = NATType.PORT_RESTRICTED
        if not can_connect(my_nat, peer_nat):
            continue
        eligible.append(reg)

    if not eligible:
        return []

    if not locality_aware:
        if rank_key is not None:
            ranked = sorted(eligible, key=rank_key, reverse=True)
            return ranked[:count]
        if len(eligible) <= count:
            return list(eligible)
        return rng.sample(eligible, count)

    buckets: dict[int, list["PeerRegistration"]] = {
        _LEVEL_LAN: [], _LEVEL_AS: [], _LEVEL_COUNTRY: [], _LEVEL_REGION: [],
        _LEVEL_WORLD: [],
    }
    for reg in eligible:
        buckets[specificity_level(query, reg)].append(reg)
    if rank_key is not None:
        for bucket in buckets.values():
            bucket.sort(key=rank_key, reverse=True)

    chosen: list["PeerRegistration"] = []
    chosen_guids: set[str] = set()
    levels = (_LEVEL_LAN, _LEVEL_AS, _LEVEL_COUNTRY, _LEVEL_REGION,
              _LEVEL_WORLD)

    for i, level in enumerate(levels):
        if len(chosen) >= count:
            break
        for reg in buckets[level]:
            if len(chosen) >= count:
                break
            if reg.guid in chosen_guids:
                continue
            # Diversity: skip this specific candidate with probability
            # proportional to the specificity of its set, drawing instead
            # from a strictly less specific set (if one has spare peers).
            if level > _LEVEL_WORLD and rng.random() < (
                diversity_probability * level / _LEVEL_LAN
            ):
                substitute = _draw_less_specific(
                    buckets, levels[i + 1:], chosen_guids, rng
                )
                if substitute is not None:
                    chosen.append(substitute)
                    chosen_guids.add(substitute.guid)
                    continue
            chosen.append(reg)
            chosen_guids.add(reg.guid)

    return chosen


def _draw_less_specific(
    buckets: dict[int, list[PeerRegistration]],
    lower_levels: tuple[int, ...],
    chosen_guids: set[str],
    rng: random.Random,
) -> PeerRegistration | None:
    """Pick one not-yet-chosen peer from any strictly less specific set."""
    pool = [
        reg
        for level in lower_levels
        for reg in buckets[level]
        if reg.guid not in chosen_guids
    ]
    if not pool:
        return None
    return rng.choice(pool)
