"""Video streaming over NetSession (paper §3.4's minor delivery mode).

"NetSession also supports video streaming, but it currently does not serve
much video traffic because of the requirement to install client software."

Streaming reuses the hybrid download engine unchanged — the work pool is
consumed front-to-back, which approximates the sequential fetch order a
player needs — and adds a playback model on top: the player starts once an
initial buffer is filled, consumes bytes at the video bitrate, and stalls
(rebuffers) when playback catches up with the contiguous downloaded prefix.

QoE metrics exposed: startup delay, rebuffer count, total stall time — the
quantities a LiveSky-style streaming study (paper §7) would measure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.content import ContentObject
from repro.core.swarm import Chunk, DownloadSession, EdgeConnection

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.peer import PeerNode
    from repro.core.system import NetSessionSystem

__all__ = ["StreamingSession", "start_streaming"]

#: Peer connections fetch at most this many pieces per batch in a stream —
#: small batches keep the in-order frontier moving even on slow uplinks.
PEER_BATCH_PIECES = 3
#: The infrastructure connection also uses bounded batches while streaming:
#: pieces are only credited when a batch completes, so the playback prefix
#: needs frequent, small deliveries.
EDGE_BATCH_PIECES = 4
#: The next this-many in-order pieces are reserved for the infrastructure —
#: peers prefetch beyond the window, so a slow uplink can never hold the
#: playback frontier (how production p2p video players split urgent vs
#: prefetch segments).
URGENT_WINDOW_PIECES = 4
#: The player hands the head piece to the infrastructure when a peer's ETA
#: for it exceeds this many seconds (or a quarter of the buffer, whichever
#: is larger) — the frontier is too precious to wait on a slow uplink.
URGENCY_ETA_FLOOR = 5.0


class StreamingSession(DownloadSession):
    """A download with an attached playback process."""

    def __init__(
        self,
        system: "NetSessionSystem",
        peer: "PeerNode",
        obj: ContentObject,
        *,
        bitrate: float,
        startup_buffer_s: float = 10.0,
        rebuffer_resume_s: float = 5.0,
        playback_tick_s: float = 1.0,
    ):
        """``bitrate`` is the video's consumption rate in *bytes* per second."""
        if bitrate <= 0:
            raise ValueError("bitrate must be positive")
        if startup_buffer_s <= 0 or rebuffer_resume_s <= 0:
            raise ValueError("buffer thresholds must be positive")
        super().__init__(system, peer, obj)
        self.bitrate = bitrate
        self.startup_buffer_s = startup_buffer_s
        self.rebuffer_resume_s = rebuffer_resume_s
        self.playback_tick_s = playback_tick_s

        self.playing = False
        self.playback_started_at: Optional[float] = None
        self.played_bytes = 0.0
        self.rebuffer_events = 0
        self.rebuffer_time = 0.0
        self.playback_finished_at: Optional[float] = None
        self._stall_since: Optional[float] = None
        self._tick_event = None

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Begin the transfer and arm the playback clock."""
        super().start()
        if self.state == "active":
            self._tick_event = self.system.sim.every(
                self.playback_tick_s, self._playback_tick
            )
            self.system.vod.streams_started += 1

    # -------------------------------------------------- in-order scheduling

    def take_chunk(self, conn) -> Optional[Chunk]:
        """Hand out work in play order with an edge-reserved urgent window.

        The infrastructure serves the pool head (the pieces the player
        needs next) in small batches — small because pieces are only
        credited when a batch completes.  Peers prefetch *beyond* the
        urgent window, so a slow uplink can never stall the frontier.
        """
        if not self.piece_pool:
            return None
        if isinstance(conn, EdgeConnection):
            thin = (self.playback_started_at is None
                    or self.buffered_seconds() < self.startup_buffer_s)
            limit = 2 if thin else EDGE_BATCH_PIECES
            batch, self.piece_pool = (self.piece_pool[:limit],
                                      self.piece_pool[limit:])
            return Chunk(batch)
        # End-of-file tail shrink: with fewer than 2x the urgent window
        # left, a full-size reservation would return None to every peer and
        # starve the swarm for the whole tail — the edge would serve the
        # end of each stream alone.  Shrink the reserved window to at most
        # half the remaining pool so peers keep working the tail (the edge
        # can still steal the head back via the urgency path).
        window = min(URGENT_WINDOW_PIECES, len(self.piece_pool) // 2)
        if len(self.piece_pool) <= window:
            return None  # tail is the edge's job
        batch = self.piece_pool[window:window + PEER_BATCH_PIECES]
        del self.piece_pool[window:window + PEER_BATCH_PIECES]
        return Chunk(batch)

    def requeue_pieces(self, pieces: list[int]) -> None:
        """Requeue in play order: returned pieces go to the pool *front*."""
        todo = sorted(p for p in pieces if p not in self.received)
        if todo:
            self.piece_pool[:0] = todo
            # Keep the whole pool in play order (cheap: pools are small).
            self.piece_pool.sort()

    def _backstop_tick(self) -> None:
        """Streaming-aware backstop: protect the buffer before offloading.

        While the buffer is thin, the edge connection runs unthrottled so
        startup and recovery are fast; once the buffer is comfortable the
        normal offload policy applies.
        """
        if self.buffered_seconds() < 2 * self.startup_buffer_s:
            if self.state == "active" and self.edge_conn is not None:
                self.edge_conn.set_cap(None)
                self._steal_stuck_head()
            return
        super()._backstop_tick()
        # The edge alone feeds the urgent window, so it must always outrun
        # playback — never throttle it below a safety multiple of the
        # bitrate, even when the peers look plentiful.
        floor = 2.0 * self.bitrate
        if (self.state == "active" and self.edge_conn is not None
                and self.edge_cap is not None and self.edge_cap < floor):
            self.edge_conn.set_cap(floor)

    def _steal_stuck_head(self) -> None:
        """Reassign imminent pieces to the edge when peers would stall them.

        Scans the next few missing pieces (the playback frontier); if any
        is in flight on a peer whose ETA is worse than the urgency budget,
        that connection is closed — its pieces requeue at the pool front,
        where the edge picks them up within a batch or two.  At most one
        connection is stolen per tick to avoid churn storms.
        """
        if self.state != "active" or self.edge_conn is None:
            return
        # Peer ETAs below come from live rates: settle pending mutations.
        self.system.flows.flush()
        frontier: list[int] = []
        for index in range(self.obj.num_pieces):
            if index not in self.received:
                frontier.append(index)
                if len(frontier) >= URGENT_WINDOW_PIECES:
                    break
        if not frontier:
            return
        budget = max(URGENCY_ETA_FLOOR, 0.25 * self.buffered_seconds())
        urgent = set(frontier)
        for conn in list(self.peer_conns):
            if conn.closed or conn.chunk is None:
                continue
            if urgent.isdisjoint(conn.chunk.pieces):
                continue
            rate = conn.flow.rate if conn.flow is not None and conn.flow.active else 0.0
            eta = (conn.flow.remaining / rate) if rate > 0 else float("inf")
            if eta > budget:
                conn.close(credit_partial=True)
                if self.state == "active" and self.edge_conn is not None \
                        and not self.edge_conn.busy:
                    self.edge_conn.pull_next()
                return

    def _rebalance_for_buffer(self) -> None:
        """Protect head-fetch bandwidth while the buffer is thin.

        The downlink is shared max-min across all connections; with dozens
        of peer flows the urgent in-order fetch would crawl.  While the
        buffer is below the comfort level, peer flows are collectively
        capped to a minority of the downlink so the infrastructure (serving
        the playback frontier) gets the rest; once the buffer is
        comfortable the caps return to the uploaders\' normal limits.
        """
        live = [c for c in self.peer_conns
                if not c.closed and c.flow is not None and c.flow.active]
        if not live:
            return
        thin = self.buffered_seconds() < 2 * self.startup_buffer_s
        down = self.peer.link.down_bps
        for conn in live:
            base = conn.uploader.upload_rate_cap()
            if thin:
                cap = min(base, max(1.0, 0.4 * down / len(live)))
            else:
                cap = base
            if conn.flow.cap != cap:
                self.system.flows.set_cap(conn.flow, cap)

    # -------------------------------------------------------------- playback

    def contiguous_bytes(self) -> int:
        """Bytes of the contiguous verified prefix (what a player can use)."""
        total = 0
        for index in range(self.obj.num_pieces):
            if index not in self.received:
                break
            total += self.obj.piece_size(index)
        return total

    def buffered_seconds(self) -> float:
        """Playable seconds ahead of the playhead."""
        return max(0.0, (self.contiguous_bytes() - self.played_bytes)
                   / self.bitrate)

    def _playback_tick(self) -> None:
        now = self.system.sim.now
        if self.playback_finished_at is not None:
            return
        if self.state in ("failed", "aborted"):
            self._stop_clock()
            return

        prefix = self.contiguous_bytes()
        if self.state == "active":
            self._rebalance_for_buffer()
            # React to head-of-line stalls at playback-tick granularity —
            # a slow peer holding the next-to-play piece is stolen to the
            # edge before the buffer drains, not after.
            self._steal_stuck_head()
        if not self.playing:
            threshold = (self.startup_buffer_s if self.playback_started_at is None
                         else self.rebuffer_resume_s)
            if prefix - self.played_bytes >= threshold * self.bitrate or (
                prefix >= self.obj.size and self.played_bytes < self.obj.size
            ):
                self.playing = True
                if self.playback_started_at is None:
                    self.playback_started_at = now
                if self._stall_since is not None:
                    stalled = now - self._stall_since
                    self.rebuffer_time += stalled
                    self.system.vod.rebuffer_seconds += stalled
                    self._stall_since = None
            return

        # Consume one tick of video.
        budget = self.bitrate * self.playback_tick_s
        available = prefix - self.played_bytes
        self.played_bytes += max(0.0, min(budget, available))
        if self.played_bytes >= self.obj.size - 0.5:
            self.played_bytes = float(self.obj.size)
            self.playback_finished_at = now
            self.system.vod.playbacks_finished += 1
            self._stop_clock()
        elif available < budget:
            # Stall mid-video: played out the prefix, now rebuffering.
            self.playing = False
            self.rebuffer_events += 1
            self.system.vod.rebuffer_events += 1
            self._stall_since = now

    def _stop_clock(self) -> None:
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    # --------------------------------------------------------- viewer actions

    def skip_ahead(self, seconds: float) -> None:
        """Viewer seek: jump the playhead up to ``seconds`` of video ahead.

        Seeking past the contiguous prefix drops the player into a rebuffer
        at the new position (the in-order pool catches up naturally).  The
        playhead never lands inside the final second of the video, so a
        seeked session still finishes through the normal tick path.
        """
        if seconds <= 0 or self.playback_finished_at is not None:
            return
        ceiling = float(self.obj.size) - self.bitrate * self.playback_tick_s
        target = min(self.played_bytes + seconds * self.bitrate, ceiling)
        if target > self.played_bytes:
            self.played_bytes = target

    def stop_playback(self) -> None:
        """Viewer closes the player without cancelling the transfer.

        A partial watch after the download already completed: aborting the
        session would be a no-op (the state is terminal), so the playback
        clock is stopped directly and the session never counts as finished.
        """
        if self.playback_finished_at is not None:
            return
        self.playing = False
        self._stall_since = None
        self._stop_clock()

    # --------------------------------------------------------------- metrics

    @property
    def startup_delay(self) -> Optional[float]:
        """Seconds from request to first frame; None if never started."""
        if self.playback_started_at is None:
            return None
        return self.playback_started_at - self.started_at

    def _record_extras(self) -> dict:
        """Streaming QoE fields for the CN-side download record.

        Written when the *transfer* ends; stalls can only begin while the
        transfer is live (a complete prefix never drains), so the rebuffer
        totals are final up to a stall still resolving at record time.
        ``watched_fraction`` is the playhead position at record time —
        final for aborted sessions, a lower bound for completed downloads
        whose playback is still running.
        """
        return {
            "streamed": True,
            "startup_delay": self.startup_delay,
            "rebuffer_events": self.rebuffer_events,
            "rebuffer_time": self.rebuffer_time,
            "watched_fraction": min(1.0, self.played_bytes / self.obj.size),
            "bitrate": self.bitrate,
        }

    def qoe_report(self) -> dict[str, float]:
        """The streaming QoE summary."""
        return {
            "startup_delay": self.startup_delay if self.startup_delay is not None
            else float("inf"),
            "rebuffer_events": float(self.rebuffer_events),
            "rebuffer_time": self.rebuffer_time,
            "peer_fraction": self.peer_fraction,
            "finished": float(self.playback_finished_at is not None),
        }


def start_streaming(
    peer: "PeerNode",
    obj: ContentObject,
    *,
    bitrate: float,
    startup_buffer_s: float = 10.0,
) -> StreamingSession:
    """Begin streaming ``obj`` on ``peer`` through the hybrid engine.

    Follows the same session-registration path as the Download Manager, so
    pause/resume, logging, and accounting all behave identically.
    """
    if not peer.online:
        raise RuntimeError(f"peer {peer.guid[:8]} is offline")
    if obj.cid in peer.sessions:
        session = peer.sessions[obj.cid]
        if isinstance(session, StreamingSession):
            return session
        raise RuntimeError(f"object {obj.cid} already downloading as a file")
    session = StreamingSession(
        peer.system, peer, obj,
        bitrate=bitrate, startup_buffer_s=startup_buffer_s,
    )
    peer.sessions[obj.cid] = session
    session.start()
    return session
