"""The download engine: parallel edge + swarming peer delivery.

This implements the behaviour of §3.3–3.4: a download always keeps a
connection to the infrastructure ("the download from the edge servers
continues in parallel ... if a peer is 'unlucky' and picks peers that are
slow or unreliable, the infrastructure can cover the difference"), while a
BitTorrent-like swarming protocol pulls verified pieces from peers.

Mechanics
---------
* Every connection (edge or peer) pulls *batches* of pieces from a shared
  pool, each batch sized to ~``chunk_target_seconds`` of transfer at the
  connection's observed rate — fast sources naturally deliver more bytes
  and the endgame stays short.
* Piece hashes come from the trusted edge servers; every piece received from
  a peer is verified, corrupted pieces are discarded, re-queued, and counted
  (a connection is dropped after repeated corruption; the download fails
  with a *system* cause after too many bad pieces, §5.2).
* The *edge backstop policy* throttles the infrastructure connection to the
  gap between a QoS target and what the peers are currently delivering —
  this is what makes 70–80% offload possible without hurting QoS, and it is
  the knob the backstop ablation turns off.
* Peer connections are obtained by querying the control plane; additional
  queries are issued while fewer than ``target_peer_connections`` succeed.

States: ``active`` → (``paused`` ⇄ ``active``) → one of ``completed`` /
``failed`` / ``aborted``.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.analysis.records import (
    DownloadRecord, FAILURE_OTHER, FAILURE_SYSTEM,
    OUTCOME_ABORTED, OUTCOME_COMPLETED, OUTCOME_FAILED,
)
from repro.core.content import PIECE_SIZE, ContentObject
from repro.core.edge import AuthorizationError, AuthToken, EdgeServer
from repro.core.messages import UsageReport
from repro.net.flows import Flow
from repro.net.nat import can_connect

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.peer import PeerNode
    from repro.core.system import NetSessionSystem

__all__ = ["Chunk", "DownloadSession", "PeerConnection", "EdgeConnection"]


class Chunk:
    """A contiguous batch of piece indices handed to one connection."""

    __slots__ = ("pieces",)

    def __init__(self, pieces: list[int]):
        if not pieces:
            raise ValueError("a chunk needs at least one piece")
        self.pieces = pieces

    def size(self, obj: ContentObject) -> int:
        """Total bytes covered by this chunk."""
        return sum(obj.piece_size(i) for i in self.pieces)

    def split_at_bytes(self, obj: ContentObject, transferred: float) -> tuple[list[int], list[int]]:
        """Split into (complete pieces, remainder pieces) after a partial transfer.

        Only whole pieces count as delivered; the remainder is re-queued.
        """
        done: list[int] = []
        cum = 0.0
        for idx, piece in enumerate(self.pieces):
            cum += obj.piece_size(piece)
            if cum <= transferred + 0.5:
                done.append(piece)
            else:
                return done, self.pieces[idx:]
        return done, []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Chunk pieces={self.pieces[0]}..{self.pieces[-1]} n={len(self.pieces)}>"


class _Connection:
    """Shared machinery for edge and peer connections."""

    def __init__(self, session: "DownloadSession"):
        self.session = session
        self.flow: Optional[Flow] = None
        self.chunk: Optional[Chunk] = None
        self.closed = False
        #: EWMA of realised transfer rate, used to size the next batch.
        self.rate_estimate = 0.0

    @property
    def busy(self) -> bool:
        """Is a chunk currently being transferred on this connection?"""
        return self.chunk is not None

    def current_rate(self) -> float:
        """Instantaneous transfer rate, bytes/s."""
        if self.flow is not None and self.flow.active:
            # Settle any same-timestamp mutation burst before reading.
            self.session.system.flows.flush()
            return self.flow.rate
        return 0.0

    def observe_rate(self, flow: Flow) -> None:
        """Fold a finished flow's average rate into the EWMA estimate."""
        rate = flow.average_rate()
        if rate <= 0:
            return
        if self.rate_estimate <= 0:
            self.rate_estimate = rate
        else:
            self.rate_estimate = 0.5 * self.rate_estimate + 0.5 * rate

    def pull_next(self) -> None:
        """Take the next chunk from the session queue, or go idle."""
        raise NotImplementedError

    def stop(self, *, credit_partial: bool) -> None:
        """Tear down the connection, optionally crediting whole pieces."""
        raise NotImplementedError


class EdgeConnection(_Connection):
    """The always-present HTTP(S) connection to an edge server (§3.3)."""

    def __init__(self, session: "DownloadSession", server: EdgeServer):
        super().__init__(session)
        self.server = server

    def pull_next(self) -> None:
        if self.closed or self.session.state != "active":
            return
        if self.rate_estimate <= 0:
            # Before any transfer, assume the edge can fill the downlink.
            self.rate_estimate = self.session.peer.link.down_bps
        chunk = self.session.take_chunk(self)
        if chunk is None:
            # Nothing queued; the backstop may later steal a stalled peer
            # chunk for us.  Stay open (the paper: there is always at least
            # one connection to the infrastructure).
            self.chunk = None
            self.session.maybe_steal_for_edge()
            return
        self.chunk = chunk
        size = chunk.size(self.session.obj)
        resources = [self.session.peer.link.downlink]
        if self.server.egress.capacity is not None:
            resources.append(self.server.egress)
        self.flow = self.session.system.flows.start_flow(
            resources, size,
            cap=self.session.edge_cap,
            on_complete=self._on_chunk_done,
            meta=self,
        )

    def _on_chunk_done(self, flow: Flow) -> None:
        chunk, self.chunk, self.flow = self.chunk, None, None
        assert chunk is not None
        self.observe_rate(flow)
        self.server.record_served(
            self.session.peer.guid, self.session.obj.cid, int(flow.size)
        )
        self.session.deliver_pieces(chunk.pieces, source=None, nbytes=int(flow.size))
        self.pull_next()

    def set_cap(self, cap: Optional[float]) -> None:
        """Apply the backstop policy's current edge throttle."""
        self.session.edge_cap = cap
        if self.flow is not None and self.flow.active:
            self.session.system.flows.set_cap(self.flow, cap)

    def stop(self, *, credit_partial: bool) -> None:
        self.closed = True
        if self.flow is not None and self.flow.active:
            flow = self.flow
            self.session.system.flows.abort_flow(flow)
            if self.chunk is not None:
                done, rest = self.chunk.split_at_bytes(self.session.obj, flow.transferred)
                if credit_partial and done:
                    nbytes = sum(self.session.obj.piece_size(i) for i in done)
                    self.server.record_served(
                        self.session.peer.guid, self.session.obj.cid, nbytes
                    )
                    self.session.deliver_pieces(done, source=None, nbytes=nbytes)
                    if rest:
                        self.session.requeue_pieces(rest)
                else:
                    self.session.requeue_pieces(self.chunk.pieces)
        elif self.chunk is not None:
            self.session.requeue_pieces(self.chunk.pieces)
        self.flow = None
        self.chunk = None


class PeerConnection(_Connection):
    """A swarming connection from one uploading peer."""

    def __init__(self, session: "DownloadSession", uploader: "PeerNode"):
        super().__init__(session)
        self.uploader = uploader
        self.corrupted_pieces = 0

    def pull_next(self) -> None:
        if self.closed or self.session.state != "active":
            return
        if not self.uploader.online or not self.uploader.uploads_enabled:
            self.close(credit_partial=True)
            return
        if self.rate_estimate <= 0:
            self.rate_estimate = min(
                self.uploader.upload_rate_cap(),
                self.session.peer.link.down_bps,
            )
        chunk = self.session.take_chunk(self)
        if chunk is None:
            # No work left for this peer: close so the upload slot frees up.
            self.close(credit_partial=True)
            return
        self.chunk = chunk
        size = chunk.size(self.session.obj)
        downloader = self.session.peer
        if (self.uploader.lan is not None
                and self.uploader.lan is downloader.lan):
            # Same corporate site (§5.3): the transfer rides the internal
            # switch, bypassing both members\' broadband access links, and
            # the WAN upload throttle does not apply.
            resources = [self.uploader.lan.switch]
            cap = None
        else:
            resources = [self.uploader.link.uplink, downloader.link.downlink]
            cap = self.uploader.upload_rate_cap()
        self.flow = self.session.system.flows.start_flow(
            resources,
            size,
            cap=cap,
            on_complete=self._on_chunk_done,
            meta=self,
        )
        self.uploader.upload_flows.add(self.flow)

    def _on_chunk_done(self, flow: Flow) -> None:
        self.uploader.upload_flows.discard(flow)
        chunk, self.chunk, self.flow = self.chunk, None, None
        assert chunk is not None
        self.observe_rate(flow)
        self._note_if_slow(flow)
        self._verify_and_deliver(chunk.pieces)
        if self.closed:
            return
        if self.uploader.guid in self.session.banned_uploaders:
            # The session-level aggregate (not just this connection's count)
            # crossed conn_corruption_ban — see note_corruption.
            self.session.system.defense.conn_corruption_drops += 1
            self.close(credit_partial=False)
            self.session.replace_connections()
            return
        self.pull_next()

    def _note_if_slow(self, flow: Flow) -> None:
        """Record a slow-loris observation when a serve ran at a trickle."""
        rate = flow.average_rate()
        floor = self.session.system.config.defense.slow_rate_floor
        if 0 < rate < floor:
            self.session.note_slow_serve(self.uploader.guid)

    def _verify_and_deliver(self, pieces: list[int]) -> None:
        """Hash-check each received piece; deliver good ones, requeue bad."""
        rng = self.session.rng
        prob = self.uploader.piece_corruption_prob
        good: list[int] = []
        bad: list[int] = []
        for piece in pieces:
            if rng.random() < prob:
                bad.append(piece)
            else:
                good.append(piece)
        obj = self.session.obj
        if good:
            nbytes = sum(obj.piece_size(i) for i in good)
            self.session.deliver_pieces(good, source=self.uploader, nbytes=nbytes)
        if bad:
            self.corrupted_pieces += len(bad)
            nbytes = sum(obj.piece_size(i) for i in bad)
            self.session.record_corruption(len(bad), nbytes)
            self.session.requeue_pieces(bad)
            self.session.note_corruption(self.uploader.guid, len(bad))

    def handle_uploader_offline(self) -> None:
        """The uploader vanished mid-chunk (churn): credit and requeue."""
        self.close(credit_partial=True)
        self.session.replace_connections()

    def close(self, *, credit_partial: bool) -> None:
        """Close the connection, releasing the uploader's slot."""
        if self.closed:
            return
        self.stop(credit_partial=credit_partial)

    def stop(self, *, credit_partial: bool) -> None:
        self.closed = True
        if self.flow is not None and self.flow.active:
            flow = self.flow
            self.uploader.upload_flows.discard(flow)
            self.session.system.flows.abort_flow(flow)
            self._note_if_slow(flow)
            if self.chunk is not None:
                done, rest = self.chunk.split_at_bytes(self.session.obj, flow.transferred)
                if credit_partial and done:
                    self._verify_and_deliver(done)
                    if rest:
                        self.session.requeue_pieces(rest)
                else:
                    self.session.requeue_pieces(self.chunk.pieces)
        elif self.chunk is not None:
            self.session.requeue_pieces(self.chunk.pieces)
        self.flow = None
        self.chunk = None
        self.uploader.release_upload()
        self.session.connection_closed(self)


class DownloadSession:
    """One download by one peer: the Download Manager's unit of work (§3.3)."""

    def __init__(self, system: "NetSessionSystem", peer: "PeerNode", obj: ContentObject):
        self.system = system
        self.peer = peer
        self.obj = obj
        self.rng: random.Random = random.Random(system.rng.getrandbits(64))

        self.state = "new"
        self.started_at = 0.0
        self.ended_at: Optional[float] = None
        self.outcome: Optional[str] = None
        self.failure_class: Optional[str] = None

        self.edge_bytes = 0
        self.peer_bytes = 0
        self.per_uploader_bytes: dict[str, int] = {}
        self.corrupted_bytes = 0
        self.corrupted_piece_count = 0
        # Per-uploader misbehavior observations (pure counting, no RNG);
        # shipped CN-side in the usage report and — via banned_uploaders —
        # closing the ban-evasion hole: corruption aggregates across *all*
        # of an uploader's connections in this session, so a corrupter
        # dropped at conn_corruption_ban stays banned across reconnects,
        # resumes, and hybrid promotions (which clear _tried_guids).
        self.corrupt_by_uploader: dict[str, int] = {}
        self.refused_by_uploader: dict[str, int] = {}
        self.slow_by_uploader: dict[str, int] = {}
        self.banned_uploaders: set[str] = set()
        self.peers_initially_returned = 0
        #: Set by the predictive-placement policy: not user demand.
        self.is_prefetch = False

        self.received: set[int] = set()
        self.piece_pool: list[int] = []
        self.edge_conn: Optional[EdgeConnection] = None
        self.peer_conns: list[PeerConnection] = []
        self.edge_cap: Optional[float] = None

        self._token: Optional[AuthToken] = None
        self._queries_done = 0
        self._tried_guids: set[str] = set()
        self._backstop_event = None
        self._pending_attempts = 0
        #: True while peer sourcing (queries + backstop) is attached; reset
        #: on teardown so resume/promotion can re-attach it.
        self._p2p_started = False
        #: Empty-response query retries granted by a post-outage promotion:
        #: right after a control-plane recovery the directory is still
        #: repopulating, so an empty answer means "ask again", not "give up".
        self._recovery_requeries = 0

    # ------------------------------------------------------------- lifecycle

    @property
    def p2p_active(self) -> bool:
        """Is peer-assisted delivery in effect for this download?"""
        return (
            self.obj.p2p_enabled
            and self.system.config.p2p_globally_enabled
        )

    def start(self) -> None:
        """Begin the download (authorize, open edge connection, query peers)."""
        if self.state != "new":
            raise RuntimeError(f"session already started (state={self.state})")
        self.state = "active"
        self.started_at = self.system.sim.now
        try:
            self._token = self.system.edge.authorize(self.peer.guid, self.obj)
        except AuthorizationError:
            self._finish(OUTCOME_FAILED, FAILURE_OTHER)
            return

        self._fill_pool()
        self._open_edge_connection()
        if self.p2p_active:
            if self.peer.cn is None or not self.peer.cn.alive:
                # CN momentarily unreachable: ask the channel to re-open the
                # control connection (failover).  If the whole control plane
                # is down, the breaker/probe machinery will promote this
                # session to hybrid once it recovers — edge-only is a mode,
                # not a life sentence (§3.8).
                self.peer.channel.ensure_connected()
            self._begin_p2p()
        # else: infrastructure-only (provider policy or global switch).

    def _begin_p2p(self) -> None:
        """Attach peer sourcing: first query plus the edge backstop."""
        if self._p2p_started or self.state != "active" or not self.p2p_active:
            return
        if self.peer.cn is None or not self.peer.cn.alive:
            return
        self._p2p_started = True
        self._schedule_query()
        self._start_backstop()

    def promote_to_hybrid(self) -> bool:
        """Re-attach peer sourcing after control-plane recovery (§3.8).

        Called by the peer's control channel when its connection is
        re-established (probe success, failover, external reconnect).  An
        edge-only in-flight download regains peer sources mid-transfer;
        returns True if the session was actually promoted.
        """
        if self._p2p_started or self.state != "active" or not self.p2p_active:
            return False
        if self.peer.cn is None or not self.peer.cn.alive:
            return False
        self._tried_guids.clear()  # pre-outage candidates are stale
        self._recovery_requeries = 3
        self._begin_p2p()
        return True

    def _fill_pool(self) -> None:
        self.piece_pool = [
            i for i in range(self.obj.num_pieces) if i not in self.received
        ]

    def _open_edge_connection(self) -> None:
        server = self.system.edge.server_for(self.peer.network_region)
        self.edge_conn = EdgeConnection(self, server)
        self.edge_conn.pull_next()

    # ------------------------------------------------------------ work queue

    def take_chunk(self, conn: "_Connection") -> Optional[Chunk]:
        """Hand a batch of pieces to ``conn``, sized to its estimated rate.

        A batch covers roughly ``chunk_target_seconds`` of transfer at the
        connection's EWMA rate, clamped to ``chunk_max_pieces`` and to at
        most half of the remaining pool — the latter keeps the endgame
        short by never letting one connection monopolise the tail.
        """
        if not self.piece_pool:
            return None
        cfg = self.system.config.client
        if conn.rate_estimate > 0:
            k = int(conn.rate_estimate * cfg.chunk_target_seconds / PIECE_SIZE)
        else:
            k = cfg.chunk_initial_pieces
        k = max(1, min(k, cfg.chunk_max_pieces))
        if len(self.piece_pool) > 2:
            k = min(k, max(1, len(self.piece_pool) // 2))
        batch, self.piece_pool = self.piece_pool[:k], self.piece_pool[k:]
        return Chunk(batch)

    def requeue_pieces(self, pieces: list[int]) -> None:
        """Return undelivered pieces to the pool (corruption, churn, steal)."""
        todo = [p for p in pieces if p not in self.received]
        if todo:
            self.piece_pool.extend(todo)

    def deliver_pieces(self, pieces: list[int], source: Optional["PeerNode"], nbytes: int) -> None:
        """Account verified pieces from ``source`` (None = infrastructure)."""
        if self.state not in ("active", "paused"):
            return
        fresh = [p for p in pieces if p not in self.received]
        if len(fresh) != len(pieces):
            # Duplicate delivery (endgame steal overlap): count only fresh bytes.
            nbytes = sum(self.obj.piece_size(p) for p in fresh)
        self.received.update(fresh)
        if source is None:
            self.edge_bytes += nbytes
        else:
            self.peer_bytes += nbytes
            guid = source.guid
            self.per_uploader_bytes[guid] = self.per_uploader_bytes.get(guid, 0) + nbytes
        if len(self.received) >= self.obj.num_pieces:
            self._complete()

    def record_corruption(self, pieces: int, nbytes: int) -> None:
        """Count discarded corrupt pieces; fail the download past the limit."""
        self.corrupted_piece_count += pieces
        self.corrupted_bytes += nbytes
        self.system.defense.corrupted_pieces += pieces
        self.system.defense.corrupted_bytes += nbytes
        if self.corrupted_piece_count > self.system.config.client.max_corrupted_pieces:
            self.fail(FAILURE_SYSTEM)

    def note_corruption(self, guid: str, pieces: int) -> None:
        """Attribute corrupted pieces to an uploader; ban past the threshold.

        The aggregate spans every connection this session opened to the
        uploader, so the ban survives ``replace_connections()``, resumes,
        and hybrid promotions — the per-connection counter alone let a
        corrupter back in whenever ``_tried_guids`` was cleared.
        """
        total = self.corrupt_by_uploader.get(guid, 0) + pieces
        self.corrupt_by_uploader[guid] = total
        if (total >= self.system.config.client.conn_corruption_ban
                and guid not in self.banned_uploaders):
            self.banned_uploaders.add(guid)
            self.system.defense.uploader_bans += 1

    def note_refusal(self, guid: str) -> None:
        """An uploader refused the grant or had nothing to serve."""
        self.refused_by_uploader[guid] = self.refused_by_uploader.get(guid, 0) + 1

    def note_slow_serve(self, guid: str) -> None:
        """A serve from this uploader ended below the slow-rate floor."""
        self.slow_by_uploader[guid] = self.slow_by_uploader.get(guid, 0) + 1
        self.system.defense.slow_serves += 1

    # ---------------------------------------------------------- peer sourcing

    def _schedule_query(self) -> None:
        lo, hi = self.system.config.client.query_latency
        self.system.sim.schedule(self.rng.uniform(lo, hi), self._run_query)

    def _run_query(self) -> None:
        if self.state != "active" or not self.p2p_active:
            return
        if self._token is None:
            return
        self.peer.channel.query(
            self.obj.cid, self._token,
            frozenset(self._tried_guids),
            self._handle_query_response,
        )

    def _handle_query_response(self, response) -> None:
        if self.state != "active" or not self.p2p_active:
            return
        self._queries_done += 1
        if self._queries_done == 1:
            self.peers_initially_returned = len(response.candidates)
        cfg = self.system.config.client
        if not response.candidates:
            if self._recovery_requeries > 0 and self.piece_pool:
                # Promotion raced the directory repopulating after a
                # control-plane recovery: the seeders' own re-logins and
                # RE-ADD replies are still in flight, so ask again on a
                # probe-ish cadence instead of settling for edge-only.
                self._recovery_requeries -= 1
                delay = 0.5 * self.system.config.channel.probe_interval
                self.system.sim.schedule(delay, self._run_query)
            return
        self._recovery_requeries = 0
        for cand in response.candidates:
            self._tried_guids.add(cand.guid)
            delay = self.rng.uniform(*cfg.handshake_delay)
            self._pending_attempts += 1
            self.system.sim.schedule(delay, lambda g=cand.guid: self._attempt_connection(g))

    def _attempt_connection(self, guid: str) -> None:
        self._pending_attempts -= 1
        if self.state != "active":
            return
        target = self.system.config.control_plane.target_peer_connections
        live = sum(1 for c in self.peer_conns if not c.closed)
        if live >= min(target, self.system.config.client.max_peer_connections):
            return
        uploader = self.system.peer_by_guid.get(guid)
        reachable = (
            uploader is not None
            and uploader.online
            and uploader is not self.peer
            and can_connect(
                self.peer.nat_profile.true_type, uploader.nat_profile.true_type
            )
            and self.rng.random() < self.system.config.client.connect_success_prob
        )
        # The ban check sits *after* the success draw so that sessions with
        # no banned uploaders consume the exact same RNG stream as before
        # the ban-evasion fix (golden parity); a banned uploader is then
        # refused without touching its upload slots.
        ok = False
        if reachable:
            if guid in self.banned_uploaders:
                self.system.defense.ban_blocked_attempts += 1
            elif uploader.try_grant_upload(self.obj.cid):
                ok = True
            else:
                # Grant refused with the peer reachable: a free-rider, a
                # stale advertiser with nothing to serve, or simply busy.
                self.note_refusal(guid)
        if ok:
            conn = PeerConnection(self, uploader)
            self.peer_conns.append(conn)
            conn.pull_next()
        if self._pending_attempts == 0:
            self._maybe_requery()

    def _maybe_requery(self) -> None:
        """Issue another query if too few connections succeeded (§3.7)."""
        if self.state != "active" or not self.p2p_active:
            return
        live = sum(1 for c in self.peer_conns if not c.closed)
        target = self.system.config.control_plane.target_peer_connections
        if live >= target or not self.piece_pool:
            return
        if self._queries_done >= 1 + self.system.config.client.max_extra_queries:
            return
        self._schedule_query()

    def replace_connections(self) -> None:
        """A connection died; look for replacements if work remains."""
        self._maybe_requery()

    def connection_closed(self, conn: PeerConnection) -> None:
        """Bookkeeping when a peer connection fully closes."""
        # Connections are kept in the list for end-of-download statistics;
        # closed ones are filtered where liveness matters.

    # --------------------------------------------------------- backstop policy

    def _start_backstop(self) -> None:
        cfg = self.system.config.client
        if not cfg.edge_backstop_enabled:
            return
        self._backstop_event = self.system.sim.every(
            cfg.backstop_interval, self._backstop_tick
        )

    def _backstop_tick(self) -> None:
        if self.state != "active" or self.edge_conn is None:
            return
        cfg = self.system.config.client
        peer_rate = sum(c.current_rate() for c in self.peer_conns if not c.closed)
        down = self.peer.link.down_bps
        target = cfg.edge_target_fraction * down
        trickle = max(1.0, cfg.edge_trickle_fraction * down)
        cap = max(trickle, target - peer_rate)
        old = self.edge_cap
        if old is None or abs(cap - old) > cfg.backstop_hysteresis * old:
            self.edge_conn.set_cap(cap)
        if not self.piece_pool and self.edge_conn.chunk is None:
            self.maybe_steal_for_edge()

    def maybe_steal_for_edge(self) -> None:
        """Endgame: re-fetch a stalled peer chunk over the infrastructure.

        When the queue is empty and the edge connection is idle, find the
        in-flight peer chunk with the worst ETA; if the infrastructure could
        plausibly finish it sooner, cancel the peer transfer (keeping whole
        pieces already received) and let the edge cover the difference.
        """
        if self.state != "active" or self.edge_conn is None:
            return
        if self.piece_pool or self.edge_conn.busy:
            return
        # ETAs below come from live rates: settle pending mutations first.
        self.system.flows.flush()
        worst: Optional[PeerConnection] = None
        worst_eta = 0.0
        for conn in list(self.peer_conns):
            if conn.closed:
                continue
            if conn.flow is None or not conn.flow.active:
                if conn.busy:
                    # Defensive: a connection holding pieces with no live
                    # flow is dead (its flow was torn down externally) —
                    # close it so the pieces return to the pool.
                    conn.close(credit_partial=True)
                    if self.state != "active" or self.edge_conn is None:
                        return
                continue
            rate = conn.flow.rate
            eta = conn.flow.remaining / rate if rate > 0 else float("inf")
            if eta > worst_eta:
                worst_eta = eta
                worst = conn
        if self.piece_pool:
            # Closing dead connections returned work to the pool.
            self.edge_conn.pull_next()
            return
        if worst is None:
            return
        down = self.peer.link.down_bps
        edge_eta = (worst.flow.remaining if worst.flow else 0.0) / max(down, 1.0)
        if worst_eta > 2.0 * edge_eta + 1.0:
            worst.close(credit_partial=True)
            # Crediting partial pieces can complete the download and tear
            # everything down, so re-check before touching the edge conn.
            if self.state == "active" and self.edge_conn is not None:
                self.edge_conn.pull_next()

    # ------------------------------------------------------------ user actions

    def pause(self) -> None:
        """User (or connectivity loss) pauses the download; resumable."""
        if self.state != "active":
            return
        self.state = "paused"
        self._teardown_transfers(credit_partial=True)

    def resume(self) -> None:
        """Continue a paused download from where it stopped (§3.3)."""
        if self.state != "paused":
            return
        if not self.peer.online:
            return
        self.state = "active"
        self._fill_pool()
        self._open_edge_connection()
        if self.p2p_active:
            self._queries_done = max(1, self._queries_done)  # keep fig-6 counter
            self._tried_guids.clear()
            if self.peer.cn is None or not self.peer.cn.alive:
                self.peer.channel.ensure_connected()
            self._begin_p2p()

    def abort(self) -> None:
        """User cancels (or never resumes) the download: terminal."""
        if self.state in ("completed", "failed", "aborted"):
            return
        self._teardown_transfers(credit_partial=False)
        self._finish(OUTCOME_ABORTED, None)

    def fail(self, failure_class: str) -> None:
        """The download fails (system or other cause): terminal."""
        if self.state in ("completed", "failed", "aborted"):
            return
        self._teardown_transfers(credit_partial=False)
        self._finish(OUTCOME_FAILED, failure_class)

    # ------------------------------------------------------------- completion

    def _complete(self) -> None:
        if self.state in ("completed", "failed", "aborted"):
            return
        self._teardown_transfers(credit_partial=False)
        self.peer.add_to_cache(self.obj.cid)
        self._finish(OUTCOME_COMPLETED, None)

    def _teardown_transfers(self, *, credit_partial: bool) -> None:
        self._p2p_started = False
        if self._backstop_event is not None:
            self._backstop_event.cancel()
            self._backstop_event = None
        for conn in list(self.peer_conns):
            if not conn.closed:
                conn.stop(credit_partial=credit_partial)
        if self.edge_conn is not None:
            self.edge_conn.stop(credit_partial=credit_partial)
            self.edge_conn = None
        self.edge_cap = None

    def _finish(self, outcome: str, failure_class: Optional[str]) -> None:
        self.state = outcome
        self.outcome = outcome
        self.failure_class = failure_class
        self.ended_at = self.system.sim.now
        self.peer.session_finished(self)
        self._report()

    def _record_extras(self) -> dict:
        """Extra :class:`DownloadRecord` fields contributed by subclasses.

        The streaming session overrides this to attach its QoE fields;
        plain downloads contribute nothing, so the record (and everything
        fingerprinted or rendered from it) is unchanged.
        """
        return {}

    def _report(self) -> None:
        """Upload the usage report and write the CN-side download record."""
        claimed_edge = self.edge_bytes
        claimed_peer = self.peer_bytes
        per_uploader = dict(self.per_uploader_bytes)
        if self.peer.accounting_attacker:
            # Accounting attack: inflate claimed service (§6.2 / NSDI'12).
            claimed_edge = int(claimed_edge * 3) + 10_000_000
            claimed_peer = int(claimed_peer * 3) + 10_000_000

        report = UsageReport(
            guid=self.peer.guid,
            cid=self.obj.cid,
            cp_code=self.obj.provider.cp_code,
            started_at=self.started_at,
            ended_at=self.ended_at if self.ended_at is not None else self.system.sim.now,
            claimed_edge_bytes=claimed_edge,
            claimed_peer_bytes=claimed_peer,
            per_uploader_bytes=per_uploader,
            outcome=self.outcome or "aborted",
            failure_class=self.failure_class,
            per_uploader_corrupt=dict(self.corrupt_by_uploader),
            per_uploader_refusals=dict(self.refused_by_uploader),
            per_uploader_slow=dict(self.slow_by_uploader),
        )
        record = DownloadRecord(
            guid=self.peer.guid,
            url=self.obj.url,
            cid=self.obj.cid,
            cp_code=self.obj.provider.cp_code,
            size=self.obj.size,
            started_at=self.started_at,
            ended_at=report.ended_at,
            edge_bytes=self.edge_bytes,
            peer_bytes=self.peer_bytes,
            p2p_enabled=self.obj.p2p_enabled,
            outcome=self.outcome or "aborted",
            failure_class=self.failure_class,
            ip=self.peer.ip,
            peers_initially_returned=self.peers_initially_returned,
            per_uploader_bytes=dict(self.per_uploader_bytes),
            corrupted_bytes=self.corrupted_bytes,
            prefetch=self.is_prefetch,
            **self._record_extras(),
        )
        # Through the channel: lossy/retrying when configured, failing over
        # past a dead CN, and deferring to the accounting log when no CN is
        # reachable at all (logs are uploaded when connectivity returns; the
        # trace still sees the download, billing is deferred).
        self.peer.channel.report_usage(report)
        self.system.logstore.add_download(record)

    # ------------------------------------------------------------- inspection

    @property
    def progress(self) -> float:
        """Fraction of pieces received and verified."""
        if self.obj.num_pieces == 0:
            return 1.0
        return len(self.received) / self.obj.num_pieces

    @property
    def peer_fraction(self) -> float:
        """Peer efficiency so far: fraction of useful bytes from peers."""
        total = self.edge_bytes + self.peer_bytes
        if total == 0:
            return 0.0
        return self.peer_bytes / total

    def received_bytes(self) -> int:
        """Exact byte size of the verified pieces held so far.

        O(1): every piece is PIECE_SIZE except possibly the last, so a set
        of piece indexes determines the byte count without iterating it.
        The invariant auditor reconciles this against the per-source
        counters (``edge_bytes + peer_bytes``) on every sampled audit.
        """
        n = len(self.received)
        if n == 0:
            return 0
        nbytes = n * PIECE_SIZE
        if (self.obj.num_pieces - 1) in self.received:
            nbytes += self.obj.last_piece_size - PIECE_SIZE
        return nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DownloadSession {self.obj.url} peer={self.peer.guid[:8]} "
            f"{self.state} {self.progress:.0%}>"
        )
