"""The NetSession system facade: everything wired together.

:class:`NetSessionSystem` assembles the substrate (simulator, flow network,
world, topology, geo database) and the system proper (edge network, control
plane, accounting) and exposes the operations the workload layer drives:
create peers, publish content, start downloads, advance time.

This is the public entry point of the core library::

    from repro.core import NetSessionSystem, ContentProvider, ContentObject

    system = NetSessionSystem(seed=7)
    provider = ContentProvider(cp_code=1001, name="GameCo", upload_default_rate=1.0)
    obj = ContentObject("game-installer.bin", 800_000_000, provider, p2p_enabled=True)
    system.publish(obj)

    peers = [system.create_peer() for _ in range(50)]
    for p in peers:
        p.boot()
    session = peers[0].start_download(obj)
    system.run(until=3600)
    print(session.state, session.peer_fraction)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.analysis.logstore import LogStore
from repro.core.accounting import AccountingService
from repro.core.config import SystemConfig
from repro.core.content import ContentObject, ContentProvider
from repro.core.control.channel import ControlChannelStats
from repro.core.control.plane import ControlPlane
from repro.core.edge import EdgeNetwork
from repro.core.peer import PeerNode
from repro.core.swarm import DownloadSession
from repro.invariants import InvariantAuditor, InvariantStats, InvariantViolation
from repro.net.addressing import IPAllocator
from repro.net.flows import FlowNetwork, FlowNetworkStats
from repro.net.geo import Country, GeoDatabase, World, build_core_world
from repro.net.links import BroadbandModel
from repro.net.nat import NATModel
from repro.net.sim import Simulator
from repro.net.topology import ASTopology, build_topology

__all__ = [
    "DefenseCounters", "DefenseStats", "NetSessionSystem", "SystemStats",
    "VodCounters", "VodStats",
]


@dataclass(frozen=True)
class VodStats:
    """Streaming-side counters (zeros whenever no VoD workload ran).

    Defined here rather than in :mod:`repro.vod` so the core system (and
    the pickled scenario artifacts that embed :class:`SystemStats`) never
    depend on the VoD package.
    """

    #: Viewing sessions whose playback clock was armed.
    streams_started: int = 0
    #: Sessions whose playback reached the end of the episode.
    playbacks_finished: int = 0
    #: Mid-stream stalls across all sessions.
    rebuffer_events: int = 0
    #: Total stall time across all sessions, seconds.
    rebuffer_seconds: float = 0.0
    #: Candidates a serving policy refused to return (e.g. cross-AS peers
    #: under ``isp_local``).
    policy_filtered: int = 0
    #: Prefetch downloads the off-peak placer started.
    prefetches_pushed: int = 0
    #: Pre-trace cache copies planted by ``popularity_seeding``.
    copies_seeded: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "streams_started": self.streams_started,
            "playbacks_finished": self.playbacks_finished,
            "rebuffer_events": self.rebuffer_events,
            "rebuffer_seconds": round(self.rebuffer_seconds, 1),
            "policy_filtered": self.policy_filtered,
            "prefetches_pushed": self.prefetches_pushed,
            "copies_seeded": self.copies_seeded,
        }


class VodCounters:
    """Mutable accumulator behind :class:`VodStats`.

    The streaming engine and the serving policies increment these as the
    run progresses; :meth:`NetSessionSystem.stats` snapshots them.
    """

    __slots__ = ("streams_started", "playbacks_finished", "rebuffer_events",
                 "rebuffer_seconds", "policy_filtered", "prefetches_pushed",
                 "copies_seeded")

    def __init__(self):
        self.streams_started = 0
        self.playbacks_finished = 0
        self.rebuffer_events = 0
        self.rebuffer_seconds = 0.0
        self.policy_filtered = 0
        self.prefetches_pushed = 0
        self.copies_seeded = 0

    def snapshot(self) -> VodStats:
        return VodStats(
            streams_started=self.streams_started,
            playbacks_finished=self.playbacks_finished,
            rebuffer_events=self.rebuffer_events,
            rebuffer_seconds=self.rebuffer_seconds,
            policy_filtered=self.policy_filtered,
            prefetches_pushed=self.prefetches_pushed,
            copies_seeded=self.copies_seeded,
        )


@dataclass(frozen=True)
class DefenseStats:
    """Corruption/ban bookkeeping plus reputation-engine counters.

    The corruption and session-ban counters accumulate in every run (they
    are pure observations of the swarm layer); the quarantine/probation
    counters stay zero unless ``SystemConfig.defense.enabled`` constructed
    a :class:`~repro.adversary.reputation.ReputationEngine`.  Defined here,
    like :class:`VodStats`, so pickled artifacts embedding
    :class:`SystemStats` never depend on the adversary package.
    """

    #: Hash-verification failures across all sessions (pieces / bytes).
    corrupted_pieces: int = 0
    corrupted_bytes: int = 0
    #: Peer connections dropped for crossing ``conn_corruption_ban``.
    conn_corruption_drops: int = 0
    #: Session-level uploader bans (corruption aggregated across a
    #: session's connections to one uploader).
    uploader_bans: int = 0
    #: Connection attempts refused because the uploader was session-banned
    #: (each one is a re-selection the pre-fix engine would have allowed).
    ban_blocked_attempts: int = 0
    #: Serves that ended below the slow-rate floor.
    slow_serves: int = 0
    #: Reputation-engine counters (all zero with the defense disabled).
    quarantines: int = 0
    probations: int = 0
    reports_ingested: int = 0
    registrations_evicted: int = 0
    #: Quarantined peers that still appeared in a query answer — the
    #: quarantined-never-selected audit; must stay zero.
    quarantine_leaks: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "corrupted_pieces": self.corrupted_pieces,
            "corrupted_bytes": self.corrupted_bytes,
            "conn_corruption_drops": self.conn_corruption_drops,
            "uploader_bans": self.uploader_bans,
            "ban_blocked_attempts": self.ban_blocked_attempts,
            "slow_serves": self.slow_serves,
            "quarantines": self.quarantines,
            "probations": self.probations,
            "reports_ingested": self.reports_ingested,
            "registrations_evicted": self.registrations_evicted,
            "quarantine_leaks": self.quarantine_leaks,
        }


class DefenseCounters:
    """Mutable accumulator behind :class:`DefenseStats`.

    The swarm layer increments the corruption/ban counters directly;
    :meth:`NetSessionSystem.stats` folds in the reputation engine's own
    counters (when one exists) at snapshot time.
    """

    __slots__ = ("corrupted_pieces", "corrupted_bytes",
                 "conn_corruption_drops", "uploader_bans",
                 "ban_blocked_attempts", "slow_serves")

    def __init__(self):
        self.corrupted_pieces = 0
        self.corrupted_bytes = 0
        self.conn_corruption_drops = 0
        self.uploader_bans = 0
        self.ban_blocked_attempts = 0
        self.slow_serves = 0

    def snapshot(self, engine=None) -> DefenseStats:
        return DefenseStats(
            corrupted_pieces=self.corrupted_pieces,
            corrupted_bytes=self.corrupted_bytes,
            conn_corruption_drops=self.conn_corruption_drops,
            uploader_bans=self.uploader_bans,
            ban_blocked_attempts=self.ban_blocked_attempts,
            slow_serves=self.slow_serves,
            quarantines=engine.quarantines if engine else 0,
            probations=engine.probations if engine else 0,
            reports_ingested=engine.reports_ingested if engine else 0,
            registrations_evicted=engine.registrations_evicted if engine else 0,
            quarantine_leaks=engine.quarantine_leaks if engine else 0,
        )


@dataclass(frozen=True)
class SystemStats:
    """Point-in-time performance counters for a running system.

    Combines the simulator's event-loop counters with the flow network's
    allocation counters (a :class:`FlowNetworkStats` snapshot) and basic
    population gauges.  Cheap to take — every field is O(1) to read —
    so experiment runners can snapshot it after each scenario.
    """

    #: Simulated time of the snapshot, seconds.
    now: float
    #: Event-loop work: callbacks fired, heap pushes, stale entries popped.
    events_processed: int
    sim_heap_pushes: int
    sim_stale_pops: int
    #: Not-yet-fired, not-cancelled events still queued.
    pending_events: int
    #: Population gauges.
    peers: int
    peers_online: int
    active_flows: int
    flows_completed: int
    flows_aborted: int
    #: Allocation-engine counters (see :class:`FlowNetworkStats`).
    flows: FlowNetworkStats
    #: Control-channel robustness counters (see :class:`ControlChannelStats`).
    channel: ControlChannelStats
    #: Invariant-audit counters (see :class:`InvariantStats`).
    invariants: InvariantStats
    #: Streaming/serving-policy counters (see :class:`VodStats`); all zero
    #: unless the scenario attached a VoD workload.
    vod: VodStats = VodStats()
    #: Corruption/ban and reputation counters (see :class:`DefenseStats`).
    defense: DefenseStats = DefenseStats()

    def as_dict(self) -> dict[str, float]:
        """Flat key/value view for tables and JSON (flow_*/ctrl_* prefixed)."""
        out: dict[str, float] = {
            "now": round(self.now, 1),
            "events_processed": self.events_processed,
            "sim_heap_pushes": self.sim_heap_pushes,
            "sim_stale_pops": self.sim_stale_pops,
            "pending_events": self.pending_events,
            "peers": self.peers,
            "peers_online": self.peers_online,
            "active_flows": self.active_flows,
            "flows_completed": self.flows_completed,
            "flows_aborted": self.flows_aborted,
        }
        for key, value in self.flows.as_dict().items():
            out[f"flow_{key}"] = value
        for key, value in self.channel.as_dict().items():
            out[f"ctrl_{key}"] = value
        for key, value in self.invariants.as_dict().items():
            out[f"inv_{key}"] = value
        for key, value in self.vod.as_dict().items():
            out[f"vod_{key}"] = value
        for key, value in self.defense.as_dict().items():
            out[f"rep_{key}"] = value
        return out


class NetSessionSystem:
    """A complete, runnable NetSession deployment over a synthetic Internet."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        *,
        seed: int = 0,
        world: Optional[World] = None,
        topology: Optional[ASTopology] = None,
        locality_aware_selection: bool = True,
    ):
        self.config = config if config is not None else SystemConfig()
        self.rng = random.Random(seed)
        self.sim = Simulator()
        self.flows = FlowNetwork(self.sim, batching=self.config.flow_batching,
                                 kernel=self.config.resolve_kernel())
        #: Fleet-wide control-channel robustness counters; every peer's
        #: :class:`~repro.core.control.channel.ControlChannel` feeds it.
        self.channel_stats = ControlChannelStats()

        self.world = world if world is not None else build_core_world()
        self.topology = (
            topology
            if topology is not None
            else build_topology(self.world, random.Random(seed ^ 0x70_70))
        )
        self.geodb = GeoDatabase()
        self.allocator = IPAllocator(self.geodb, random.Random(seed ^ 0xA11))
        self.broadband = BroadbandModel(random.Random(seed ^ 0xB0B))
        self.nat_model = NATModel(random.Random(seed ^ 0x4A7))

        self.logstore = LogStore()
        regions = self.topology.network_regions()
        self.edge = EdgeNetwork(
            regions,
            random.Random(seed ^ 0xED6E),
            servers_per_region=self.config.edge_servers_per_region,
            egress_mbps=self.config.edge_egress_mbps,
        )
        self.accounting = AccountingService(self.edge)
        self.control = ControlPlane(
            self.sim, self.config, self.edge, self.logstore, self.accounting,
            regions, random.Random(seed ^ 0xC7),
            locality_aware=locality_aware_selection,
        )

        self.all_peers: list[PeerNode] = []
        self.peer_by_guid: dict[str, PeerNode] = {}
        #: Monotonic per-system peer sequence, used to name access-link
        #: resources.  Tracks creation order independently of ``all_peers``
        #: so a columnar population (which materializes lazily) hands out
        #: the same ``peerN`` names object mode would.
        self._peer_seq = 0
        #: The columnar population store, when the workload layer attached
        #: one (see :mod:`repro.workload.columnar`); None in object mode.
        self.population_store = None
        self.providers: dict[int, ContentProvider] = {}
        #: Streaming/serving-policy accumulator (stays all-zero unless a
        #: VoD workload is attached; see :mod:`repro.vod`).
        self.vod = VodCounters()
        #: Corruption/ban accumulator (always live — pure bookkeeping).
        self.defense = DefenseCounters()
        #: Ground truth for drills/experiments: guid -> profile for every
        #: peer an adversary assignment converted.  Empty in honest runs.
        self.adversary_truth: dict[str, str] = {}
        #: Device-tier mix (:class:`repro.workload.devices.DeviceMixConfig`)
        #: installed by population synthesis; None for homogeneous desktops.
        self.device_mix = None
        #: CN-side reputation engine; None unless the defense is enabled,
        #: in which case every CN ranks and filters candidates through it.
        self.reputation = None
        if self.config.defense.enabled:
            from repro.adversary.reputation import ReputationEngine
            self.reputation = ReputationEngine(self.config.defense, seed)
            self.reputation.on_quarantine = self._evict_quarantined
            self.reputation.clock = lambda: self.sim.now
            for cn in self.control.all_cns:
                cn.reputation = self.reputation

        #: The sanitizer layer (see :mod:`repro.invariants`).  Constructed
        #: last so its checkers can observe every subsystem above.
        self.auditor = InvariantAuditor(self, self.config.invariants)
        self.auditor.install()

    # ----------------------------------------------------------------- content

    def register_provider(self, provider: ContentProvider) -> None:
        """Onboard a content provider (customer account)."""
        self.providers[provider.cp_code] = provider

    def publish(self, obj: ContentObject) -> None:
        """Publish an object to the edge network (provider upload)."""
        if obj.provider.cp_code not in self.providers:
            self.register_provider(obj.provider)
        self.edge.publish(obj)

    # ------------------------------------------------------------------ peers

    def create_peer(
        self,
        *,
        country: Optional[Country] = None,
        uploads_enabled: Optional[bool] = None,
        installed_from: Optional[ContentProvider] = None,
        guid: str | None = None,
    ) -> PeerNode:
        """Create a peer: sample location, AS, access link, and NAT.

        ``uploads_enabled`` defaults to a draw from the bundling provider's
        binary mix (Table 4); with neither given, it defaults to enabled.
        The peer starts offline — call :meth:`PeerNode.boot`.
        """
        if country is None:
            country = self.world.sample_country(self.rng)
        city = self.world.sample_city(country, self.rng)
        asys = self.topology.sample_as(country.code, self.rng)
        link = self.broadband.sample(
            f"peer{self.next_peer_name_index()}",
            speed_multiplier=country.speed_multiplier,
        )
        nat = self.nat_model.sample()
        if uploads_enabled is None:
            if installed_from is not None:
                uploads_enabled = self.rng.random() < installed_from.upload_default_rate
            else:
                uploads_enabled = True
        peer = PeerNode(
            self, country, city, asys, link, nat,
            uploads_enabled=uploads_enabled,
            installed_from_cp=installed_from.cp_code if installed_from else 0,
            guid=guid,
        )
        self.all_peers.append(peer)
        self.peer_by_guid[peer.guid] = peer
        return peer

    def next_peer_name_index(self) -> int:
        """Claim the next ``peerN`` naming slot (creation order, store-agnostic)."""
        index = self._peer_seq
        self._peer_seq += 1
        return index

    def adopt_clone(self, peer: PeerNode) -> None:
        """Register a peer whose GUID collides with an existing install (§6.2).

        The directory maps a GUID to its most recently seen machine — the
        same ambiguity the production system experiences with cloned images.
        """
        if peer not in self.all_peers:
            self.all_peers.append(peer)
        self.peer_by_guid[peer.guid] = peer

    def _evict_quarantined(self, guid: str) -> int:
        """Reputation-engine hook: drop a quarantined peer's registrations."""
        evicted = 0
        for dn in self.control.all_dns:
            evicted += dn.unregister_peer(guid)
        return evicted

    # -------------------------------------------------------------- operation

    def start_download(self, peer: PeerNode, obj: ContentObject) -> DownloadSession:
        """Convenience wrapper for ``peer.start_download(obj)``."""
        return peer.start_download(obj)

    def run(self, until: Optional[float] = None) -> None:
        """Advance simulated time (see :meth:`repro.net.sim.Simulator.run`)."""
        self.sim.run(until=until)

    def finalize_open_downloads(self) -> int:
        """End-of-trace cleanup: abort paused/active sessions still open.

        Mirrors the trace semantics: a download paused and never resumed by
        the end of the measurement month counts as aborted (§5.2).  Returns
        the number of sessions finalized.
        """
        count = 0
        for peer in self.iter_peer_nodes():
            for session in list(peer.sessions.values()):
                if session.state in ("active", "paused"):
                    session.abort()
                    count += 1
        return count

    def audit(self, *, final: bool = True) -> list[InvariantViolation]:
        """Run the invariant checkers now and return the violation report.

        ``final=True`` (the default) includes the end-of-run reconciliation
        checkers; scenario and drill runners call this after the trace ends.
        Settles any pending flow mutations first so the feasibility checker
        sees a consistent allocation.  In strict mode an error-severity
        violation raises :class:`~repro.invariants.InvariantViolationError`.
        """
        self.flows.flush()
        return self.auditor.audit(final=final)

    # ------------------------------------------------------------- inspection

    def iter_peer_nodes(self) -> list[PeerNode]:
        """Live :class:`PeerNode` objects, in creation order.

        In object mode this is ``all_peers``.  With a columnar population
        attached it is the *materialized* nodes in column order followed by
        event-time extras (adopted clones) — the same relative order object
        mode produces, which order-sensitive sweeps (end-of-trace session
        finalization, stranded-peer reconnection) rely on for byte parity.
        """
        store = self.population_store
        if store is None:
            return list(self.all_peers)
        nodes = store.materialized_nodes()
        nodes.extend(p for p in self.all_peers if p._store_index is None)
        return nodes

    def peer_universe(self):
        """Every known peer — dormant column rows included — in creation order.

        Fault selection and population-wide sweeps draw from this sequence;
        with a columnar store it serves lazy handles, so scanning the
        universe does not materialize anyone.  Falls back to ``all_peers``
        for systems built without a population (unit tests, the fuzzer).
        """
        store = self.population_store
        if store is None:
            return list(self.all_peers)
        universe = list(store.handles())
        universe.extend(p for p in self.all_peers if p._store_index is None)
        return universe

    def peer_count_total(self) -> int:
        """Number of installations, dormant column rows included."""
        store = self.population_store
        if store is None:
            return len(self.all_peers)
        extras = sum(1 for p in self.all_peers if p._store_index is None)
        return len(store) + extras

    def online_peer_count(self) -> int:
        """Peers currently online."""
        return sum(1 for p in self.all_peers if p.online)

    def stats(self) -> SystemStats:
        """Snapshot the simulator and allocation-engine counters."""
        return SystemStats(
            now=self.sim.now,
            events_processed=self.sim.events_processed,
            sim_heap_pushes=self.sim.heap_pushes,
            sim_stale_pops=self.sim.stale_pops,
            pending_events=self.sim.pending_count(),
            peers=self.peer_count_total(),
            peers_online=self.online_peer_count(),
            active_flows=len(self.flows.active_flows),
            flows_completed=self.flows.completed_count,
            flows_aborted=self.flows.aborted_count,
            flows=self.flows.stats.snapshot(),
            channel=self.channel_stats.snapshot(),
            invariants=self.auditor.stats(),
            vod=self.vod.snapshot(),
            defense=self.defense.snapshot(self.reputation),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<NetSessionSystem peers={len(self.all_peers)} "
            f"objects={len(self.edge.catalog)} t={self.sim.now:.0f}s>"
        )
