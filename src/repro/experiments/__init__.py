"""One runner per paper table/figure; see DESIGN.md's experiment index.

Each ``exp_*`` module exposes ``run(scale, seed) -> ExperimentOutput``.
"""

from repro.experiments.common import ExperimentOutput, standard_config, standard_result

__all__ = ["ExperimentOutput", "standard_config", "standard_result", "ALL_EXPERIMENTS"]

#: Importable names of all experiment modules, for the run-everything example.
ALL_EXPERIMENTS = [
    "exp_table1", "exp_table2", "exp_table3", "exp_table4",
    "exp_fig2", "exp_fig3", "exp_fig4", "exp_fig5", "exp_fig6", "exp_fig7",
    "exp_fig8", "exp_fig9", "exp_fig10", "exp_fig11", "exp_fig12",
    "exp_offload", "exp_reliability", "exp_mobility",
    "exp_baselines", "exp_ablation_locality", "exp_ablation_backstop",
    "exp_lan_updates", "exp_ablation_prefetch", "exp_managed_swarm",
    "exp_fault_matrix", "exp_blackout_recovery",
]
