"""One runner per paper table/figure; see DESIGN.md's experiment index.

Each ``exp_*`` module exposes ``run(scale, seed) -> ExperimentOutput``.
Modules whose scenario needs differ from "one standard trace" also expose
``configs(scale, seed) -> list[ScenarioConfig]`` — the orchestrator's
prefetch planner (see :func:`planned_configs`) uses it to fan scenario
runs out across the process pool before the runners render serially.
"""

from repro.experiments.common import (
    ExperimentOutput, scenario_result, standard_config, standard_result,
)

__all__ = ["ExperimentOutput", "standard_config", "standard_result",
           "scenario_result", "planned_configs", "ALL_EXPERIMENTS"]

#: Importable names of all experiment modules, for the run-everything example.
ALL_EXPERIMENTS = [
    "exp_table1", "exp_table2", "exp_table3", "exp_table4",
    "exp_fig2", "exp_fig3", "exp_fig4", "exp_fig5", "exp_fig6", "exp_fig7",
    "exp_fig8", "exp_fig9", "exp_fig10", "exp_fig11", "exp_fig12",
    "exp_offload", "exp_reliability", "exp_mobility",
    "exp_baselines", "exp_ablation_locality", "exp_ablation_backstop",
    "exp_lan_updates", "exp_ablation_prefetch", "exp_managed_swarm",
    "exp_fault_matrix", "exp_blackout_recovery", "exp_vod_policies",
    "exp_adversarial_resilience", "exp_device_tiers",
]


def planned_configs(name: str, scale: str, seed: int) -> list:
    """The scenario configs one experiment will resolve, for prefetching.

    Uses the module's ``configs(scale, seed)`` planner when it defines
    one; the default is the single standard trace at the given scale.
    Self-contained experiments (those that build bespoke systems inline)
    declare an empty plan so the prefetch never runs a trace they will
    not read.
    """
    import importlib

    module = importlib.import_module(f"repro.experiments.{name}")
    planner = getattr(module, "configs", None)
    if planner is not None:
        return list(planner(scale, seed))
    return [standard_config(scale, seed)]
