"""Shared experiment machinery: standard scenarios, caching, output type.

Every table/figure runner draws on the same synthetic trace (like the
paper: one October-2012 log set feeds every analysis), so each distinct
scenario configuration is computed once and cached for the process.

Caching is *content-addressed*: results are keyed by the configuration's
fingerprint (:func:`repro.runner.fingerprint_config`), never by loose
``(scale, seed)`` pairs — two experiments tweaking different knobs of the
same scale can no longer collide on a shared stale entry.  The module
holds one process-wide artifact store (``_ARTIFACTS``) that survives
runner reconfiguration, and an :class:`~repro.runner.Orchestrator` in
front of it that the CLI points at a process pool and an on-disk cache
(``repro run/study --jobs N``); libraries and tests get the serial,
memory-only default.

Scales:

* ``small``  — seconds; used by the benchmark suite;
* ``standard`` — the calibrated flagship run (~1 min) used for
  EXPERIMENTS.md numbers;
* ``mobility`` — small population but long trace with mobility/cloning
  cranked up, for the §6.2 analyses that need many logins, and with a
  padded 239-territory world for Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.runner import Orchestrator, ResultCache, ScenarioArtifact
from repro.workload import (
    CatalogConfig, DemandConfig, PopulationConfig, ScenarioConfig,
)

__all__ = ["ExperimentOutput", "standard_config", "standard_result",
           "scenario_result", "prefetch", "cached_results", "SCALES",
           "configure_runner", "get_runner"]

SCALES = ("small", "standard", "mobility")

#: Process-wide artifact store, fingerprint-keyed.  Shared by every
#: orchestrator this module configures, so a CLI ``--jobs`` flag changes
#: scheduling without forgetting already-computed scenarios.
_ARTIFACTS: dict[str, ScenarioArtifact] = {}

#: The active orchestrator.  Default: serial, memory-only — library users
#: and the test suite get exactly the old semantics.  The CLI swaps it via
#: :func:`configure_runner`.
_RUNNER = Orchestrator(memory=_ARTIFACTS)


@dataclass
class ExperimentOutput:
    """What every experiment runner returns."""

    name: str
    text: str                      # rendered table/series, paper-style
    metrics: dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def get_runner() -> Orchestrator:
    """The orchestrator experiments currently resolve scenarios through."""
    return _RUNNER


def configure_runner(
    *, jobs: int = 1, cache: Optional[ResultCache] = None
) -> Orchestrator:
    """Swap the active orchestrator (keeping the process-wide memo).

    ``jobs`` sets the process-pool width for cache misses; ``cache``
    attaches an on-disk :class:`~repro.runner.ResultCache`.  Returns the
    new orchestrator.
    """
    global _RUNNER
    _RUNNER = Orchestrator(jobs=jobs, cache=cache, memory=_ARTIFACTS)
    return _RUNNER


def standard_config(scale: str = "small", seed: int = 42) -> ScenarioConfig:
    """The scenario configuration for a named scale."""
    if scale == "small":
        return ScenarioConfig(
            seed=seed,
            duration_days=3.0,
            population=PopulationConfig(n_peers=900),
            demand=DemandConfig(total_downloads=1100, duration_days=3.0),
            catalog=CatalogConfig(objects_per_provider=40),
        )
    if scale == "standard":
        return ScenarioConfig(
            seed=seed,
            duration_days=7.0,
            population=PopulationConfig(n_peers=3000),
            demand=DemandConfig(total_downloads=3500, duration_days=7.0),
        )
    if scale == "mobility":
        return ScenarioConfig(
            seed=seed,
            duration_days=10.0,
            extra_territories=197,  # core world has 42 countries; 239 total
            population=PopulationConfig(n_peers=1200),
            demand=DemandConfig(total_downloads=800, duration_days=10.0),
            catalog=CatalogConfig(objects_per_provider=30),
        )
    raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")


def scenario_result(config: ScenarioConfig) -> ScenarioArtifact:
    """Run (or fetch from the fingerprint-keyed cache) one scenario."""
    return _RUNNER.result(config)


def standard_result(scale: str = "small", seed: int = 42) -> ScenarioArtifact:
    """Run (or fetch from cache) the standard scenario at a scale."""
    return scenario_result(standard_config(scale, seed))


def prefetch(configs: list[ScenarioConfig]) -> list[ScenarioArtifact]:
    """Resolve many scenarios at once — the parallel fan-out entry point.

    Deduplicates by fingerprint and schedules the misses across the active
    orchestrator's process pool; the experiments that later ask for these
    configs render from cache hits, in whatever order the caller runs
    them.  Returns the artifacts in input order.
    """
    return _RUNNER.run_many(configs)


def cached_results() -> dict[str, ScenarioArtifact]:
    """The scenario artifacts computed so far, keyed by config fingerprint.

    Lets callers (e.g. ``repro run --perf``) report perf counters for the
    scenarios a batch of experiments actually ran, without re-running them.
    """
    return _RUNNER.cached()
