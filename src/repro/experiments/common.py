"""Shared experiment machinery: standard scenarios, caching, output type.

Every table/figure runner draws on the same synthetic trace (like the
paper: one October-2012 log set feeds every analysis), so the scenario
result is computed once per (scale, seed) and cached for the process.

Scales:

* ``small``  — seconds; used by the benchmark suite;
* ``standard`` — the calibrated flagship run (~1 min) used for
  EXPERIMENTS.md numbers;
* ``mobility`` — small population but long trace with mobility/cloning
  cranked up, for the §6.2 analyses that need many logins, and with a
  padded 239-territory world for Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workload import (
    BehaviorConfig, CatalogConfig, DemandConfig, PopulationConfig,
    ScenarioConfig, ScenarioResult, run_scenario,
)

__all__ = ["ExperimentOutput", "standard_config", "standard_result",
           "cached_results", "SCALES"]

SCALES = ("small", "standard", "mobility")

_CACHE: dict[tuple[str, int], ScenarioResult] = {}


@dataclass
class ExperimentOutput:
    """What every experiment runner returns."""

    name: str
    text: str                      # rendered table/series, paper-style
    metrics: dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def standard_config(scale: str = "small", seed: int = 42) -> ScenarioConfig:
    """The scenario configuration for a named scale."""
    if scale == "small":
        return ScenarioConfig(
            seed=seed,
            duration_days=3.0,
            population=PopulationConfig(n_peers=900),
            demand=DemandConfig(total_downloads=1100, duration_days=3.0),
            catalog=CatalogConfig(objects_per_provider=40),
        )
    if scale == "standard":
        return ScenarioConfig(
            seed=seed,
            duration_days=7.0,
            population=PopulationConfig(n_peers=3000),
            demand=DemandConfig(total_downloads=3500, duration_days=7.0),
        )
    if scale == "mobility":
        return ScenarioConfig(
            seed=seed,
            duration_days=10.0,
            extra_territories=197,  # core world has 42 countries; 239 total
            population=PopulationConfig(n_peers=1200),
            demand=DemandConfig(total_downloads=800, duration_days=10.0),
            catalog=CatalogConfig(objects_per_provider=30),
        )
    raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")


def standard_result(scale: str = "small", seed: int = 42) -> ScenarioResult:
    """Run (or fetch from cache) the standard scenario at a scale."""
    key = (scale, seed)
    if key not in _CACHE:
        _CACHE[key] = run_scenario(standard_config(scale, seed))
    return _CACHE[key]


def cached_results() -> dict[tuple[str, int], ScenarioResult]:
    """The scenario results computed so far, keyed by (scale, seed).

    Lets callers (e.g. ``repro run --perf``) report perf counters for the
    scenarios a batch of experiments actually ran, without re-running them.
    """
    return dict(_CACHE)
