"""Ablation: the edge backstop policy on vs off.

With the backstop policy disabled the edge connection runs at full fair
share in every download — QoS is maximal but offload collapses, which is
why NetSession throttles its infrastructure connection when the peers are
delivering (§3.3's "cover the difference" behaviour, inverted).
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import offload_summary, pct, render_table
from repro.experiments.common import (
    ExperimentOutput, scenario_result, standard_config, standard_result,
)


def _backstop_off_config(scale: str, seed: int):
    cfg = standard_config(scale, seed)
    return replace(
        cfg, system=cfg.system.with_client(edge_backstop_enabled=False)
    )


def configs(scale: str, seed: int) -> list:
    """Scenario plan: the standard trace plus the backstop-off rerun."""
    return [standard_config(scale, seed), _backstop_off_config(scale, seed)]


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Compare offload and speed with the backstop policy on/off."""
    on = standard_result(scale, seed)
    off = scenario_result(_backstop_off_config(scale, seed))

    rows = []
    metrics = {}
    for label, result in (("backstop on", on), ("backstop off", off)):
        summary = offload_summary(result.logstore)
        completed = [r for r in result.logstore.downloads if r.outcome == "completed"]
        speeds = sorted(r.average_speed_bps() * 8 / 1e6 for r in completed)
        median = speeds[len(speeds) // 2] if speeds else 0.0
        rows.append((label, pct(summary.mean_peer_efficiency),
                     pct(summary.byte_weighted_efficiency), f"{median:.1f} Mbps"))
        key = label.replace(" ", "_")
        metrics[f"{key}_efficiency"] = summary.mean_peer_efficiency
        metrics[f"{key}_median_speed"] = median
    text = render_table(
        "Ablation: edge backstop policy",
        ["policy", "mean peer eff", "byte-weighted eff", "median speed"],
        rows,
    )
    return ExperimentOutput(name="ablation_backstop", text=text, metrics=metrics)
