"""Ablation: locality-aware vs random peer selection (§6.1 / §7).

The paper credits NetSession's small ISP impact to "a simple locality-aware
peer selection strategy".  This ablation re-runs the scenario with random
selection and compares how much of the p2p traffic stays within the
downloader's AS, country, and region.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import pct, render_table
from repro.analysis.traffic import locality_shares
from repro.experiments.common import (
    ExperimentOutput, scenario_result, standard_config, standard_result,
)


def _random_config(scale: str, seed: int):
    return replace(standard_config(scale, seed),
                   locality_aware_selection=False)


def configs(scale: str, seed: int) -> list:
    """Scenario plan: the standard trace plus the random-selection rerun."""
    return [standard_config(scale, seed), _random_config(scale, seed)]


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Compare traffic locality shares across selection policies."""
    local = standard_result(scale, seed)
    random_result = scenario_result(_random_config(scale, seed))

    rows = []
    metrics = {}
    for label, result in (("locality-aware", local), ("random", random_result)):
        shares = locality_shares(result.logstore, result.geodb)
        rows.append((label, pct(shares["intra_as"]),
                     pct(shares["intra_country"]), pct(shares["intra_region"])))
        key = label.replace("-", "_")
        metrics[f"{key}_intra_as"] = shares["intra_as"]
        metrics[f"{key}_intra_country"] = shares["intra_country"]
        metrics[f"{key}_intra_region"] = shares["intra_region"]
    text = render_table(
        "Ablation: peer-selection locality (p2p byte shares staying local)",
        ["policy", "intra-AS", "intra-country", "intra-region"],
        rows,
    )
    gain = (metrics["locality_aware_intra_country"]
            - metrics["random_intra_country"])
    metrics["locality_gain"] = gain
    return ExperimentOutput(
        name="ablation_locality",
        text=text + f"\n\nlocality raises intra-country share by {100 * gain:.1f} points",
        metrics=metrics,
    )
