"""Ablation: predictive placement on a cold-started deployment.

Paper §5.2: "NetSession does not use predictive caching."  This ablation
measures what that choice costs on a cold start — a trace with no pre-trace
cached copies — by re-running it with the placement policy prefetching hot
objects into thin regions.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import offload_summary, pct, render_table
from repro.experiments.common import (
    ExperimentOutput, scenario_result, standard_config,
)


def _cold_config(scale: str, seed: int):
    return replace(standard_config(scale, seed), warm_copies_per_peer=0.0)


def configs(scale: str, seed: int) -> list:
    """Scenario plan: the cold start with and without predictive placement."""
    base = _cold_config(scale, seed)
    return [base, replace(base, predictive_placement=True)]


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Cold-start offload with and without predictive placement."""
    base = _cold_config(scale, seed)
    cold = scenario_result(base)
    prefetching = scenario_result(replace(base, predictive_placement=True))

    rows = []
    metrics = {}
    for label, result in (("no placement (NetSession)", cold),
                          ("predictive placement", prefetching)):
        user_logs = [r for r in result.logstore.downloads if not r.prefetch]
        p2p = [r for r in user_logs if r.p2p_enabled and r.outcome == "completed"]
        peer = sum(r.peer_bytes for r in p2p)
        total = sum(r.total_bytes for r in p2p)
        prefetch_bytes = sum(r.total_bytes for r in result.logstore.downloads
                             if r.prefetch)
        eff = peer / total if total else 0.0
        rows.append((label, pct(eff), f"{prefetch_bytes / 1e9:.1f} GB"))
        key_name = "placement" if "predictive" in label else "cold"
        metrics[f"{key_name}_efficiency"] = eff
        metrics[f"{key_name}_prefetch_gb"] = prefetch_bytes / 1e9
    text = render_table(
        "Ablation: predictive placement on a cold start",
        ["policy", "user-download peer efficiency", "placement traffic"],
        rows,
    )
    gain = metrics["placement_efficiency"] - metrics["cold_efficiency"]
    metrics["placement_gain"] = gain
    return ExperimentOutput(
        name="ablation_prefetch",
        text=text + f"\n\nplacement raises cold-start efficiency by {100 * gain:.1f} points",
        metrics=metrics,
    )
