"""Experiment: adversarial resilience — misbehaving peers vs. the defense.

The paper's §5/§6.2 robustness claim is that NetSession operates a
peer-assisted CDN on *untrusted* client machines: hash verification keeps
corrupted pieces out, edge-log cross-checks keep inflated usage reports
out of billing.  This experiment turns that claim into a measured sweep —
a fixed workload is re-run with 0%, 10%, and 25% of the population
converted to the five :mod:`repro.adversary` misbehavior profiles, with
the reputation/quarantine defense off and on, and reports:

* **peer offload** per cell, and the defense-on *retention* relative to
  the clean run (acceptance bar: >= 90% retained at 10% adversaries,
  while defense-off degrades measurably);
* **wasted bytes**: corrupted-piece traffic the downloaders had to
  discard and re-fetch;
* **detection quality**: quarantines vs. ground truth, including the
  false-positive ban rate (honest peers wrongly quarantined);
* **billing integrity**: inflated usage reports accepted (must be zero —
  the cross-check, not the reputation layer, carries that invariant).

Each cell is one deterministic scenario; cells differ only in the
``adversary`` leaf and the ``defense`` flag, so within a fraction the
defense-off and defense-on populations are identical peer for peer.
"""

from __future__ import annotations

from repro.adversary.profiles import AdversaryConfig
from repro.analysis.report import pct, render_table
from repro.core.config import SystemConfig
from repro.experiments.common import ExperimentOutput, scenario_result
from repro.workload import (
    CatalogConfig, DemandConfig, PopulationConfig, ScenarioConfig,
)

MB = 1024 * 1024

#: The swept adversarial fractions (0.0 = the clean baseline cell).
FRACTIONS = (0.0, 0.10, 0.25)

#: One profile mix for every adversarial cell: all five profiles, with the
#: damage-dealing ones (corrupter, slow-loris) weighted up so defense-off
#: degradation is visible even at the compact experiment scale.
ADVERSARY = AdversaryConfig(
    fraction=0.0,  # per-cell override
    profile_mix=(2.0, 1.0, 1.0, 1.0, 2.0),
    corruption_prob=0.5,
    slow_factor=0.02,
)


def _cells() -> list[tuple[float, bool]]:
    """The sweep plan: clean baseline, then each fraction with defense
    off and on."""
    cells = [(0.0, False)]
    for fraction in FRACTIONS[1:]:
        cells.append((fraction, False))
        cells.append((fraction, True))
    return cells


def configs(scale: str, seed: int) -> list:
    """Scenario plan: one cell per (fraction, defense) sweep point."""
    return [_cell_config(scale, seed, fraction, defense)
            for fraction, defense in _cells()]


def _cell_config(scale: str, seed: int, fraction: float,
                 defense: bool) -> ScenarioConfig:
    if scale == "standard":
        n_peers, downloads, days = 700, 900, 2.0
    else:
        n_peers, downloads, days = 260, 420, 1.5
    adversary = None
    if fraction > 0:
        adversary = AdversaryConfig(
            fraction=fraction,
            profile_mix=ADVERSARY.profile_mix,
            corruption_prob=ADVERSARY.corruption_prob,
            slow_factor=ADVERSARY.slow_factor,
        )
    return ScenarioConfig(
        seed=seed,
        duration_days=days,
        population=PopulationConfig(n_peers=n_peers),
        demand=DemandConfig(total_downloads=downloads, duration_days=days),
        catalog=CatalogConfig(objects_per_provider=8),
        adversary=adversary,
        system=SystemConfig().with_defense(enabled=defense),
    )


def _offload(logstore) -> float:
    """Peer bytes as a fraction of all delivered bytes, across the trace."""
    peer = sum(rec.peer_bytes for rec in logstore.downloads)
    total = sum(rec.peer_bytes + rec.edge_bytes for rec in logstore.downloads)
    return peer / total if total else 0.0


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Sweep adversarial fraction x defense on/off over one workload."""
    rows = []
    metrics: dict[str, float] = {}
    offloads: dict[tuple[float, bool], float] = {}
    for fraction, defense in _cells():
        result = scenario_result(_cell_config(scale, seed, fraction, defense))
        adv = result.adversary
        offload = _offload(result.logstore)
        offloads[(fraction, defense)] = offload
        records = list(result.logstore.downloads)
        completed = sum(1 for r in records if r.outcome == "completed")
        completion = completed / len(records) if records else 0.0
        durations = [r.ended_at - r.started_at for r in records
                     if r.outcome == "completed"]
        mean_duration = sum(durations) / len(durations) if durations else 0.0
        peer_bytes = sum(r.peer_bytes for r in records)
        wasted = adv.get("corrupted_bytes_wasted", 0)
        # Corrupted pieces are discarded and re-fetched, so every wasted
        # byte is pure overhead on top of the useful peer traffic.
        wasted_fraction = wasted / (peer_bytes + wasted) if peer_bytes else 0.0

        tag = f"f{int(fraction * 100):02d}_{'on' if defense else 'off'}"
        metrics[f"offload_{tag}"] = offload
        metrics[f"completion_{tag}"] = completion
        metrics[f"mean_duration_{tag}"] = mean_duration
        metrics[f"wasted_fraction_{tag}"] = wasted_fraction
        metrics[f"corrupted_mb_{tag}"] = adv.get(
            "corrupted_bytes_wasted", 0) / MB
        metrics[f"inflated_accepted_{tag}"] = adv.get(
            "inflated_reports_accepted", 0)
        if defense:
            metrics[f"quarantines_{tag}"] = adv.get("quarantined_peers", 0)
            metrics[f"fp_ban_rate_{tag}"] = adv.get(
                "false_positive_ban_rate", 0.0)
        rows.append([
            pct(fraction),
            "on" if defense else "off",
            len(records),
            pct(completion),
            pct(offload),
            f"{wasted / MB:.0f}",
            pct(wasted_fraction),
            f"{mean_duration:.0f}s",
            adv.get("quarantined_peers", 0) if defense else "-",
            pct(adv.get("false_positive_ban_rate", 0.0)) if defense else "-",
            adv.get("inflated_reports_accepted", 0) if fraction else "-",
        ])

    clean = offloads[(0.0, False)]
    for fraction in FRACTIONS[1:]:
        tag = f"f{int(fraction * 100):02d}"
        if clean > 0:
            metrics[f"retention_{tag}_off"] = offloads[(fraction, False)] / clean
            metrics[f"retention_{tag}_on"] = offloads[(fraction, True)] / clean
    metrics["inflated_accepted_total"] = sum(
        v for k, v in metrics.items() if k.startswith("inflated_accepted_"))

    text = render_table(
        "adversarial resilience: fraction x defense sweep "
        f"(corruption p={ADVERSARY.corruption_prob}, "
        f"slow factor {ADVERSARY.slow_factor})",
        ["adversaries", "defense", "downloads", "completion", "peer offload",
         "corrupt MB", "wasted", "mean dl time", "quarantined", "FP ban rate",
         "inflated accepted"],
        rows,
    )
    lines = [text, ""]
    for fraction in FRACTIONS[1:]:
        tag = f"f{int(fraction * 100):02d}"
        off = metrics.get(f"retention_{tag}_off", 0.0)
        on = metrics.get(f"retention_{tag}_on", 0.0)
        lines.append(
            f"offload retention at {pct(fraction)} adversaries: "
            f"defense off {pct(off)}, defense on {pct(on)} "
            f"(clean baseline {pct(clean)} offload)")
        lines.append(
            f"wasted peer traffic at {pct(fraction)} adversaries: "
            f"defense off {pct(metrics[f'wasted_fraction_{tag}_off'])}, "
            f"defense on {pct(metrics[f'wasted_fraction_{tag}_on'])}")
    lines.append(
        f"inflated reports accepted across all cells: "
        f"{metrics['inflated_accepted_total']:.0f} (edge-log cross-check)")
    return ExperimentOutput(
        name="adversarial_resilience",
        text="\n".join(lines),
        metrics=metrics,
    )
