"""Experiment: hybrid vs pure-infrastructure vs pure-P2P (§2's design space).

Not a paper table, but the comparison the whole paper argues: the hybrid
keeps infrastructure-grade reliability while offloading most bytes, where
the pure architectures each sacrifice one side.
"""

from __future__ import annotations

from repro.analysis import pct, render_table
from repro.baselines import P2PConfig, P2PPeer, PureP2PSwarm, infrastructure_cost
from repro.experiments.common import (
    ExperimentOutput, scenario_result, standard_config, standard_result,
)
from dataclasses import replace


def _infra_config(scale: str, seed: int):
    cfg = standard_config(scale, seed)
    return replace(cfg, system=replace(cfg.system, p2p_globally_enabled=False))


def configs(scale: str, seed: int) -> list:
    """Scenario plan: the hybrid standard trace plus the p2p-off rerun."""
    return [standard_config(scale, seed), _infra_config(scale, seed)]


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Compare the three architectures on the same workload scale."""
    # Hybrid: the cached standard scenario.
    hybrid = standard_result(scale, seed)
    hybrid_cost = infrastructure_cost(hybrid.logstore)
    hybrid_completed = hybrid_cost.completion_rate

    # Pure infrastructure: same scenario, p2p globally off.
    infra = scenario_result(_infra_config(scale, seed))
    infra_cost_rep = infrastructure_cost(infra.logstore)

    # Pure P2P: a BitTorrent-like swarm on an equivalent object, with the
    # same churn-prone population and no backstop.
    swarm = PureP2PSwarm(P2PConfig(), seed=seed)
    import random
    rng = random.Random(seed)
    seeders = [P2PPeer(f"seed{i}", up_bps=2e6 / 8, down_bps=2e7 / 8) for i in range(3)]
    torrent = swarm.add_torrent("installer", 800e6, seeders)
    leechers = []
    for i in range(60):
        free = rng.random() < 0.69  # NetSession-like contribution mix
        peer = P2PPeer(f"leech{i}", up_bps=rng.uniform(0.5e6, 4e6) / 8,
                       down_bps=rng.uniform(4e6, 40e6) / 8, free_rider=free)
        leechers.append(swarm.start_download(torrent, peer))
    swarm.run(12 * 3600)
    p2p_stats = swarm.completion_stats(torrent)

    rows = [
        ("hybrid (NetSession)", pct(hybrid_completed),
         pct(1.0 - hybrid_cost.edge_share)),
        ("pure infrastructure", pct(infra_cost_rep.completion_rate),
         pct(1.0 - infra_cost_rep.edge_share)),
        ("pure p2p (BitTorrent-like)", pct(p2p_stats["completed"]), "100.0%"),
    ]
    text = render_table(
        "Design space: completion vs offload",
        ["architecture", "completion rate", "bytes offloaded from infra"],
        rows,
    )
    return ExperimentOutput(
        name="baselines",
        text=text,
        metrics={
            "hybrid_completion": hybrid_completed,
            "hybrid_offload": 1.0 - hybrid_cost.edge_share,
            "infra_completion": infra_cost_rep.completion_rate,
            "infra_offload": 1.0 - infra_cost_rep.edge_share,
            "pure_p2p_completion": p2p_stats["completed"],
        },
    )
