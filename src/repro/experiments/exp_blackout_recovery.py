"""Experiment: blackout recovery — probe-driven return from edge-only mode.

The §3.8 story the control channel makes measurable: a 10-minute total
control-plane blackout hits a small fleet mid-download, with *self
recovery* enabled — the restore brings the servers back but schedules no
reconnections, so every peer must find its own way home through the
channel's breaker probes.  The experiment verifies the acceptance bar of
the reliability layer:

* every peer whose breaker tripped is back in hybrid mode within one
  probe interval of the restore;
* the robustness counters show non-zero time-to-recover and
  degraded-seconds;
* downloads that *started inside* the blackout (edge-only from their
  first byte) are promoted back to hybrid mid-transfer and end with
  peer bytes on the wire.

Links are pinned to fixed speeds (not sampled) so the wave timing is
insensitive to the broadband mix: the during-blackout downloads are
provably still in flight when the probes succeed.
"""

from __future__ import annotations

from repro.analysis.report import pct, render_table
from repro.core.config import SystemConfig
from repro.core.content import ContentObject, ContentProvider
from repro.core.peer import CacheEntry, PeerNode
from repro.core.system import NetSessionSystem
from repro.experiments.common import ExperimentOutput
from repro.faults.injector import FaultInjector
from repro.faults.spec import ControlPlaneBlackout
from repro.net.flows import Resource
from repro.net.links import AccessLink, mbps

MB = 1024 * 1024

#: Blackout window: 10 minutes starting at t=600s.
FAULT_AT = 600.0
FAULT_DURATION = 600.0

WAVES = ("before", "during", "after")
#: First download of each wave, seconds (subsequent ones stagger by 30s).
WAVE_TIMES = {
    "before": 300.0,                            # hybrid when the fault hits
    "during": FAULT_AT + 100.0,                 # edge-only from byte one
    "after": FAULT_AT + FAULT_DURATION + 300.0, # control plane healthy again
}


def _pin_link(peer: PeerNode, down_mbps: float, up_mbps: float) -> None:
    """Replace the sampled access link with a fixed-speed one."""
    owner = f"pin-{peer.guid[:8]}"
    peer.link = AccessLink(
        downlink=Resource(f"{owner}/down", mbps(down_mbps)),
        uplink=Resource(f"{owner}/up", mbps(up_mbps)),
        tier="pinned",
    )



def configs(scale: str, seed: int) -> list:
    """Scenario plan: self-contained (builds its own system inline)."""
    return []


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """One 10-minute self-recovery blackout against a pinned-link fleet."""
    wave_size = 8 if scale == "standard" else 4
    n_seeders = 24 if scale == "standard" else 12

    # A short soft-state TTL makes the seeders' periodic refresh (ttl/3)
    # land inside the blackout window: their refresh RPCs fail, trip the
    # breaker, and the recovery probes re-register them minutes — not
    # hours — after the restore, which is what repopulates the directory
    # for the promoted mid-blackout downloads.
    config = SystemConfig().with_control_plane(registration_ttl=900.0)
    system = NetSessionSystem(config=config, seed=seed)
    cfg = system.config.channel
    provider = ContentProvider(cp_code=9002, name="BlackoutCo")
    # 3 GB at the pinned 20 Mbit/s downlink needs ~20 min edge-only, so a
    # download started inside the 10-minute blackout is still in flight
    # when the probes fire.
    obj = ContentObject("blackoutco/restore.bin", 3 * 1024 * MB, provider,
                        p2p_enabled=True)
    system.publish(obj)

    country = system.world.by_code["DE"]
    for _ in range(n_seeders):
        seeder = system.create_peer(country=country, uploads_enabled=True)
        _pin_link(seeder, down_mbps=30.0, up_mbps=10.0)
        seeder.cache[obj.cid] = CacheEntry(obj.cid, completed_at=0.0)
        seeder.boot()

    blackout = ControlPlaneBlackout(
        "blackout", start=FAULT_AT, duration=FAULT_DURATION,
        self_recovery=True,
    )
    injector = FaultInjector(system, (blackout,), seed=seed)
    injector.arm()

    sessions: dict[str, list] = {w: [] for w in WAVES}
    downloaders: list[PeerNode] = []

    def start_wave(wave: str, peer: PeerNode) -> None:
        if peer.online:
            sessions[wave].append(peer.start_download(obj))

    for wave in WAVES:
        for i in range(wave_size):
            peer = system.create_peer(country=country, uploads_enabled=True)
            _pin_link(peer, down_mbps=20.0, up_mbps=4.0)
            peer.boot()
            downloaders.append(peer)
            system.sim.schedule_at(
                WAVE_TIMES[wave] + 30.0 * i,
                lambda w=wave, p=peer: start_wave(w, p),
            )

    horizon = 4 * 3600.0
    system.run(until=horizon)
    system.finalize_open_downloads()

    # ---- recovery latency: probe-driven return after the restore ----------
    restore_t = FAULT_AT + FAULT_DURATION
    tripped = [p for p in system.all_peers if p.channel.times_degraded > 0]
    recovered = [p for p in tripped if p.channel.last_recovered_at is not None]
    lags = [p.channel.last_recovered_at - restore_t for p in recovered]
    max_lag = max(lags) if lags else 0.0
    all_within_probe = (
        len(recovered) == len(tripped)
        and all(lag <= cfg.probe_interval for lag in lags)
    )

    stats = system.channel_stats
    during = sessions["during"]
    promoted_with_peer_bytes = sum(1 for s in during if s.peer_bytes > 0)

    rows = []
    metrics: dict[str, float] = {}
    for wave in WAVES:
        batch = sessions[wave]
        n = len(batch)
        completed = sum(1 for s in batch if s.state == "completed")
        hybrid = sum(1 for s in batch if s.peer_bytes > 0)
        mean_pf = (sum(s.peer_fraction for s in batch) / n) if n else 0.0
        rows.append([wave, n, completed, hybrid, pct(mean_pf)])
        metrics[f"{wave}_downloads"] = n
        metrics[f"{wave}_completed"] = completed
        metrics[f"{wave}_hybrid"] = hybrid
    text = render_table(
        f"blackout recovery: {FAULT_DURATION / 60:.0f}-minute self-recovery "
        f"blackout at t={FAULT_AT:.0f}s (probe interval "
        f"{cfg.probe_interval:.0f}s)",
        ["wave", "downloads", "completed", "hybrid", "peer eff."],
        rows,
    )

    robustness = [
        ["peers tripped to degraded", len(tripped)],
        ["peers recovered", len(recovered)],
        ["max recovery lag after restore", f"{max_lag:.1f}s"],
        ["all back within one probe interval", "yes" if all_within_probe else "NO"],
        ["breaker trips", stats.breaker_trips],
        ["probes (failed)", f"{stats.probes} ({stats.probe_failures})"],
        ["degraded seconds", f"{stats.degraded_seconds:.1f}"],
        ["mean time to recover", f"{stats.mean_time_to_recover:.1f}s"],
        ["sessions promoted to hybrid", stats.sessions_promoted],
        ["blackout-started downloads with peer bytes",
         f"{promoted_with_peer_bytes}/{len(during)}"],
    ]
    text += "\n\n" + render_table(
        "control-channel robustness (§3.8)", ["metric", "value"], robustness,
    )

    metrics.update({
        "peers_tripped": len(tripped),
        "peers_recovered": len(recovered),
        "max_recovery_lag": max_lag,
        "all_within_probe_interval": 1.0 if all_within_probe else 0.0,
        "breaker_trips": stats.breaker_trips,
        "degraded_seconds": stats.degraded_seconds,
        "mean_time_to_recover": stats.mean_time_to_recover,
        "sessions_promoted": stats.sessions_promoted,
        "during_with_peer_bytes": promoted_with_peer_bytes,
    })
    return ExperimentOutput(name="blackout_recovery", text=text, metrics=metrics)
