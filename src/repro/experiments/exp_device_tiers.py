"""Experiment: heterogeneous device tiers — smartrouter offload capture.

ROADMAP item 4 asks two questions the homogeneous-desktop population
cannot answer:

* **Offload capture** — what share of the peer-delivered bytes does a
  small always-on smartrouter tier carry?  The smartrouter-CDN
  measurement literature says such fleets dominate real deployments; here
  the tier's *byte share* is compared against its *population share* (a
  capture ratio > 1 means the tier punches above its weight).
* **Selection shift** — how does class- and reputation-aware candidate
  ranking move Figure 4's speed distribution?  Ranking smartrouters first
  (reputation score breaking ties within a class) should shift the
  peer-assisted speed CDF by steering downloads toward stable, open-NAT
  uploaders.

The sweep holds one workload fixed and varies only the device leaves:

1. ``baseline`` — no device mix (the homogeneous desktop population);
2. ``tiers`` — the default mix (62% desktop, 8% smartrouter, 22% mobile,
   8% settop) with class-blind selection;
3. ``tiers_rank`` — same mix, smartrouters ranked first in candidate
   selection;
4. ``tiers_rank_rep`` — ranking plus the PR 8 reputation engine (class
   dominates, contribution score breaks ties);
5. ``tiers_placement`` — class-blind selection but operator prefetch
   placement steered onto the smartrouter fleet (§5.2's missing feature,
   scoped to hardware the operator controls).
"""

from __future__ import annotations

from repro.analysis import busiest_ases, figure4_speed_cdfs, percentile
from repro.analysis.report import pct, render_table
from repro.core.config import SystemConfig
from repro.core.placement import PlacementConfig
from repro.experiments.common import ExperimentOutput, scenario_result
from repro.workload import (
    CatalogConfig, DemandConfig, PopulationConfig, ScenarioConfig,
)
from repro.workload.devices import DeviceClass, DeviceMixConfig, default_mix

MB = 1024 * 1024

#: The tier whose capture the experiment measures.
ROUTER = "smartrouter"


def _ranked_mix() -> DeviceMixConfig:
    """The default mix with the smartrouter tier ranked first."""
    classes = tuple(
        DeviceClass(**{**cls.__dict__, "selection_weight": 1.0})
        if cls.name == ROUTER else cls
        for cls in default_mix().classes
    )
    return DeviceMixConfig(classes=classes)


def _cells() -> list[tuple[str, DeviceMixConfig | None, bool, bool]]:
    """(tag, device mix, defense on, router placement) per sweep cell."""
    return [
        ("baseline", None, False, False),
        ("tiers", default_mix(), False, False),
        ("tiers_rank", _ranked_mix(), False, False),
        ("tiers_rank_rep", _ranked_mix(), True, False),
        ("tiers_placement", default_mix(), False, True),
    ]


def configs(scale: str, seed: int) -> list:
    """Scenario plan: one cell per device-tier sweep point."""
    return [_cell_config(scale, seed, mix, defense, placement)
            for _, mix, defense, placement in _cells()]


def _cell_config(scale: str, seed: int, mix: DeviceMixConfig | None,
                 defense: bool, placement: bool) -> ScenarioConfig:
    if scale == "standard":
        n_peers, downloads, days = 700, 900, 2.0
    else:
        n_peers, downloads, days = 300, 450, 1.5
    return ScenarioConfig(
        seed=seed,
        duration_days=days,
        population=PopulationConfig(n_peers=n_peers, device=mix),
        demand=DemandConfig(total_downloads=downloads, duration_days=days),
        catalog=CatalogConfig(objects_per_provider=8),
        system=SystemConfig().with_defense(enabled=defense),
        placement=(PlacementConfig(prefer_class=ROUTER, copies_target=4)
                   if placement else None),
    )


def _offload(logstore) -> float:
    """Peer bytes as a fraction of all delivered bytes, across the trace."""
    peer = sum(rec.peer_bytes for rec in logstore.downloads)
    total = sum(rec.peer_bytes + rec.edge_bytes for rec in logstore.downloads)
    return peer / total if total else 0.0


def _class_bytes(logstore, classes: dict[str, str]) -> dict[str, int]:
    """Peer-uploaded bytes per device class, attributed uploader by
    uploader through ``DownloadRecord.per_uploader_bytes``."""
    out: dict[str, int] = {}
    for rec in logstore.downloads:
        for guid, nbytes in rec.per_uploader_bytes.items():
            name = classes.get(guid, "desktop")
            out[name] = out.get(name, 0) + nbytes
    return out


def _pooled_p2p_median(result) -> tuple[float, int]:
    """Median peer-assisted download speed (Mbps) pooled over busy ASes."""
    ases = busiest_ases(result.logstore, result.geodb, n=10)
    pooled: list[float] = []
    for asn in ases:
        cdfs = figure4_speed_cdfs(result.logstore, result.geodb, asn)
        pooled.extend(v for v, _ in cdfs["p2p_heavy"])
        if len(pooled) >= 20:
            break
    if not pooled:
        return 0.0, 0
    return percentile(pooled, 50), len(pooled)


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Sweep device mixes, selection ranking, and router placement."""
    rows = []
    metrics: dict[str, float] = {}
    p2p_medians: dict[str, float] = {}
    for tag, mix, defense, placement in _cells():
        result = scenario_result(
            _cell_config(scale, seed, mix, defense, placement))
        records = list(result.logstore.downloads)
        offload = _offload(result.logstore)
        census = result.devices.get("census", {})
        classes = result.devices.get("classes", {})
        total_peers = sum(census.values())
        router_pop_share = (census.get(ROUTER, 0) / total_peers
                            if total_peers else 0.0)
        by_class = _class_bytes(result.logstore, classes)
        peer_total = sum(by_class.values())
        router_byte_share = (by_class.get(ROUTER, 0) / peer_total
                             if peer_total else 0.0)
        capture = (router_byte_share / router_pop_share
                   if router_pop_share else 0.0)
        median_p2p, n_p2p = _pooled_p2p_median(result)
        p2p_medians[tag] = median_p2p

        metrics[f"offload_{tag}"] = offload
        metrics[f"router_pop_share_{tag}"] = router_pop_share
        metrics[f"router_byte_share_{tag}"] = router_byte_share
        metrics[f"router_capture_{tag}"] = capture
        metrics[f"median_p2p_mbps_{tag}"] = median_p2p
        rows.append([
            tag,
            len(records),
            pct(offload),
            pct(router_pop_share) if mix is not None else "-",
            pct(router_byte_share) if mix is not None else "-",
            f"{capture:.2f}x" if mix is not None else "-",
            f"{median_p2p:.1f}" if n_p2p else "-",
        ])

    # The two ROADMAP answers, as headline metrics.
    metrics["router_capture_ratio"] = metrics.get("router_capture_tiers", 0.0)
    base_med = p2p_medians.get("tiers", 0.0)
    rank_med = p2p_medians.get("tiers_rank", 0.0)
    metrics["fig4_p2p_median_shift"] = (
        rank_med / base_med if base_med > 0 else 0.0)
    metrics["placement_capture_gain"] = (
        metrics.get("router_capture_tiers_placement", 0.0)
        - metrics.get("router_capture_tiers", 0.0))

    text = render_table(
        "device tiers: offload capture and selection-shift sweep",
        ["cell", "downloads", "peer offload", "router pop %",
         "router byte %", "capture", "p2p median Mbps"],
        rows,
    )
    lines = [text, ""]
    lines.append(
        f"smartrouter capture (class-blind): {pct(metrics['router_byte_share_tiers'])} "
        f"of peer bytes from {pct(metrics['router_pop_share_tiers'])} of installs "
        f"= {metrics['router_capture_ratio']:.2f}x its population share")
    lines.append(
        f"Fig 4 p2p median with ranking: {rank_med:.1f} Mbps vs {base_med:.1f} "
        f"class-blind ({metrics['fig4_p2p_median_shift']:.2f}x shift; "
        f"reputation-tied cell {p2p_medians.get('tiers_rank_rep', 0.0):.1f} Mbps)")
    lines.append(
        f"operator placement on the router fleet moves capture by "
        f"{metrics['placement_capture_gain']:+.2f}x")
    return ExperimentOutput(
        name="device_tiers",
        text="\n".join(lines),
        metrics=metrics,
    )
