"""Experiment: fault matrix — scenario sweep vs the §5.2 outcome numbers."""

from __future__ import annotations

import dataclasses

from repro.analysis import pct, render_table, window_outcomes
from repro.analysis.faults import fault_impact
from repro.experiments.common import (
    ExperimentOutput, scenario_result, standard_config,
)
from repro.faults.scenarios import build_scenario
from repro.workload import (
    CatalogConfig, DemandConfig, PopulationConfig, ScenarioConfig,
)

#: Paper §5.2 under normal operation: peer-assisted downloads complete 92%
#: of the time; the fault matrix measures how far each scenario pushes the
#: in-window outcome split away from that healthy baseline.
PAPER_P2P_COMPLETED = 0.92

#: Scenarios swept against the no-fault baseline.  A subset of the library:
#: the §3.8 robustness cases plus the two degradation modes that stress the
#: data plane rather than the control plane.
MATRIX_SCENARIOS = (
    "control_plane_blackout",
    "cn_flap",
    "dn_wipe",
    "edge_brownout",
    "churn_storm",
)

DAY = 86_400.0


def _matrix_config(scale: str, seed: int) -> ScenarioConfig:
    """The base (no-fault) configuration for one matrix cell.

    The matrix runs one full scenario per cell, so the ``small`` scale is
    deliberately leaner than the shared experiment trace; other scales
    reuse :func:`~repro.experiments.common.standard_config`.
    """
    if scale == "small":
        return ScenarioConfig(
            seed=seed,
            duration_days=2.0,
            population=PopulationConfig(n_peers=320),
            demand=DemandConfig(total_downloads=420, duration_days=2.0),
            catalog=CatalogConfig(objects_per_provider=20),
        )
    return standard_config(scale, seed)


def _matrix_window(base: ScenarioConfig) -> tuple[float, float]:
    # The fault holds for the second quarter of the trace, long enough for
    # a full download cohort to start (and finish) inside the window.
    fault_at = 0.25 * base.duration_days * DAY
    fault_duration = 0.25 * base.duration_days * DAY
    return (fault_at, fault_at + fault_duration)


def configs(scale: str, seed: int) -> list:
    """Scenario plan: the no-fault baseline plus one cell per scenario."""
    base = _matrix_config(scale, seed)
    fault_at, end = _matrix_window(base)
    out = [base]
    for name in MATRIX_SCENARIOS:
        faults = build_scenario(name, at=fault_at, duration=end - fault_at)
        out.append(dataclasses.replace(base, faults=faults))
    return out


def _run_matrix(scale: str, seed: int) -> dict:
    """Resolve every matrix cell through the fingerprint-keyed cache.

    Each cell is a full scenario run; the orchestrator deduplicates and —
    when ``repro run --jobs N`` prefetched the plan — serves every cell
    from cache without running anything here.
    """
    base = _matrix_config(scale, seed)
    window = _matrix_window(base)
    cells: dict[str, tuple] = {}
    for name, config in zip(("baseline", *MATRIX_SCENARIOS),
                            configs(scale, seed)):
        artifact = scenario_result(config)
        cells[name] = (artifact, window_outcomes(
            artifact.logstore, window[0], window[1]))
    return {"cells": cells, "window": window}


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Sweep the scenario library and tabulate in-window fault impact."""
    matrix = _run_matrix(scale, seed)
    cells = matrix["cells"]
    base_result, base_out = cells["baseline"]

    rows = [[
        "baseline",
        int(base_out["downloads"]),
        pct(base_out["completed"]),
        pct(base_out["edge_only"]),
        pct(base_out["mean_peer_fraction"]),
        "-", "-",
    ]]
    metrics: dict[str, float] = {
        "baseline_completed": base_out["completed"],
        "baseline_edge_only": base_out["edge_only"],
    }
    for name in MATRIX_SCENARIOS:
        result, out = cells[name]
        impact = fault_impact(base_out, out)
        rows.append([
            name,
            int(out["downloads"]),
            pct(out["completed"]),
            pct(out["edge_only"]),
            pct(out["mean_peer_fraction"]),
            pct(impact["completion_delta"]),
            pct(impact["fallback_delta"]),
        ])
        metrics[f"{name}_completed"] = out["completed"]
        metrics[f"{name}_edge_only"] = out["edge_only"]
        metrics[f"{name}_completion_delta"] = impact["completion_delta"]
        metrics[f"{name}_fallback_delta"] = impact["fallback_delta"]

    start, end = matrix["window"]
    text = render_table(
        "fault matrix: downloads in flight during the fault window "
        f"[{start / 3600.0:.0f}h, {end / 3600.0:.0f}h) "
        f"(paper §5.2 healthy completion: {pct(PAPER_P2P_COMPLETED)})",
        ["scenario", "downloads", "completed", "edge-only", "peer eff.",
         "Δcompletion", "Δfallback"],
        rows,
    )

    recovery_rows = []
    for name in MATRIX_SCENARIOS:
        result, _ = cells[name]
        for rec in result.recoveries:
            recovery_rows.append([
                name,
                rec.fault,
                rec.connected_dip,
                rec.registrations_dip,
                "-" if rec.time_to_reconnect is None
                else f"{rec.time_to_reconnect:.0f}s",
                "-" if rec.re_add_convergence is None
                else f"{rec.re_add_convergence:.0f}s",
            ])
    text += "\n\n" + render_table(
        "recovery gauges (§3.8)",
        ["scenario", "fault", "conns lost", "regs lost",
         "reconnect", "re-add conv."],
        recovery_rows,
    )

    # Every matrix cell ran with the invariant sanitizer (observe or strict
    # per REPRO_INVARIANTS); surface the audit so a conservation regression
    # shows up next to the §5.2 numbers it would otherwise silently skew.
    audit_rows = []
    total_errors = 0
    for name in ("baseline", *MATRIX_SCENARIOS):
        result, _ = cells[name]
        inv = result.invariants
        total_errors += inv.errors
        audit_rows.append([
            name, inv.mode, inv.audits + inv.final_audits,
            inv.errors, inv.warnings,
        ])
        metrics[f"{name}_invariant_errors"] = float(inv.errors)
    metrics["invariant_errors_total"] = float(total_errors)
    text += "\n\n" + render_table(
        "invariant audit (repro.invariants)",
        ["scenario", "mode", "audits", "errors", "warnings"],
        audit_rows,
    )
    return ExperimentOutput(name="fault_matrix", text=text, metrics=metrics)
