"""Experiment: Figure 10 — per-AS upload/download balance."""

from __future__ import annotations

import math

from repro.analysis import build_traffic_matrix, figure10_balance_scatter, render_table
from repro.experiments.common import ExperimentOutput, standard_result


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Regenerate Figure 10.

    Shape target: heavy uploaders sit near the diagonal (balanced up/down);
    large relative imbalances occur only at small volumes.
    """
    result = standard_result(scale, seed)
    matrix = build_traffic_matrix(result.logstore, result.geodb)
    scatter = figure10_balance_scatter(matrix)

    def log_ratio(up: float, down: float) -> float | None:
        if up <= 0 or down <= 0:
            return None
        return abs(math.log10(up / down))

    heavy_ratios = [r for _a, u, d, h in scatter if h and (r := log_ratio(u, d)) is not None]
    light_ratios = [r for _a, u, d, h in scatter if not h and (r := log_ratio(u, d)) is not None]
    rows = []
    for label, ratios in (("heavy", heavy_ratios), ("light", light_ratios)):
        if ratios:
            rows.append((label, len(ratios),
                         f"{sum(ratios) / len(ratios):.2f}",
                         f"{max(ratios):.2f}"))
    text = render_table(
        "Figure 10: |log10(up/down)| per AS (0 = balanced)",
        ["class", "ASes", "mean", "max"], rows,
    )
    heavy_mean = sum(heavy_ratios) / len(heavy_ratios) if heavy_ratios else 0.0
    light_mean = sum(light_ratios) / len(light_ratios) if light_ratios else 0.0
    return ExperimentOutput(
        name="fig10",
        text=text + f"\n\nscatter points: {len(scatter)}",
        metrics={
            "heavy_mean_imbalance": heavy_mean,
            "light_mean_imbalance": light_mean,
            "heavy_more_balanced": float(heavy_mean <= light_mean),
        },
    )
