"""Experiment: Figure 11 — pairwise AS-to-AS traffic balance."""

from __future__ import annotations

import math

from repro.analysis import build_traffic_matrix, figure11_pair_balance, render_table
from repro.experiments.common import ExperimentOutput, standard_result


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Regenerate Figure 11: balance between directly connected heavy pairs.

    Shape target: pairs that exchange a lot of traffic are roughly even in
    both directions.
    """
    result = standard_result(scale, seed)
    matrix = build_traffic_matrix(result.logstore, result.geodb)
    pairs = figure11_pair_balance(matrix, result.topology,
                                  directly_connected_only=False)
    direct = figure11_pair_balance(matrix, result.topology,
                                   directly_connected_only=True)

    ratios = []
    for _a, _b, ab, ba in pairs:
        if ab > 0 and ba > 0:
            ratios.append(abs(math.log10(ab / ba)))
    rows = [("all heavy pairs", len(pairs),
             f"{sum(ratios) / len(ratios):.2f}" if ratios else "-"),
            ("directly connected", len(direct), "-")]
    text = render_table(
        "Figure 11: heavy-pair traffic balance",
        ["set", "pairs", "mean |log10 ratio|"], rows,
    )
    direct_share = len(direct) / len(pairs) if pairs else 0.0
    text += f"\n\ndirectly-connected share of heavy-pair traffic pairs: {100 * direct_share:.0f}% (paper: ~35% of bytes)"
    return ExperimentOutput(
        name="fig11",
        text=text,
        metrics={
            "pairs": len(pairs),
            "mean_pair_imbalance": sum(ratios) / len(ratios) if ratios else 0.0,
            "direct_pair_share": direct_share,
        },
    )
