"""Experiment: Figure 12 — secondary-GUID graph patterns."""

from __future__ import annotations

from repro.analysis import figure12_pattern_census, pct, render_comparison
from repro.experiments.common import ExperimentOutput, standard_result

#: Paper: 99.4% linear; of the nonlinear: 46.2% one short branch, 6.2% two
#: long branches, 23.5% several short/medium branches, rest irregular.
PAPER_NONLINEAR = 0.006


def run(scale: str = "mobility", seed: int = 42) -> ExperimentOutput:
    """Regenerate the Figure 12 pattern census."""
    result = standard_result(scale, seed)
    census = figure12_pattern_census(result.logstore)
    if not census:
        return ExperimentOutput(name="fig12", text="no graphs", metrics={})
    nonlinear = census.get("nonlinear", 0.0)
    rows = [
        ("graphs analysed", "17.7M", int(census.get("graphs", 0))),
        ("linear chains", "99.4%", pct(census.get("linear", 0.0), 2)),
        ("nonlinear (trees)", "0.6%", pct(nonlinear, 2)),
    ]
    nl_total = max(nonlinear, 1e-12)
    for key, paper in (
        ("one_short_branch", "46.2%"),
        ("two_long_branches", "6.2%"),
        ("several_branches", "23.5%"),
        ("irregular", "24.1%"),
    ):
        share = census.get(key, 0.0) / nl_total
        rows.append((f"  {key} (of nonlinear)", paper, pct(share)))
    return ExperimentOutput(
        name="fig12",
        text=render_comparison("Figure 12: secondary-GUID patterns", rows),
        metrics={
            "nonlinear_fraction": nonlinear,
            "linear_fraction": census.get("linear", 0.0),
        },
    )
