"""Experiment: Figure 2 — global distribution of peers."""

from __future__ import annotations

from collections import Counter

from repro.analysis import figure2_peer_distribution, render_table
from repro.experiments.common import ExperimentOutput, standard_result
from repro.net.geo import Region


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Regenerate Figure 2's bubbles and the continental shares.

    Paper: most peers in North America (~27%) and Europe (~35%), with
    sizable groups in South America and Asia.
    """
    result = standard_result(scale, seed)
    bubbles = figure2_peer_distribution(result.logstore, result.geodb)

    # Continental shares via the geo database's region labels, one count
    # per GUID (first login), matching Figure 2's per-peer bubbles.
    region_counts: Counter = Counter()
    total = 0
    first_seen: set[str] = set()
    for rec in result.logstore.logins:
        if rec.guid in first_seen:
            continue
        first_seen.add(rec.guid)
        geo = result.geodb.get(rec.ip)
        if geo is not None:
            region_counts[geo.region] += 1
            total += 1

    na = (region_counts.get(Region.US_EAST, 0) + region_counts.get(Region.US_WEST, 0))
    eu = region_counts.get(Region.EUROPE, 0)
    rows = [
        (region, count, f"{100 * count / total:.1f}%")
        for region, count in region_counts.most_common()
    ]
    text = render_table(
        "Figure 2: peers per region (bubble aggregate)",
        ["region", "peers", "share"], rows,
    )
    text += f"\n\ndistinct bubble locations: {len(bubbles)}"
    return ExperimentOutput(
        name="fig2",
        text=text,
        metrics={
            "north_america_share": na / total if total else 0.0,
            "europe_share": eu / total if total else 0.0,
            "locations": len(bubbles),
        },
    )
