"""Experiment: Figure 3 — workload characteristics (size CDFs, popularity, diurnal)."""

from __future__ import annotations

from repro.analysis import (
    figure3a_size_cdfs, figure3b_popularity, figure3c_bytes_over_time,
    fraction_of_requests_above, power_law_exponent, render_series,
)
from repro.experiments.common import ExperimentOutput, standard_result

MB = 1024 * 1024


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Regenerate Figure 3(a)-(c).

    Targets: (a) peer-assisted requests biased to large objects (paper: 82%
    above 500 MB); (b) power-law popularity; (c) diurnal byte rate.
    """
    result = standard_result(scale, seed)
    logs = result.logstore

    cdfs = figure3a_size_cdfs(logs)
    text = render_series(
        "Figure 3a: request CDF by object size (GB)", cdfs,
        x_label="size GB", y_label="CDF",
    )
    big = fraction_of_requests_above(logs, 500 * MB, p2p_only=True)
    text += f"\n\npeer-assisted requests > 500MB: {100 * big:.0f}% (paper: 82%)"

    popularity = figure3b_popularity(logs)
    slope = power_law_exponent(popularity)
    text += "\n\n" + render_series(
        "Figure 3b: content popularity (rank vs downloads)",
        {"popularity": [(float(r), float(c)) for r, c in popularity]},
        x_label="rank", y_label="downloads",
    )
    text += f"\nfitted log-log slope: {slope:.2f} (power law iff clearly < 0)"

    series = figure3c_bytes_over_time(logs)
    peak = max((v for _t, v in series), default=0.0)
    trough = min((v for _t, v in series), default=0.0)
    text += "\n\n" + render_series(
        "Figure 3c: bytes served per hour",
        {"bytes/hour": series}, x_label="t (s)", y_label="bytes",
    )
    return ExperimentOutput(
        name="fig3",
        text=text,
        metrics={
            "p2p_large_request_fraction": big,
            "popularity_slope": slope,
            "diurnal_peak_to_trough": peak / trough if trough > 0 else float("inf"),
        },
    )
