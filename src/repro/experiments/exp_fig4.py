"""Experiment: Figure 4 — edge-only vs peer-assisted speed CDFs."""

from __future__ import annotations

from repro.analysis import busiest_ases, figure4_speed_cdfs, percentile, render_series
from repro.experiments.common import ExperimentOutput, standard_result


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Regenerate Figure 4 for the two busiest ASes.

    Shape target: peer-assisted (>=50% from peers) downloads are somewhat
    slower than edge-only ones, but still run at multiple Mbps.  The
    headline ratio metric pools the busiest ASes until both classes have a
    stable sample (the paper's two ASes held thousands of downloads each;
    a scaled-down trace needs to pool for the same statistical footing).
    """
    result = standard_result(scale, seed)
    ases = busiest_ases(result.logstore, result.geodb, n=10)

    text_parts = []
    for label, asn in zip(("AS X", "AS Y"), ases[:2]):
        cdfs = figure4_speed_cdfs(result.logstore, result.geodb, asn)
        text_parts.append(render_series(
            f"Figure 4 ({label} = AS{asn}): avg download speed (Mbps)",
            cdfs, x_label="Mbps", y_label="CDF",
        ))

    pooled_edge: list[float] = []
    pooled_p2p: list[float] = []
    for asn in ases:
        cdfs = figure4_speed_cdfs(result.logstore, result.geodb, asn)
        pooled_edge.extend(v for v, _ in cdfs["edge_only"])
        pooled_p2p.extend(v for v, _ in cdfs["p2p_heavy"])
        if len(pooled_p2p) >= 20 and len(pooled_edge) >= 20:
            break

    metrics = {}
    if pooled_edge and pooled_p2p:
        med_e = percentile(pooled_edge, 50)
        med_p = percentile(pooled_p2p, 50)
        metrics["median_speed_ratio_p2p_over_edge"] = (
            med_p / med_e if med_e > 0 else 0.0
        )
        metrics["median_edge_mbps"] = med_e
        metrics["median_p2p_mbps"] = med_p
        text_parts.append(
            f"pooled over busiest ASes: median edge-only {med_e:.1f} Mbps, "
            f"median >=50%-p2p {med_p:.1f} Mbps "
            f"(n={len(pooled_edge)}/{len(pooled_p2p)})"
        )
    return ExperimentOutput(
        name="fig4",
        text="\n\n".join(text_parts) if text_parts else "insufficient AS data",
        metrics=metrics,
    )
