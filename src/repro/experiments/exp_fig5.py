"""Experiment: Figure 5 — registered copies vs peer efficiency."""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import figure5_efficiency_vs_copies, render_table
from repro.experiments.common import (
    ExperimentOutput, scenario_result, standard_config,
)


def _fig5_config(scale: str, seed: int):
    """A scenario variant with p2p files spread across popularity ranks.

    Figure 5's x-axis spans files with one copy to files with tens of
    thousands; the standard catalog enables p2p only on flagship objects,
    which all land in the same (high) copy regime.  This variant enables
    p2p on a larger, popularity-diverse slice so the copies axis has range.
    """
    cfg = standard_config(scale, seed)
    catalog = replace(
        cfg.catalog,
        p2p_enabled_fraction=0.12,
        p2p_head_bias=0.30,
    )
    return replace(cfg, catalog=catalog, warm_copies_per_peer=2.0)


def configs(scale: str, seed: int) -> list:
    """Scenario plan: only the copies-diverse variant (not the standard)."""
    return [_fig5_config(scale, seed)]


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Regenerate Figure 5.

    Shape target: efficiency near zero for files with few registered
    copies, rising steeply once tens of copies exist (paper: <10% below 50
    copies, reaching ~80% at high copy counts — the x-axis is compressed by
    the scenario's scale).
    """
    result = scenario_result(_fig5_config(scale, seed))
    rows = figure5_efficiency_vs_copies(result.logstore)
    table_rows = [
        (f"{center:.0f}", f"{100 * m:.0f}%", f"{100 * p20:.0f}%", f"{100 * p80:.0f}%")
        for center, m, p20, p80 in rows
    ]
    text = render_table(
        "Figure 5: peer efficiency vs registered copies",
        ["copies (bin center)", "mean eff", "p20", "p80"],
        table_rows,
    )
    metrics = {}
    if rows:
        metrics["low_copy_efficiency"] = rows[0][1]
        metrics["high_copy_efficiency"] = rows[-1][1]
        metrics["monotone_gain"] = rows[-1][1] - rows[0][1]
    return ExperimentOutput(name="fig5", text=text, metrics=metrics)
