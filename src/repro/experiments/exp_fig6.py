"""Experiment: Figure 6 — peers returned vs peer efficiency."""

from __future__ import annotations

from repro.analysis import figure6_efficiency_vs_peers, render_table
from repro.experiments.common import ExperimentOutput, standard_result


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Regenerate Figure 6.

    Shape target: efficiency grows with the number of peers the control
    plane initially returns, saturating around 80% by a few tens of peers.
    """
    result = standard_result(scale, seed)
    rows = figure6_efficiency_vs_peers(result.logstore)
    # Bucket for readability (paper's x-axis runs 0..40).
    buckets = [(0, 1), (1, 3), (3, 6), (6, 10), (10, 15), (15, 25), (25, 41)]
    table_rows = []
    bucketed: dict[tuple[int, int], list[tuple[float, int]]] = {b: [] for b in buckets}
    for k, eff, n in rows:
        for lo, hi in buckets:
            if lo <= k < hi:
                bucketed[(lo, hi)].append((eff, n))
                break
    saturation = 0.0
    for (lo, hi), cells in bucketed.items():
        if not cells:
            continue
        total = sum(n for _e, n in cells)
        eff = sum(e * n for e, n in cells) / total
        table_rows.append((f"[{lo},{hi})", f"{100 * eff:.0f}%", total))
        if lo >= 10:
            saturation = max(saturation, eff)
    text = render_table(
        "Figure 6: peer efficiency vs peers initially returned",
        ["peers returned", "mean eff", "downloads"],
        table_rows,
    )
    metrics = {"saturation_efficiency": saturation}
    zero = [e for k, e, _n in rows if k == 0]
    if zero:
        metrics["zero_peer_efficiency"] = zero[0]
    return ExperimentOutput(name="fig6", text=text, metrics=metrics)
