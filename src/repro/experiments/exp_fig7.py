"""Experiment: Figure 7 — pause/termination rate by file size."""

from __future__ import annotations

from repro.analysis import figure7_pause_rates, render_table
from repro.analysis.benefits import SIZE_BINS
from repro.experiments.common import ExperimentOutput, standard_result


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Regenerate Figure 7.

    Shape target: termination rate increases with file size, explaining the
    §5.2 infra-vs-p2p pause gap (3% vs 8%) via size composition alone.
    """
    result = standard_result(scale, seed)
    rates = figure7_pause_rates(result.logstore)
    headers = ["class"] + [label for label, _lo, _hi in SIZE_BINS]
    rows = []
    for cls in ("infrastructure", "peer_assisted", "all"):
        row = [cls]
        for label, _lo, _hi in SIZE_BINS:
            v = rates.get(cls, {}).get(label)
            row.append("-" if v is None else f"{100 * v:.0f}%")
        rows.append(row)
    text = render_table("Figure 7: pause rate by file size", headers, rows)
    all_rates = rates.get("all", {})
    small = all_rates.get("<10MB", 0.0)
    big = all_rates.get(">1GB", all_rates.get("100MB-1GB", 0.0))
    return ExperimentOutput(
        name="fig7",
        text=text,
        metrics={"small_file_pause_rate": small, "large_file_pause_rate": big,
                 "monotone_gap": big - small},
    )
