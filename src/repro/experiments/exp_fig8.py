"""Experiment: Figure 8 — peer contributions by country."""

from __future__ import annotations

from collections import Counter

from repro.analysis import figure8_country_contributions, render_table
from repro.experiments.common import ExperimentOutput, standard_result


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Regenerate Figure 8 for one typical p2p-enabled provider.

    Customer D (cp 1004) ships upload-enabled binaries, like the paper's
    exemplary provider.  Shape target: a mixed picture — peers contribute
    more in some regions but the split does not vary wildly, because the
    edge network has good coverage everywhere.
    """
    result = standard_result(scale, seed)
    classes = figure8_country_contributions(result.logstore, result.geodb, cp_code=1004)
    census = Counter(classes.values())
    rows = sorted(classes.items())
    text = render_table(
        "Figure 8: per-country contribution class (customer D)",
        ["country", "class"], rows,
    )
    text += f"\n\ncensus: {dict(census)}"
    total = sum(census.values())
    return ExperimentOutput(
        name="fig8",
        text=text,
        metrics={
            "countries": total,
            "peer_majority_share": (census.get("peers_half", 0) + census.get("peers_major", 0)) / total
            if total else 0.0,
        },
    )
