"""Experiment: Figure 9 — inter-AS traffic distribution."""

from __future__ import annotations

from repro.analysis import (
    build_traffic_matrix, figure9a_upload_cdf, figure9b_cumulative_contribution,
    figure9c_ips_per_as, heavy_uploader_ases, render_series,
)
from repro.experiments.common import ExperimentOutput, standard_result


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Regenerate Figure 9(a)-(c).

    Shape targets: a heavy-tailed per-AS upload distribution (paper: 98% of
    ASes contribute ~10% of bytes; ~18% of p2p bytes stay intra-AS), with
    heavy uploaders simply containing more peers.
    """
    result = standard_result(scale, seed)
    matrix = build_traffic_matrix(result.logstore, result.geodb)

    text = render_series(
        "Figure 9a: inter-AS bytes uploaded per AS (CDF over ASes)",
        {"uploads": figure9a_upload_cdf(matrix)}, x_label="bytes", y_label="CDF",
    )
    text += "\n\n" + render_series(
        "Figure 9b: cumulative contribution vs per-AS upload",
        {"cumulative": figure9b_cumulative_contribution(matrix)},
        x_label="bytes", y_label="share of total",
    )
    text += "\n\n" + render_series(
        "Figure 9c: distinct IPs per AS (light vs heavy uploaders)",
        figure9c_ips_per_as(matrix), x_label="IPs", y_label="CDF",
    )
    heavy = heavy_uploader_ases(matrix)
    observed = len(matrix.observed_ases)
    heavy_share = len(heavy) / observed if observed else 0.0
    text += (
        f"\n\nintra-AS byte fraction: {100 * matrix.intra_as_fraction:.0f}% (paper: 18%)"
        f"\nheavy uploaders: {len(heavy)}/{observed} ASes carry 90% of bytes"
        f" (paper: 2%)"
    )
    return ExperimentOutput(
        name="fig9",
        text=text,
        metrics={
            "intra_as_fraction": matrix.intra_as_fraction,
            "heavy_as_share": heavy_share,
            "observed_ases": observed,
        },
    )
