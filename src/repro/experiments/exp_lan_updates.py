"""Extension experiment: enterprise software updates over corporate LANs.

Paper §5.3 flags the case where "downloading peers might find a copy of the
requested content within their local network, e.g., in a corporate LAN" —
rare in the 2012 trace, but "this could change, e.g., when NetSession is
used to distribute large software updates."

This experiment builds that future: an update pushed to office fleets whose
machines sit in LAN sites.  With LAN-aware selection, one download per
office seeds the rest of the building at switch speed; the comparison run
disables site assignment.
"""

from __future__ import annotations

import random

from repro.analysis import pct, render_table
from repro.analysis.traffic import site_local_share
from repro.core import ContentObject, ContentProvider, NetSessionSystem
from repro.experiments.common import ExperimentOutput

MB = 1024 * 1024
HOUR = 3600.0


def _run_fleet(seed: int, *, with_sites: bool) -> dict[str, float]:
    from repro.net.lan import LanSite

    system = NetSessionSystem(seed=seed)
    vendor = ContentProvider(cp_code=4001, name="ITVendor",
                             upload_default_rate=1.0)
    update = ContentObject("itvendor/update.bin", 800 * MB, vendor,
                           p2p_enabled=True)
    system.publish(update)

    rng = random.Random(seed)
    germany = system.world.by_code["DE"]
    peers = []
    site_of_guid: dict[str, str] = {}
    n_sites, site_size = 5, 16
    for s in range(n_sites):
        site = LanSite(f"office-{s}") if with_sites else None
        for _ in range(site_size):
            peer = system.create_peer(country=germany, uploads_enabled=True)
            if site is not None:
                peer.lan = site
                site.add_member(peer.guid)
                site_of_guid[peer.guid] = site.site_id
            peer.boot()
            peers.append(peer)

    # IT pushes the update: everyone downloads within the first hour.
    sessions = []
    for peer in peers:
        delay = rng.uniform(0.0, HOUR)
        system.sim.schedule(
            delay, lambda p=peer: sessions.append(p.start_download(update)))
    system.run(until=10 * HOUR)
    system.finalize_open_downloads()

    completed = [r for r in system.logstore.downloads
                 if r.outcome == "completed"]
    durations = sorted(r.ended_at - r.started_at for r in completed)
    median = durations[len(durations) // 2] if durations else 0.0
    edge = sum(r.edge_bytes for r in completed)
    peer_bytes = sum(r.peer_bytes for r in completed)
    return {
        "completed": len(completed) / len(peers),
        "median_minutes": median / 60.0,
        "offload": peer_bytes / (edge + peer_bytes) if edge + peer_bytes else 0.0,
        "site_local": site_local_share(system.logstore, site_of_guid),
    }



def configs(scale: str, seed: int) -> list:
    """Scenario plan: self-contained (builds its own system inline)."""
    return []


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Compare the fleet-update push with and without LAN sites."""
    with_lan = _run_fleet(seed, with_sites=True)
    without = _run_fleet(seed, with_sites=False)
    rows = [
        ("LAN sites", pct(with_lan["completed"]),
         f"{with_lan['median_minutes']:.1f} min",
         pct(with_lan["offload"]), pct(with_lan["site_local"])),
        ("no sites", pct(without["completed"]),
         f"{without['median_minutes']:.1f} min",
         pct(without["offload"]), pct(without["site_local"])),
    ]
    text = render_table(
        "Extension: enterprise update push (§5.3's corporate-LAN case)",
        ["fleet", "completed", "median time", "offload", "intra-site bytes"],
        rows,
    )
    return ExperimentOutput(
        name="lan_updates",
        text=text,
        metrics={
            "lan_site_local": with_lan["site_local"],
            "nolan_site_local": without["site_local"],
            "lan_median_minutes": with_lan["median_minutes"],
            "nolan_median_minutes": without["median_minutes"],
            "lan_offload": with_lan["offload"],
        },
    )
