"""Related-work experiment: Antfarm-style coordination (paper §7).

NetSession's control plane coordinates peers but "does not implement an
explicit incentive mechanism" and does not plan edge bandwidth across
swarms the way Antfarm's coordinator does.  This experiment stages the
situation where Antfarm's planning matters — several concurrent swarms with
very different self-sufficiency sharing a scarce seeding budget — and
compares managed allocation against a naive equal split.
"""

from __future__ import annotations

import random

from repro.analysis import pct, render_table
from repro.baselines.managed_swarm import ManagedSwarmConfig, ManagedSwarmSystem
from repro.baselines.p2p_cdn import P2PPeer
from repro.experiments.common import ExperimentOutput

MBPS = 1e6 / 8


def _build(policy: str, seed: int) -> ManagedSwarmSystem:
    system = ManagedSwarmSystem(
        ManagedSwarmConfig(seed_budget_bps=12 * MBPS, policy=policy),
        seed=seed)
    rng = random.Random(seed)
    # Three swarms: one healthy (many strong uploaders), one mediocre, one
    # starving (few peers, mostly free riders).
    profiles = {
        "healthy": [(rng.uniform(1.5, 3.0), False) for _ in range(14)],
        "mediocre": [(rng.uniform(0.5, 1.0), i % 3 == 0) for i in range(8)],
        "starving": [(0.2, i % 2 == 0) for i in range(5)],
    }
    for name, members in profiles.items():
        torrent = system.add_torrent(name, 80e6)
        for index, (up_mbps, free) in enumerate(members):
            peer = P2PPeer(f"{name}-{index}", up_bps=up_mbps * MBPS,
                           down_bps=12 * MBPS, free_rider=free)
            system.start_download(torrent, peer)
    return system



def configs(scale: str, seed: int) -> list:
    """Scenario plan: self-contained (builds its own system inline)."""
    return []


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Managed vs equal-split seeding across heterogeneous swarms."""
    rows = []
    metrics = {}
    for policy in ("managed", "equal_split"):
        system = _build(policy, seed)
        system.run(3 * 3600.0)
        stats = system.aggregate_stats()
        rows.append((policy, pct(stats["completed"]),
                     f"{stats['mean_time'] / 60:.1f} min"))
        metrics[f"{policy}_completed"] = stats["completed"]
        metrics[f"{policy}_mean_minutes"] = stats["mean_time"] / 60.0
    text = render_table(
        "Related work: Antfarm-style managed seeding vs equal split",
        ["policy", "completed", "mean completion time"],
        rows,
    )
    return ExperimentOutput(name="managed_swarm", text=text, metrics=metrics)
