"""Experiment: §6.2 mobility statistics."""

from __future__ import annotations

from repro.analysis import mobility_summary, pct, render_comparison
from repro.experiments.common import ExperimentOutput, standard_result


def run(scale: str = "mobility", seed: int = 42) -> ExperimentOutput:
    """Regenerate the §6.2 mobility numbers.

    Paper: 80.6% of GUIDs from one AS, 13.4% from two, 6% from more; 77%
    within 10 km.
    """
    result = standard_result(scale, seed)
    summary = mobility_summary(result.logstore, result.geodb)
    rows = [
        ("single AS", "80.6%", pct(summary.one_as)),
        ("two ASes", "13.4%", pct(summary.two_as)),
        (">2 ASes", "6.0%", pct(summary.more_as)),
        ("within 10 km", "77%", pct(summary.within_10km)),
        ("beyond 10 km", "23%", pct(summary.beyond_10km)),
        ("new connections/min", "20922", f"{summary.mean_new_connections_per_minute:.1f}"),
    ]
    return ExperimentOutput(
        name="mobility",
        text=render_comparison("Section 6.2: mobility", rows),
        metrics={
            "one_as": summary.one_as,
            "two_as": summary.two_as,
            "more_as": summary.more_as,
            "within_10km": summary.within_10km,
        },
    )
