"""Experiment: §5.1 headline offload statistics."""

from __future__ import annotations

from repro.analysis import offload_summary, pct, render_comparison
from repro.experiments.common import ExperimentOutput, standard_result


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Regenerate §5.1: file fraction, byte share, peer efficiency.

    Paper: p2p enabled on 1.7% of files carrying 57.4% of bytes; average
    peer efficiency 71.4%; overall offload 70-80%.
    """
    result = standard_result(scale, seed)
    summary = offload_summary(result.logstore)
    rows = [
        ("p2p-enabled file fraction", "1.7%", pct(summary.p2p_file_fraction)),
        ("p2p-enabled byte share", "57.4%", pct(summary.p2p_byte_share)),
        ("mean peer efficiency", "71.4%", pct(summary.mean_peer_efficiency)),
        ("median peer efficiency", "-", pct(summary.median_peer_efficiency)),
        ("byte-weighted efficiency", "70-80%", pct(summary.byte_weighted_efficiency)),
    ]
    return ExperimentOutput(
        name="offload",
        text=render_comparison("Section 5.1: offload summary", rows),
        metrics={
            "p2p_file_fraction": summary.p2p_file_fraction,
            "p2p_byte_share": summary.p2p_byte_share,
            "mean_peer_efficiency": summary.mean_peer_efficiency,
            "byte_weighted_efficiency": summary.byte_weighted_efficiency,
        },
    )
