"""Experiment: §5.2 reliability outcomes."""

from __future__ import annotations

from repro.analysis import pct, reliability_outcomes, render_table
from repro.experiments.common import ExperimentOutput, standard_result

#: Paper §5.2: completion 94% vs 92%; system failures 0.1% vs 0.2%;
#: paused/terminated 3% vs 8%.
PAPER = {
    "infrastructure": {"completed": 0.94, "aborted": 0.03, "failed_system": 0.001},
    "peer_assisted": {"completed": 0.92, "aborted": 0.08, "failed_system": 0.002},
}


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Regenerate the §5.2 outcome split per delivery class."""
    result = standard_result(scale, seed)
    outcomes = reliability_outcomes(result.logstore)
    rows = []
    for cls in ("infrastructure", "peer_assisted"):
        split = outcomes.get(cls, {})
        paper = PAPER[cls]
        rows.append([
            cls,
            f"{pct(split.get('completed', 0.0))} (paper {pct(paper['completed'])})",
            f"{pct(split.get('aborted', 0.0))} (paper {pct(paper['aborted'])})",
            f"{pct(split.get('failed', 0.0))}",
            f"{pct(split.get('failed_system', 0.0), 2)} (paper {pct(paper['failed_system'], 2)})",
        ])
    text = render_table(
        "Section 5.2: download outcomes",
        ["class", "completed", "paused/aborted", "failed", "failed (system)"],
        rows,
    )
    infra = outcomes.get("infrastructure", {})
    p2p = outcomes.get("peer_assisted", {})
    return ExperimentOutput(
        name="reliability",
        text=text,
        metrics={
            "infra_completed": infra.get("completed", 0.0),
            "p2p_completed": p2p.get("completed", 0.0),
            "infra_aborted": infra.get("aborted", 0.0),
            "p2p_aborted": p2p.get("aborted", 0.0),
        },
    )
