"""Peers-vs-wall scaling curve: the million-peer columnar + sharded engine.

Not a paper table — an engineering deliverable.  The paper's production
system carried tens of millions of installs (§4.1); the object-graph seed
implementation topped out around 10^4 peers per gigabyte.  This runner
measures how wall-clock grows with population size under the columnar
store (struct-of-arrays, lazy materialization), an ``active_peer_cap``
session schedule, and region-sharded execution, and records the curve as
a ``BENCH_simcore.json``-style trajectory (``BENCH_scale.json``) that
``benchmarks/gate.py`` can gate::

    python -m repro scale --peers 100000 --shards 2 --strict
    python benchmarks/gate.py scale_100k --baseline BENCH_scale.json \
        --current BENCH_scale.fresh.json

The scenario is deliberately lean — no mobility, no cloning, no warm
caches, no link-busy churn — so the measured cost is the engine itself:
population synthesis, session scheduling, and the download loop.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path

from repro.core.config import ClientConfig, InvariantConfig, SystemConfig
from repro.experiments.common import ExperimentOutput
from repro.workload import (
    CatalogConfig, DemandConfig, PopulationConfig, ScenarioConfig,
)
from repro.workload.cloning import CloningConfig
from repro.workload.mobility import MobilityConfig
from repro.workload.sharding import ShardingConfig

__all__ = ["scale_config", "run_point", "run_curve", "run",
           "record_curve", "bench_name", "SCALE_POINTS"]

#: Peer counts per named scale.  ``full`` is the laptop-scale flagship:
#: a million installs over a multi-day trace.
SCALE_POINTS = {
    "small": (2_000, 10_000),
    "standard": (10_000, 100_000),
    "full": (10_000, 100_000, 1_000_000),
}

#: History entries kept per bench point (mirrors ``benchmarks/_results``).
HISTORY_LIMIT = 40


def scale_config(
    n_peers: int,
    *,
    seed: int = 42,
    days: float = 3.0,
    shards: int | str | None = "auto",
    strict: bool = False,
) -> ScenarioConfig:
    """The lean scaling scenario for one population size.

    Downloads and the active-session cap grow sublinearly with the
    population: the point is to scale the *installed base* (the paper's
    tens of millions of mostly idle peers), not the workload, which the
    demand knobs control independently.
    """
    cap = min(n_peers, 4_000)
    downloads = min(6_000, max(300, n_peers // 200))
    invariants = (
        InvariantConfig(mode="strict") if strict else InvariantConfig()
    )
    return ScenarioConfig(
        seed=seed,
        duration_days=days,
        system=SystemConfig(
            client=ClientConfig(link_busy_prob_per_hour=0.0),
            invariants=invariants,
        ),
        population=PopulationConfig(
            n_peers=n_peers, store="columnar", active_peer_cap=cap,
        ),
        demand=DemandConfig(total_downloads=downloads, duration_days=days),
        catalog=CatalogConfig(objects_per_provider=20),
        mobility=MobilityConfig(
            commuter_fraction=0.0, roamer_fraction=0.0, traveler_fraction=0.0,
        ),
        cloning=CloningConfig(affected_fraction=0.0),
        sharding=ShardingConfig(shards=shards) if shards else None,
        warm_copies_per_peer=0.0,
    )


def bench_name(n_peers: int) -> str:
    """Stable bench key for one curve point (``scale_100k``, ``scale_1m``)."""
    if n_peers % 1_000_000 == 0:
        return f"scale_{n_peers // 1_000_000}m"
    if n_peers % 1_000 == 0:
        return f"scale_{n_peers // 1_000}k"
    return f"scale_{n_peers}"


def run_point(
    n_peers: int,
    *,
    seed: int = 42,
    days: float = 3.0,
    shards: int | str | None = "auto",
    strict: bool = False,
) -> dict:
    """Run one curve point and return its bench entry."""
    cfg = scale_config(
        n_peers, seed=seed, days=days, shards=shards, strict=strict,
    )
    started = time.perf_counter()
    if cfg.sharding is not None:
        from repro.runner import run_scenario_artifact

        artifact = run_scenario_artifact(cfg)
        downloads = len(artifact.logstore.downloads)
        logins = len(artifact.logstore.logins)
        width = cfg.sharding.resolve_shards()
        regions = len(artifact.sharding["regions"])
    else:
        from repro.workload import run_scenario

        result = run_scenario(cfg)
        downloads = len(result.logstore.downloads)
        logins = len(result.logstore.logins)
        width = 0
        regions = 1
    wall = time.perf_counter() - started
    return {
        "peers": n_peers,
        "days": days,
        "wall_seconds": round(wall, 2),
        "peers_per_second": round(n_peers / wall, 1),
        "downloads": downloads,
        "logins": logins,
        "shards": width,
        "regions": regions,
        "strict": strict,
    }


def run_curve(
    points,
    *,
    seed: int = 42,
    days: float = 3.0,
    shards: int | str | None = "auto",
    strict: bool = False,
) -> tuple[ExperimentOutput, dict]:
    """Run every point and render the peers-vs-wall table.

    Returns ``(output, results)`` where ``results`` maps bench names to
    entries in the shape :func:`record_curve` (and ``benchmarks/gate.py``)
    consume.
    """
    results: dict[str, dict] = {}
    lines = [
        "Scaling curve: peers vs wall-clock (columnar store, region shards)",
        "",
        f"{'peers':>10}  {'shards':>6}  {'downloads':>9}  "
        f"{'wall_s':>8}  {'peers/s':>10}",
    ]
    for n_peers in points:
        entry = run_point(
            n_peers, seed=seed, days=days, shards=shards, strict=strict,
        )
        results[bench_name(n_peers)] = entry
        lines.append(
            f"{entry['peers']:>10,}  {entry['shards']:>6}  "
            f"{entry['downloads']:>9}  {entry['wall_seconds']:>8.2f}  "
            f"{entry['peers_per_second']:>10,.0f}"
        )
    metrics = {
        name: entry["wall_seconds"] for name, entry in results.items()
    }
    return ExperimentOutput(name="exp_scale", text="\n".join(lines),
                            metrics=metrics), results


def record_curve(results: dict[str, dict], path: Path) -> None:
    """Merge curve entries into the trajectory file at ``path``.

    Same shape as ``benchmarks/_results.record_results`` (latest values at
    the top level, a capped ``history`` series per bench), duplicated here
    because the installed package cannot depend on the repo's benchmarks
    directory.
    """
    if not results:
        return
    merged: dict = {}
    if path.exists():
        merged = json.loads(path.read_text())
    history: dict[str, list] = merged.get("history", {})
    stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    for name, values in results.items():
        merged[name] = values
        series = history.setdefault(name, [])
        series.append({"recorded": stamp, **values})
        del series[:-HISTORY_LIMIT]
    merged["history"] = history
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Standard experiment entry point (small curve, nothing recorded)."""
    points = SCALE_POINTS.get(scale, SCALE_POINTS["small"])
    output, _ = run_curve(points, seed=seed, days=1.0)
    return output
