"""Experiment: Table 1 — overall statistics for the data set."""

from __future__ import annotations

from repro.analysis import render_comparison, table1_overall_statistics
from repro.experiments.common import ExperimentOutput, standard_result

#: Paper values (October 2012 production trace), for side-by-side display.
PAPER = {
    "Log entries": 4_150_989_257,
    "Number of GUIDs": 25_941_122,
    "Distinct URLs": 4_038_894,
    "Distinct IPs": 133_690_372,
    "Downloads initiated": 12_508_764,
    "Distinct locations": 34_383,
    "Distinct autonomous systems": 31_190,
    "Distinct country codes": 239,
}


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Regenerate Table 1 from a synthetic trace.

    Absolute counts scale with the scenario; the structural relations the
    paper highlights (IPs >> GUIDs, logins dominating log entries) are the
    reproduction target.
    """
    result = standard_result(scale, seed)
    stats = table1_overall_statistics(result.logstore, result.geodb)
    rows = [
        (label, PAPER.get(label, "-"), value)
        for label, value in stats.rows()
    ]
    text = render_comparison("Table 1: overall statistics", rows)
    return ExperimentOutput(
        name="table1",
        text=text,
        metrics={
            "guids": stats.guids,
            "ips_per_guid": stats.distinct_ips / max(stats.guids, 1),
            "downloads": stats.downloads_initiated,
            "countries": stats.distinct_countries,
        },
    )
