"""Experiment: Table 2 — download regions for the largest providers."""

from __future__ import annotations

from repro.analysis import render_table, table2_provider_regions
from repro.experiments.common import ExperimentOutput, standard_result
from repro.net.geo import REGIONS
from repro.workload.catalog import PAPER_CUSTOMERS


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Regenerate Table 2 and score it against the paper's rows.

    The metric is the mean absolute difference (in percentage points)
    between measured and published regional shares, averaged over the ten
    customers — the workload generator is driven by the published mixes, so
    this checks the whole pipeline end to end.
    """
    result = standard_result(scale, seed)
    table = table2_provider_regions(result.logstore, result.geodb)

    headers = ["customer"] + list(REGIONS)
    rows = []
    errors = []
    for index, (name, _rate, mix) in enumerate(PAPER_CUSTOMERS):
        key = f"cp{1001 + index}"
        measured = table.get(key, {})
        rows.append([name] + [f"{100 * measured.get(r, 0.0):.0f}%" for r in REGIONS])
        for region in REGIONS:
            errors.append(abs(measured.get(region, 0.0) - mix.get(region, 0.0)))
    if "All customers" in table:
        rows.append(["All customers"] + [
            f"{100 * table['All customers'].get(r, 0.0):.0f}%" for r in REGIONS
        ])
    text = render_table("Table 2: downloads by region per provider", headers, rows)
    mad = 100.0 * sum(errors) / len(errors) if errors else 0.0
    return ExperimentOutput(
        name="table2",
        text=text + f"\n\nmean |measured - paper| = {mad:.1f} percentage points",
        metrics={"mean_abs_error_pp": mad},
    )
