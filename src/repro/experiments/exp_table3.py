"""Experiment: Table 3 — changes to the upload-enabled setting."""

from __future__ import annotations

from repro.analysis import pct, render_table, table3_setting_changes
from repro.experiments.common import ExperimentOutput, standard_result

#: Paper: {initial: (share with 0 / 1 / >=2 changes)}.
PAPER = {
    "disabled": (0.9996, 0.0003, 0.0001),
    "enabled": (0.9811, 0.0180, 0.0009),
}


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Regenerate Table 3: do users ever touch the upload setting?"""
    result = standard_result(scale, seed)
    table = table3_setting_changes(result.logstore)
    rows = []
    for key in ("disabled", "enabled"):
        row = table.get(key, {})
        paper = PAPER[key]
        rows.append([
            key, int(row.get("nodes", 0)),
            f"{pct(row.get('0', 0.0), 2)} (paper {pct(paper[0], 2)})",
            f"{pct(row.get('1', 0.0), 2)} (paper {pct(paper[1], 2)})",
            f"{pct(row.get('2+', 0.0), 2)} (paper {pct(paper[2], 2)})",
        ])
    text = render_table(
        "Table 3: observed changes to the upload setting",
        ["initially", "nodes", "0 changes", "1 change", ">=2 changes"],
        rows,
    )
    never = 0.0
    total = 0.0
    for key in ("disabled", "enabled"):
        row = table.get(key, {})
        never += row.get("0", 0.0) * row.get("nodes", 0)
        total += row.get("nodes", 0)
    return ExperimentOutput(
        name="table3",
        text=text,
        metrics={"keep_initial_fraction": never / total if total else 0.0},
    )
