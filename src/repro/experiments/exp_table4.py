"""Experiment: Table 4 — upload-enabled fraction per provider."""

from __future__ import annotations

from repro.analysis import pct, render_table, table4_upload_enabled_by_provider
from repro.experiments.common import ExperimentOutput, standard_result
from repro.workload.catalog import PAPER_CUSTOMERS


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Regenerate Table 4: fraction of peers with uploads enabled.

    Measured per provider (attribution by first download) against the
    published <1%..94% spread.
    """
    result = standard_result(scale, seed)
    table = table4_upload_enabled_by_provider(result.logstore)
    rows = []
    errs = []
    for index, (name, rate, _mix) in enumerate(PAPER_CUSTOMERS):
        cp = 1001 + index
        measured = table.get(cp)
        if measured is None:
            rows.append([name, pct(rate), "-"])
            continue
        rows.append([name, pct(rate), pct(measured)])
        errs.append(abs(measured - rate))
    text = render_table(
        "Table 4: peers with content uploads enabled",
        ["customer", "paper", "measured"],
        rows,
    )
    mad = 100.0 * sum(errs) / len(errs) if errs else 0.0
    return ExperimentOutput(
        name="table4",
        text=text + f"\n\nmean |measured - paper| = {mad:.1f} percentage points",
        metrics={"mean_abs_error_pp": mad},
    )
