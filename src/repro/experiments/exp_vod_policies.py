"""VoD serving-policy family: QoE vs ISP impact across policies (§7).

The paper's NetSession serves *downloads*; its §7 discussion asks what a
peer-assisted CDN should do for streaming, where ISPs care about peak-hour
transit and viewers care about startup delay and rebuffering.  This family
runs the same catch-up-TV workload (:mod:`repro.vod`) under every serving
policy plus an infrastructure-only baseline (p2p globally disabled), and
reports both sides of the trade:

* QoE — startup-delay p50, rebuffer ratio, finished-playback rate;
* ISP impact — peer offload and the sum over ASes of each AS's busiest
  inter-AS upload hour (what transit is provisioned against).
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import human_bytes, pct, render_table
from repro.analysis.qoe import peak_hour_transit, peak_transit_total, qoe_summary
from repro.experiments.common import (
    ExperimentOutput, scenario_result, standard_config,
)
from repro.vod import POLICY_NAMES, VodConfig

#: The infrastructure-only control: same viewers, same catalog, but every
#: byte comes from the edge.  Its peak transit anchors the policy deltas.
BASELINE = "infra-cdn"


def _vod_config(scale: str, policy: str) -> VodConfig:
    sessions = 150 if scale == "small" else 400
    return VodConfig(sessions=sessions, policy=policy)


def _policy_config(scale: str, seed: int, policy: str):
    base = standard_config(scale, seed)
    if policy == BASELINE:
        return replace(
            base,
            vod=_vod_config(scale, "unrestricted"),
            system=replace(base.system, p2p_globally_enabled=False),
        )
    return replace(base, vod=_vod_config(scale, policy))


def variants() -> list[str]:
    """Row order: infra-only control first, then every serving policy."""
    return [BASELINE, *POLICY_NAMES]


def configs(scale: str, seed: int) -> list:
    """Scenario plan (one trace per policy), for the prefetch fan-out."""
    return [_policy_config(scale, seed, policy) for policy in variants()]


def run(scale: str = "small", seed: int = 42) -> ExperimentOutput:
    """Sweep serving policies over the VoD workload; QoE vs transit table."""
    rows = []
    metrics: dict[str, float] = {}
    baseline_peak = None
    for policy in variants():
        artifact = scenario_result(_policy_config(scale, seed, policy))
        qoe = qoe_summary(artifact.logstore)
        vod = artifact.stats.vod
        peak = peak_transit_total(
            peak_hour_transit(artifact.logstore, artifact.geodb)
        )
        if baseline_peak is None:
            baseline_peak = peak
        finished_rate = (
            vod.playbacks_finished / vod.streams_started
            if vod.streams_started else 0.0
        )
        rows.append((
            policy,
            pct(qoe["peer_offload"]),
            f"{qoe['startup_p50']:.1f}s",
            pct(qoe["rebuffer_ratio"]),
            pct(finished_rate),
            human_bytes(peak),
        ))
        key = policy.replace("-", "_")
        metrics[f"{key}_offload"] = qoe["peer_offload"]
        metrics[f"{key}_startup_p50"] = qoe["startup_p50"]
        metrics[f"{key}_rebuffer_ratio"] = qoe["rebuffer_ratio"]
        metrics[f"{key}_finished_rate"] = finished_rate
        metrics[f"{key}_peak_transit_bytes"] = peak
        metrics[f"{key}_policy_filtered"] = float(vod.policy_filtered)
        metrics[f"{key}_prefetches_pushed"] = float(vod.prefetches_pushed)
        metrics[f"{key}_copies_seeded"] = float(vod.copies_seeded)

    text = render_table(
        "VoD serving policies: QoE vs ISP peak-hour transit",
        ["policy", "peer offload", "startup p50", "rebuffer", "finished",
         "peak transit"],
        rows,
    )
    local_delta = (
        metrics["unrestricted_peak_transit_bytes"]
        - metrics["isp_local_peak_transit_bytes"]
    )
    metrics["isp_local_transit_saving_bytes"] = local_delta
    return ExperimentOutput(
        name="vod_policies",
        text=(
            text
            + "\n\nisp_local trims peer peak-hour transit by "
            + human_bytes(max(0.0, local_delta))
            + " vs unrestricted"
        ),
        metrics=metrics,
    )
