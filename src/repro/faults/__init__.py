"""Deterministic fault injection and chaos scheduling.

The subsystem has four layers:

* :mod:`repro.faults.spec` — the declarative fault model
  (:class:`FaultSpec` subclasses: outages, wipes, blackouts, brownouts,
  degradation, rebinds, churn, flakiness);
* :mod:`repro.faults.injector` — the engine that applies and reverts
  faults on the simulator event loop, deterministically;
* :mod:`repro.faults.metrics` — recovery gauges (time-to-reconnect,
  RE-ADD convergence);
* :mod:`repro.faults.scenarios` / :mod:`repro.faults.drill` — the named
  scenario library and the compact drill harness behind
  ``python -m repro faults``.

Trace-level impact analysis lives with the other analyses, in
:mod:`repro.analysis.faults`.
"""

from repro.faults.drill import (
    DrillReport, DrillRequest, PortableDrillReport, run_drill,
    run_drill_portable,
)
from repro.faults.injector import FaultInjector, InjectionEvent
from repro.faults.metrics import FaultRecovery, RecoveryTracker
from repro.faults.scenarios import (
    DEFENSE_SCENARIOS, SCENARIOS, build_scenario, scenario_names,
)
from repro.faults.spec import (
    AdversarialInfestation, CNOutage, ControlLatencySpike, ControlMessageLoss,
    ControlPlaneBlackout, DNWipe, EdgeBrownout, FaultSpec, FlakyUploader,
    InjectionContext, LinkDegradation, NATRebind, PeerChurnStorm,
    RegionPartition, ReputationWipe,
)

__all__ = [
    "FaultSpec", "InjectionContext",
    "CNOutage", "DNWipe", "ControlPlaneBlackout", "EdgeBrownout",
    "LinkDegradation", "NATRebind", "PeerChurnStorm", "FlakyUploader",
    "ControlMessageLoss", "ControlLatencySpike", "RegionPartition",
    "AdversarialInfestation", "ReputationWipe", "DEFENSE_SCENARIOS",
    "FaultInjector", "InjectionEvent",
    "FaultRecovery", "RecoveryTracker",
    "SCENARIOS", "build_scenario", "scenario_names",
    "DrillReport", "DrillRequest", "PortableDrillReport",
    "run_drill", "run_drill_portable",
]
