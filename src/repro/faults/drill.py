"""A compact, fully deterministic fault drill: one scenario, one report.

The drill is the operational counterpart of the fault-matrix experiment:
a small population with warm seeders, three waves of downloads placed
*before*, *during*, and *after* the fault window of a named scenario from
the library, and a report that shows the §3.8 robustness story end to
end — what completed, what fell back to edge-only delivery, and how fast
the control plane healed.

Everything runs on simulated time from seeded RNGs, so the same
``(scenario, seed)`` produces byte-identical report text on every run —
that property is what makes the drill usable as a regression harness
(``python -m repro faults --scenario control_plane_blackout --seed 42``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import pct, render_audit, render_table
from repro.core.config import InvariantConfig, SystemConfig
from repro.core.content import ContentObject, ContentProvider
from repro.core.peer import CacheEntry, PeerNode
from repro.core.swarm import DownloadSession
from repro.core.system import NetSessionSystem
from repro.faults.injector import FaultInjector, InjectionEvent
from repro.faults.metrics import FaultRecovery, adversary_metrics
from repro.faults.scenarios import DEFENSE_SCENARIOS, build_scenario

__all__ = ["DrillReport", "DrillRequest", "PortableDrillReport",
           "adversary_metrics", "run_drill", "run_drill_portable"]

MB = 1024 * 1024

#: The drill's waves: label -> when downloads start, relative to the fault
#: window (fractions of the hold period; see :func:`run_drill`).
WAVES = ("before", "during", "after")


@dataclass
class DrillReport:
    """Everything a drill produced, plus its deterministic rendering."""

    scenario: str
    seed: int
    timeline: list[InjectionEvent]
    recoveries: list[FaultRecovery]
    #: wave -> list of finished sessions (state inspected post-run).
    sessions: dict[str, list[DownloadSession]] = field(default_factory=dict)
    #: End-of-run control-channel robustness counters (retries, timeouts,
    #: breaker trips, degraded-seconds, time-to-recover, promotions).
    channel: dict[str, float] = field(default_factory=dict)
    #: End-of-run invariant-audit summary: counters plus any recorded
    #: violations (structured, deduplicated; see :mod:`repro.invariants`).
    invariants: dict = field(default_factory=dict)
    #: Adversarial-defense outcome (empty unless the run had adversaries or
    #: the reputation engine): wasted corrupted bytes, ban counts, the
    #: false-positive ban rate against ground truth, accounting outcomes.
    adversary: dict = field(default_factory=dict)
    text: str = ""

    def wave_stats(self, wave: str) -> dict[str, float]:
        """Outcome summary for one wave of downloads."""
        sessions = self.sessions.get(wave, [])
        n = len(sessions)
        if n == 0:
            return {"downloads": 0, "completed": 0, "completion_rate": 0.0,
                    "edge_only": 0, "mean_peer_fraction": 0.0}
        completed = sum(1 for s in sessions if s.state == "completed")
        edge_only = sum(1 for s in sessions if s.peer_bytes == 0)
        mean_pf = sum(s.peer_fraction for s in sessions) / n
        return {
            "downloads": n,
            "completed": completed,
            "completion_rate": completed / n,
            "edge_only": edge_only,
            "mean_peer_fraction": mean_pf,
        }

    def as_json(self) -> dict:
        """Machine-readable view of the drill (``repro faults --json``)."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "timeline": [str(e) for e in self.timeline],
            "waves": {wave: self.wave_stats(wave) for wave in WAVES},
            "recoveries": [
                {
                    "fault": rec.fault,
                    "kind": rec.kind,
                    "applied_at": rec.applied_at,
                    "reverted_at": rec.reverted_at,
                    "connected_dip": rec.connected_dip,
                    "registrations_dip": rec.registrations_dip,
                    "time_to_reconnect": rec.time_to_reconnect,
                    "re_add_convergence": rec.re_add_convergence,
                }
                for rec in self.recoveries
            ],
            "channel": self.channel,
            "invariants": self.invariants,
            "adversary": self.adversary,
        }


def _fmt_opt_seconds(value: float | None) -> str:
    return "-" if value is None else f"{value:.1f}s"


def _render(report: DrillReport) -> str:
    lines = [
        f"fault drill: scenario={report.scenario} seed={report.seed}",
        "",
        "injection timeline",
        "------------------",
    ]
    lines.extend(str(e) for e in report.timeline)
    rows = []
    for wave in WAVES:
        stats = report.wave_stats(wave)
        rows.append([
            wave,
            stats["downloads"],
            stats["completed"],
            pct(stats["completion_rate"]),
            stats["edge_only"],
            pct(stats["mean_peer_fraction"]),
        ])
    lines.append("")
    lines.append(render_table(
        "download waves (relative to the fault window)",
        ["wave", "downloads", "completed", "completion", "edge-only", "peer eff."],
        rows,
    ))
    rows = []
    for rec in report.recoveries:
        rows.append([
            rec.fault,
            rec.kind,
            f"{rec.applied_at:.1f}s",
            f"{rec.reverted_at:.1f}s" if rec.reverted_at is not None else "-",
            rec.connected_dip,
            rec.registrations_dip,
            _fmt_opt_seconds(rec.time_to_reconnect),
            _fmt_opt_seconds(rec.re_add_convergence),
        ])
    lines.append("")
    lines.append(render_table(
        "recovery metrics (§3.8)",
        ["fault", "kind", "applied", "reverted", "conns lost",
         "regs lost", "reconnect", "re-add conv."],
        rows,
    ))
    if report.channel:
        lines.append("")
        lines.append(render_table(
            "control-channel robustness",
            ["counter", "value"],
            [[key, value] for key, value in report.channel.items()],
        ))
    if report.adversary:
        lines.append("")
        lines.append(render_table(
            "adversarial defense (§6.2)",
            ["metric", "value"],
            [[key, value] for key, value in report.adversary.items()],
        ))
    if report.invariants:
        lines.append("")
        lines.append(render_audit("invariant audit", report.invariants))
    return "\n".join(lines)


def run_drill(
    scenario: str = "control_plane_blackout",
    seed: int = 42,
    *,
    n_seeders: int = 12,
    wave_size: int = 4,
    fault_at: float = 600.0,
    fault_duration: float = 3600.0,
    horizon: float = 12 * 3600.0,
    invariants: InvariantConfig | None = None,
) -> DrillReport:
    """Run one scenario against a compact system and report the outcome.

    Three waves of ``wave_size`` downloads each start before the fault
    (in flight when it hits), inside the fault window (these see the
    degraded system from their first byte), and after recovery begins.

    ``invariants`` overrides the audit layer's configuration — the strict
    fault-matrix tests pass ``InvariantConfig(mode="strict")`` so a drill
    doubles as a conservation-law regression; the default inherits the
    usual env-resolved observe mode.  The end-of-run audit summary (and
    any recorded violations) lands in ``DrillReport.invariants``.
    """
    config = SystemConfig() if invariants is None \
        else SystemConfig(invariants=invariants)
    if scenario in DEFENSE_SCENARIOS:
        # Adversarial scenarios are pointless without the thing they test;
        # every other scenario keeps the defaults-off config (and therefore
        # its byte-identical pre-defense baseline).
        config = config.with_defense(enabled=True)
    system = NetSessionSystem(config, seed=seed)
    provider = ContentProvider(cp_code=9001, name="DrillCo")
    obj = ContentObject("drillco/drill.bin", 300 * MB, provider, p2p_enabled=True)
    system.publish(obj)

    country = system.world.by_code["DE"]
    for _ in range(n_seeders):
        seeder = system.create_peer(country=country, uploads_enabled=True)
        seeder.cache[obj.cid] = CacheEntry(obj.cid, completed_at=0.0)
        seeder.boot()

    specs = build_scenario(scenario, at=fault_at, duration=fault_duration)
    injector = FaultInjector(system, specs, seed=seed)
    injector.arm()

    sessions: dict[str, list[DownloadSession]] = {w: [] for w in WAVES}
    wave_times = {
        "before": fault_at * 0.5,
        "during": fault_at + 0.25 * fault_duration,
        "after": fault_at + fault_duration + 900.0,
    }

    def start_wave(wave: str, peer: PeerNode) -> None:
        # A churned peer may be offline right now; its wave slot is skipped
        # rather than rescheduled, keeping the timeline trivially replayable.
        if not peer.online:
            return
        sessions[wave].append(peer.start_download(obj))

    for wave in WAVES:
        for i in range(wave_size):
            peer = system.create_peer(country=country, uploads_enabled=True)
            peer.boot()
            system.sim.schedule_at(
                wave_times[wave] + 15.0 * i,
                lambda w=wave, p=peer: start_wave(w, p),
            )

    system.run(until=horizon)
    system.finalize_open_downloads()
    violations = system.audit(final=True)

    report = DrillReport(
        scenario=scenario,
        seed=seed,
        timeline=list(injector.timeline),
        recoveries=[injector.recoveries[s.name] for s in injector.specs
                    if s.name in injector.recoveries],
        sessions=sessions,
        channel=system.channel_stats.as_dict(),
        invariants={
            **system.auditor.stats().as_dict(),
            "violations": [v.as_dict() for v in violations],
        },
        adversary=adversary_metrics(system),
    )
    report.text = _render(report)
    return report


@dataclass(frozen=True)
class DrillRequest:
    """One drill, fully specified — the process-pool work unit.

    A frozen value object so ``repro faults --all --jobs N`` can ship the
    whole scenario library across a process pool; the worker rebuilds the
    drill from the request alone (all RNGs are seeded from it).
    """

    scenario: str
    seed: int = 42
    fault_at: float = 600.0
    fault_duration: float = 3600.0


@dataclass(frozen=True)
class PortableDrillReport:
    """The picklable face of a :class:`DrillReport`.

    A live report holds finished :class:`DownloadSession` objects (wired
    into the simulated system, unpicklable by design); workers return this
    projection instead — the rendered text plus the machine-readable view,
    which is everything the CLI and CI artifacts consume.
    """

    scenario: str
    seed: int
    text: str
    data: dict


def run_drill_portable(request: DrillRequest) -> PortableDrillReport:
    """Process-pool entry point: run one drill, return its portable report.

    Deterministic from the request alone, so scenario-parallel drills
    print byte-identical reports regardless of job count or worker RNG
    state (the runner test layer enforces the same property for
    scenarios).
    """
    report = run_drill(
        request.scenario, request.seed,
        fault_at=request.fault_at, fault_duration=request.fault_duration,
    )
    return PortableDrillReport(
        scenario=request.scenario,
        seed=request.seed,
        text=report.text,
        data=report.as_json(),
    )
