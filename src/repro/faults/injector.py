"""The injector engine: deterministic application and reversal of faults.

The :class:`FaultInjector` takes a system plus a set of
:class:`~repro.faults.spec.FaultSpec` s, registers apply/revert callbacks
with the :class:`~repro.net.sim.Simulator` event loop, and keeps a
timeline of everything it did.  Determinism is the whole point: the same
(specs, seed) always produces the same injection timeline, because each
fault draws from its own string-seeded RNG and every action happens at a
declared simulated time.

Around each fault the injector snapshots control-plane gauges and, once
recovery begins, runs a :class:`~repro.faults.metrics.RecoveryTracker`
that measures time-to-reconnect and RE-ADD convergence.  Fault lifecycle
events are also reported to the :class:`MonitoringService` — the §3.6
monitoring nodes see the chaos the way they would see real incidents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.messages import CrashReport
from repro.faults.metrics import FaultRecovery, RecoveryTracker
from repro.faults.spec import FaultSpec, InjectionContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import NetSessionSystem

__all__ = ["FaultInjector", "InjectionEvent"]

#: GUID under which injector lifecycle reports appear in monitoring.
INJECTOR_GUID = "fault-injector"


@dataclass(frozen=True)
class InjectionEvent:
    """One entry of the injection timeline."""

    time: float
    fault: str
    phase: str  # "applied" | "reverted"
    detail: str = ""

    def __str__(self) -> str:
        suffix = f"  {self.detail}" if self.detail else ""
        return f"t={self.time:10.1f}s  {self.phase:9s}  {self.fault}{suffix}"


class FaultInjector:
    """Applies a fault schedule to a live system, deterministically."""

    def __init__(
        self,
        system: "NetSessionSystem",
        specs: Iterable[FaultSpec],
        *,
        seed: int = 0,
        track_recovery: bool = True,
        recovery_fraction: float = 0.9,
        recovery_sample_interval: float = 5.0,
        recovery_timeout: float = 6 * 3600.0,
    ):
        specs = sorted(specs, key=lambda s: (s.start, s.name))
        names = [s.name for s in specs]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ValueError(f"duplicate fault names: {sorted(dupes)}")
        self.system = system
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self.track_recovery = track_recovery
        self.recovery_fraction = recovery_fraction
        self.recovery_sample_interval = recovery_sample_interval
        self.recovery_timeout = recovery_timeout
        #: Chronological record of every apply/revert performed.
        self.timeline: list[InjectionEvent] = []
        #: Per-fault recovery measurements, keyed by fault name.
        self.recoveries: dict[str, FaultRecovery] = {}
        self._armed = False

    # ------------------------------------------------------------------ arming

    def arm(self) -> None:
        """Schedule every fault with the simulator.  Call once, before run."""
        if self._armed:
            raise RuntimeError("injector is already armed")
        self._armed = True
        for spec in self.specs:
            self.system.sim.schedule_at(
                spec.start, lambda s=spec: self._apply(s)
            )

    # --------------------------------------------------------------- lifecycle

    def _context(self, spec: FaultSpec) -> InjectionContext:
        return InjectionContext(system=self.system, rng=spec.make_rng(self.seed))

    def _apply(self, spec: FaultSpec) -> None:
        control = self.system.control
        recovery = FaultRecovery(
            fault=spec.name,
            kind=spec.kind(),
            applied_at=self.system.sim.now,
            pre_connected=control.connected_peer_count(),
            pre_registrations=control.total_registrations(),
        )
        ctx = self._context(spec)
        # A fault touching a whole region mutates many links/flows at once;
        # batch() coalesces the entire apply into one rate settlement, even
        # when the injector is driven outside the simulator loop.
        with self.system.flows.batch():
            token = spec.apply(ctx)
        recovery.post_connected = control.connected_peer_count()
        recovery.post_registrations = control.total_registrations()
        self.recoveries[spec.name] = recovery
        self._record(spec, "applied", spec.describe())
        if spec.instantaneous:
            self._finish(spec, ctx, token, reverted=False)
        else:
            self.system.sim.schedule(
                spec.duration, lambda: self._revert(spec, ctx, token)
            )

    def _revert(self, spec: FaultSpec, ctx: InjectionContext, token: object) -> None:
        with self.system.flows.batch():
            spec.revert(ctx, token)
        self._finish(spec, ctx, token, reverted=True)

    def _finish(self, spec: FaultSpec, ctx: InjectionContext, token: object,
                *, reverted: bool) -> None:
        recovery = self.recoveries[spec.name]
        recovery.reverted_at = self.system.sim.now
        if reverted:
            self._record(spec, "reverted")
        if self.track_recovery:
            RecoveryTracker(
                self.system, recovery,
                recovery_fraction=self.recovery_fraction,
                sample_interval=self.recovery_sample_interval,
                timeout=self.recovery_timeout,
            ).start()

    def _record(self, spec: FaultSpec, phase: str, detail: str = "") -> None:
        event = InjectionEvent(
            time=self.system.sim.now, fault=spec.name, phase=phase, detail=detail,
        )
        self.timeline.append(event)
        self.system.control.monitoring.report(CrashReport(
            guid=INJECTOR_GUID,
            kind=f"fault-{phase}",
            detail=f"{spec.name}: {spec.kind()}",
            timestamp=event.time,
        ))

    # -------------------------------------------------------------- inspection

    @property
    def pending(self) -> int:
        """Faults armed but not yet applied."""
        return len(self.specs) - len(self.recoveries)

    def timeline_text(self) -> str:
        """The injection timeline, one line per event (deterministic)."""
        return "\n".join(str(e) for e in self.timeline)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FaultInjector faults={len(self.specs)} "
            f"applied={len(self.recoveries)} seed={self.seed}>"
        )
