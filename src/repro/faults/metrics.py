"""Recovery metrics: how fast the system heals after a fault.

For each injected fault the tracker snapshots the control plane just
before impact (connected peers, directory registrations) and then, once
recovery begins, samples the same gauges on the simulator clock until they
return to a recovery fraction of their pre-fault level (or a timeout
passes).  That yields the §3.8 story as numbers:

* **time to reconnect** — seconds from the start of recovery until the
  fleet-wide count of peers holding a control connection is back;
* **RE-ADD convergence** — seconds until the directory (soft state wiped
  with the DNs) is repopulated by peer re-registrations;

Download-level impact (completion-rate delta, fallback-to-edge fraction)
is computed from the trace by :mod:`repro.analysis.faults`, since it needs
the full log rather than live gauges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import NetSessionSystem

__all__ = ["FaultRecovery", "RecoveryTracker", "adversary_metrics"]


def adversary_metrics(system: "NetSessionSystem") -> dict:
    """Defense outcome vs. ground truth; {} for honest, defenseless runs.

    ``false_positive_ban_rate`` is the fraction of ever-quarantined peers
    that are *not* in ``adversary_truth`` — honest peers the defense
    wrongly banned.  ``inflated_reports_accepted`` counts accounting
    acceptances from known inflators; the §6.2 cross-check keeps it zero.

    Lives here (not in :mod:`repro.faults.drill`) so the runner's artifact
    projection can snapshot it without pulling in the drill machinery.
    """
    truth = system.adversary_truth
    engine = system.reputation
    if not truth and engine is None:
        return {}
    defense = system.defense.snapshot(engine)
    ever_quarantined = 0
    false_positives = 0
    if engine is not None:
        for guid, entry in engine.entries():
            if entry.quarantines > 0:
                ever_quarantined += 1
                if guid not in truth:
                    false_positives += 1
    inflated_accepted = sum(
        1 for r in system.accounting.accepted
        if truth.get(r.guid) == "accounting_inflator")
    inflated_rejected = sum(
        1 for r, _ in system.accounting.rejected
        if truth.get(r.guid) == "accounting_inflator")
    return {
        "adversaries": len(truth),
        "corrupted_bytes_wasted": defense.corrupted_bytes,
        "uploader_bans": defense.uploader_bans,
        "quarantined_peers": ever_quarantined,
        "false_positive_bans": false_positives,
        "false_positive_ban_rate": (
            false_positives / ever_quarantined if ever_quarantined else 0.0),
        "inflated_reports_accepted": inflated_accepted,
        "inflated_reports_rejected": inflated_rejected,
        "registrations_evicted": defense.registrations_evicted,
        "quarantine_leaks": defense.quarantine_leaks,
    }


@dataclass
class FaultRecovery:
    """Everything measured about one fault's impact and recovery."""

    fault: str
    kind: str
    applied_at: float
    reverted_at: Optional[float] = None
    #: Gauges snapshotted immediately before the fault hit.
    pre_connected: int = 0
    pre_registrations: int = 0
    #: Gauges immediately after the fault hit (the depth of the dip).
    post_connected: int = 0
    post_registrations: int = 0
    #: Seconds from recovery start until connected peers are back to the
    #: recovery fraction of the pre-fault count; None = not yet / never.
    time_to_reconnect: Optional[float] = None
    #: Seconds from recovery start until directory registrations are back.
    re_add_convergence: Optional[float] = None

    @property
    def connected_dip(self) -> int:
        """Control connections lost to the fault."""
        return max(0, self.pre_connected - self.post_connected)

    @property
    def registrations_dip(self) -> int:
        """Directory entries lost to the fault."""
        return max(0, self.pre_registrations - self.post_registrations)


class RecoveryTracker:
    """Samples control-plane gauges after a fault until they recover.

    Runs on the simulator: a recurring timer compares the live gauges with
    the pre-fault snapshot and stops itself (cancelling its own event from
    inside the callback) once both have recovered or the timeout passes.
    A gauge that never dipped records an immediate (0.0s) recovery.
    """

    def __init__(
        self,
        system: "NetSessionSystem",
        recovery: FaultRecovery,
        *,
        recovery_fraction: float = 0.9,
        sample_interval: float = 5.0,
        timeout: float = 6 * 3600.0,
    ):
        if not 0 < recovery_fraction <= 1.0:
            raise ValueError(f"recovery_fraction must be in (0, 1], got {recovery_fraction}")
        if sample_interval <= 0:
            raise ValueError(f"sample_interval must be positive, got {sample_interval}")
        self.system = system
        self.recovery = recovery
        self.recovery_fraction = recovery_fraction
        self.sample_interval = sample_interval
        self.timeout = timeout
        self._started_at: Optional[float] = None
        self._event = None

    def start(self) -> None:
        """Begin sampling; call when recovery begins (fault reverted)."""
        if self._event is not None:
            return
        self._started_at = self.system.sim.now
        self._sample()  # the dip may already have healed
        if self._done():
            return
        self._event = self.system.sim.every(
            self.sample_interval, self._tick, first_delay=self.sample_interval
        )

    def _connected_target(self) -> int:
        # In a workload run the online population breathes with the diurnal
        # cycle, so the pre-fault count may be naturally unreachable hours
        # later; the honest target is the smaller of the snapshot and the
        # peers that are online to reconnect right now.
        online = self.system.online_peer_count()
        return int(self.recovery_fraction * min(self.recovery.pre_connected, online))

    def _registrations_target(self) -> int:
        return int(self.recovery_fraction * self.recovery.pre_registrations)

    def _sample(self) -> None:
        rec = self.recovery
        now = self.system.sim.now
        elapsed = now - (self._started_at if self._started_at is not None else now)
        control = self.system.control
        if rec.time_to_reconnect is None:
            if control.connected_peer_count() >= self._connected_target():
                rec.time_to_reconnect = elapsed
        if rec.re_add_convergence is None:
            if control.total_registrations() >= self._registrations_target():
                rec.re_add_convergence = elapsed
        return None

    def _done(self) -> bool:
        rec = self.recovery
        return rec.time_to_reconnect is not None and rec.re_add_convergence is not None

    def _tick(self) -> None:
        self._sample()
        assert self._started_at is not None
        timed_out = self.system.sim.now - self._started_at >= self.timeout
        if self._done() or timed_out:
            if self._event is not None:
                self._event.cancel()
                self._event = None
