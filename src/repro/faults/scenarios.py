"""The scenario library: named, ready-to-run fault schedules.

Each scenario is a factory ``(at, duration) -> tuple[FaultSpec, ...]`` so
callers (the fault-matrix experiment, the CLI drill, examples) can slide
the same canonical failure onto their own timeline.  Scenarios compose —
``rolling_upgrade`` is a staggered sequence of CN outages and DN wipes,
the way a §3.8 software push actually rolls through a deployment.

Adding a scenario is one entry in :data:`SCENARIOS`; adding a new *kind*
of fault is a :class:`~repro.faults.spec.FaultSpec` subclass.
"""

from __future__ import annotations

from typing import Callable

from repro.faults.spec import (
    AdversarialInfestation, CNOutage, ControlLatencySpike, ControlMessageLoss,
    ControlPlaneBlackout, DNWipe, EdgeBrownout, FaultSpec, FlakyUploader,
    LinkDegradation, NATRebind, PeerChurnStorm, RegionPartition,
    ReputationWipe,
)

__all__ = [
    "DEFENSE_SCENARIOS", "SCENARIOS", "build_scenario", "scenario_names",
]

#: Default position of a scenario inside a run, seconds.
DEFAULT_AT = 1800.0
#: Default hold period for faults that have one, seconds.
DEFAULT_DURATION = 3600.0

ScenarioFactory = Callable[[float, float], tuple[FaultSpec, ...]]


def _control_plane_blackout(at: float, duration: float) -> tuple[FaultSpec, ...]:
    """Total control-plane failure: every CN and DN down (§3.8 worst case)."""
    return (ControlPlaneBlackout("blackout", start=at, duration=duration),)


def _cn_flap(at: float, duration: float) -> tuple[FaultSpec, ...]:
    """Half the CNs crash and later restart; peers reconnect rate-limited."""
    return (CNOutage("cn-flap", start=at, duration=duration, fraction=0.5),)


def _dn_wipe(at: float, duration: float) -> tuple[FaultSpec, ...]:
    """Every DN loses its soft state; RE-ADD rebuilds the directory."""
    return (DNWipe("dn-wipe", start=at, duration=0.0, re_add=True),)


def _edge_brownout(at: float, duration: float) -> tuple[FaultSpec, ...]:
    """Edge egress collapses to 5% fleet-wide; the swarm carries the load."""
    return (EdgeBrownout("edge-brownout", start=at, duration=duration,
                         capacity_factor=0.05),)


def _link_degradation(at: float, duration: float) -> tuple[FaultSpec, ...]:
    """A third of all access links degrade to 20% capacity (congestion)."""
    return (LinkDegradation("link-degradation", start=at, duration=duration,
                            fraction=0.33, down_factor=0.2, up_factor=0.2),)


def _nat_rebind(at: float, duration: float) -> tuple[FaultSpec, ...]:
    """A quarter of the population's NAT mappings rebind (CPE/CGN churn)."""
    return (NATRebind("nat-rebind", start=at, duration=duration, fraction=0.25),)


def _churn_storm(at: float, duration: float) -> tuple[FaultSpec, ...]:
    """A disconnect burst: 40% of online peers drop and return."""
    return (PeerChurnStorm("churn-storm", start=at, duration=max(duration, 60.0),
                           fraction=0.4, downtime=(30.0, 600.0)),)


def _flaky_uploaders(at: float, duration: float) -> tuple[FaultSpec, ...]:
    """A fifth of uploaders start corrupting 5% of the pieces they serve."""
    return (FlakyUploader("flaky-uploaders", start=at, duration=duration,
                          fraction=0.2, corruption_prob=0.05),)


def _control_message_loss(at: float, duration: float) -> tuple[FaultSpec, ...]:
    """30% control-message loss fleet-wide; timeouts and backoff absorb it."""
    return (ControlMessageLoss("control-loss", start=at, duration=duration,
                               fraction=1.0, loss_prob=0.3),)


def _control_latency_spike(at: float, duration: float) -> tuple[FaultSpec, ...]:
    """Control RTT jumps to 10s fleet-wide (5s each way); RPCs slow, none die."""
    return (ControlLatencySpike("control-latency", start=at, duration=duration,
                                fraction=1.0, latency=5.0),)


def _control_partition(at: float, duration: float) -> tuple[FaultSpec, ...]:
    """All peers lose the control path while the servers stay healthy;
    breakers trip to edge-only and probes recover the fleet on heal."""
    return (RegionPartition("control-partition", start=at, duration=duration,
                            region=None),)


def _rolling_upgrade(at: float, duration: float) -> tuple[FaultSpec, ...]:
    """A software push rolls through the control plane in three waves."""
    wave = max(duration, 60.0) / 3.0
    return (
        DNWipe("upgrade-dns", start=at, duration=0.0, re_add=True),
        CNOutage("upgrade-cns-a", start=at + wave, duration=wave, fraction=0.5),
        CNOutage("upgrade-cns-b", start=at + 2 * wave, duration=wave, fraction=1.0),
    )


def _perfect_storm(at: float, duration: float) -> tuple[FaultSpec, ...]:
    """Everything at once: blackout + churn + brownout + flaky uploaders."""
    d = max(duration, 60.0)
    return (
        ControlPlaneBlackout("storm-blackout", start=at, duration=d),
        PeerChurnStorm("storm-churn", start=at, duration=d,
                       fraction=0.3, downtime=(60.0, 900.0)),
        EdgeBrownout("storm-brownout", start=at + d / 2, duration=d,
                     capacity_factor=0.2),
        FlakyUploader("storm-flaky", start=at, duration=2 * d,
                      fraction=0.15, corruption_prob=0.03),
    )


def _adversarial_infestation(at: float, duration: float) -> tuple[FaultSpec, ...]:
    """15% of the population is compromised mid-run (all five profiles);
    the cleanup lands when the fault reverts, but reputation remembers."""
    return (AdversarialInfestation("adversarial-infestation", start=at,
                                   duration=duration, fraction=0.15),)


def _reputation_wipe(at: float, duration: float) -> tuple[FaultSpec, ...]:
    """An infestation at t=at, then the defense loses its memory mid-fight
    and must re-detect every quarantined adversary from scratch."""
    return (
        AdversarialInfestation("wipe-infestation", start=at,
                               duration=2 * max(duration, 60.0), fraction=0.15),
        ReputationWipe("reputation-wipe", start=at + max(duration, 60.0)),
    )


SCENARIOS: dict[str, ScenarioFactory] = {
    "control_plane_blackout": _control_plane_blackout,
    "cn_flap": _cn_flap,
    "dn_wipe": _dn_wipe,
    "edge_brownout": _edge_brownout,
    "link_degradation": _link_degradation,
    "nat_rebind": _nat_rebind,
    "churn_storm": _churn_storm,
    "flaky_uploaders": _flaky_uploaders,
    "control_message_loss": _control_message_loss,
    "control_latency_spike": _control_latency_spike,
    "control_partition": _control_partition,
    "rolling_upgrade": _rolling_upgrade,
    "perfect_storm": _perfect_storm,
    "adversarial_infestation": _adversarial_infestation,
    "reputation_wipe": _reputation_wipe,
}

#: Scenarios whose whole point is the reputation defense: the drill enables
#: ``SystemConfig.defense`` for these (every other scenario keeps the
#: defaults-off config and its byte-identical baseline).
DEFENSE_SCENARIOS = frozenset({"adversarial_infestation", "reputation_wipe"})


def scenario_names() -> list[str]:
    """The library's scenario names, in declaration order."""
    return list(SCENARIOS)


def build_scenario(
    name: str,
    *,
    at: float = DEFAULT_AT,
    duration: float = DEFAULT_DURATION,
) -> tuple[FaultSpec, ...]:
    """Instantiate a named scenario on a concrete timeline."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault scenario {name!r}; available: {', '.join(SCENARIOS)}"
        ) from None
    return factory(at, duration)
