"""The declarative fault model: what can break, when, and for how long.

A :class:`FaultSpec` is a frozen dataclass describing one fault: a unique
name, an absolute start time, a duration (0 = instantaneous), and whatever
scope selector the fault kind needs (a network region, a population
fraction).  Specs carry their own behaviour — ``apply()`` breaks things and
returns an opaque revert token, ``revert()`` consumes it — so the injector
engine stays generic and a custom fault is one subclass away (see
DESIGN.md's "Fault injection" section).

Randomness is per fault: each spec derives its own RNG from the scenario
seed and its name (string seeding, so the stream is stable across
processes regardless of ``PYTHONHASHSEED``).  Two specs never share a
stream, which means adding a fault to a scenario cannot perturb how an
existing fault selects its victims.

The faults map to the paper's robustness story (§3.8): CN outages and DN
wipes exercise reconnection and RE-ADD; a control-plane blackout exercises
the edge-only fallback; brownouts, link degradation, NAT rebinds, churn
storms, and flaky uploaders exercise the data-path defences (backstop,
endgame steal, piece verification).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import NetSessionSystem

__all__ = [
    "FaultSpec", "InjectionContext",
    "CNOutage", "DNWipe", "ControlPlaneBlackout", "EdgeBrownout",
    "LinkDegradation", "NATRebind", "PeerChurnStorm", "FlakyUploader",
    "ControlMessageLoss", "ControlLatencySpike", "RegionPartition",
    "AdversarialInfestation", "ReputationWipe",
]

T = TypeVar("T")


@dataclass
class InjectionContext:
    """What a fault handler gets to work with: the system and its own RNG."""

    system: "NetSessionSystem"
    rng: random.Random

    def select(self, items: Sequence[T], fraction: float) -> list[T]:
        """Deterministically sample ``fraction`` of ``items`` (at least one).

        ``items`` must be in a stable order (lists built in creation order
        are); the draw comes from the fault's own RNG.
        """
        items = list(items)
        if not items or fraction <= 0:
            return []
        k = min(len(items), max(1, round(fraction * len(items))))
        return self.rng.sample(items, k)


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: name, timing, and (in subclasses) scope."""

    name: str
    #: Absolute simulated start time, seconds.
    start: float
    #: Seconds until the fault is reverted; 0 means instantaneous (the
    #: fault happens and recovery begins immediately, e.g. a DN wipe).
    duration: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("fault needs a non-empty name")
        if self.start < 0:
            raise ValueError(f"fault {self.name!r}: start must be >= 0, got {self.start}")
        if self.duration < 0:
            raise ValueError(
                f"fault {self.name!r}: duration must be >= 0, got {self.duration}"
            )

    @property
    def instantaneous(self) -> bool:
        """True when the fault has no hold period (apply == the whole event)."""
        return self.duration <= 0

    @property
    def end(self) -> float:
        """Absolute time the fault is reverted."""
        return self.start + self.duration

    def make_rng(self, seed: int) -> random.Random:
        """The fault's private RNG, stable across processes.

        String seeding hashes through SHA-512 inside ``random.Random``, so
        the stream does not depend on ``PYTHONHASHSEED``.
        """
        return random.Random(f"fault:{seed}:{self.name}")

    def apply(self, ctx: InjectionContext) -> object:
        """Break things.  Returns an opaque token ``revert`` will consume."""
        raise NotImplementedError

    def revert(self, ctx: InjectionContext, token: object) -> None:
        """Undo the fault (restore capacity, restart nodes...).  Default no-op:
        instantaneous faults and faults whose recovery is driven by the
        system itself (RE-ADD, reconnection) need nothing here."""

    def describe(self) -> str:
        """One-line human summary for timelines and reports."""
        window = "instant" if self.instantaneous else f"{self.duration:.0f}s"
        return f"{self.kind()} at t={self.start:.0f}s ({window})"

    @classmethod
    def kind(cls) -> str:
        """Stable identifier of the fault class for reports."""
        return cls.__name__


# --------------------------------------------------------------- control plane


@dataclass(frozen=True)
class CNOutage(FaultSpec):
    """Crash a set of connection nodes; restart them when the fault ends.

    Connected peers are orphaned and reconnect elsewhere, rate-limited
    (§3.8).  With ``fraction=1.0`` and no surviving region this shades into
    a control-plane blackout for queries — use
    :class:`ControlPlaneBlackout` when the DNs should go too.
    """

    #: Restrict to one network region; None = fleet-wide.
    region: str | None = None
    #: Fraction of the in-scope, alive CNs to crash.
    fraction: float = 1.0

    def apply(self, ctx: InjectionContext) -> object:
        plane = ctx.system.control
        pool = [
            cn for cn in plane.all_cns
            if cn.alive and (self.region is None or cn.network_region == self.region)
        ]
        victims = ctx.select(pool, self.fraction)
        for cn in victims:
            plane.fail_cn(cn)
        return victims

    def revert(self, ctx: InjectionContext, token: object) -> None:
        plane = ctx.system.control
        for cn in token:
            plane.recover_cn(cn)
        # Victims' peers already reconnected at crash time *if* a CN was
        # alive to take them; after a full outage they were stranded with
        # no CN at all and retry once service returns (§3.8).
        plane.reconnect_stranded(ctx.system.iter_peer_nodes())


@dataclass(frozen=True)
class DNWipe(FaultSpec):
    """Crash database nodes, losing their soft state (§3.8).

    Instantaneous (``duration=0``) with ``re_add=True`` models the
    fail-and-recover cycle the paper describes: the node restarts empty and
    the CNs broadcast RE-ADD so peers repopulate the directory.  With a
    duration, the DNs stay down (queries degrade) and recover at the end.
    """

    region: str | None = None
    fraction: float = 1.0
    #: Broadcast RE-ADD on recovery so peers re-list their stored files.
    re_add: bool = True

    def apply(self, ctx: InjectionContext) -> object:
        plane = ctx.system.control
        pool = [
            dn for dn in plane.all_dns
            if dn.alive and (self.region is None or dn.network_region == self.region)
        ]
        victims = ctx.select(pool, self.fraction)
        if self.instantaneous:
            for dn in victims:
                plane.fail_dn(dn, recover=self.re_add)
                if not self.re_add:
                    dn.recover()
            return []
        for dn in victims:
            dn.fail()
        return victims

    def revert(self, ctx: InjectionContext, token: object) -> None:
        plane = ctx.system.control
        now = ctx.system.sim.now
        for dn in token:
            dn.recover()
            if self.re_add:
                for cn in plane.cns_by_region.get(dn.network_region, ()):
                    if cn.alive:
                        cn.broadcast_re_add(now)


@dataclass(frozen=True)
class ControlPlaneBlackout(FaultSpec):
    """Every CN and DN down (in a region, or everywhere) for the duration.

    The §3.8 worst case: peers that cannot reach any CN still download,
    edge-only.  On restore the DNs come back empty and are repopulated by
    peer logins and registration refreshes; online peers are reconnected
    rate-limited through the plane's shared token bucket.

    With ``self_recovery=True`` the restore brings the servers back but
    schedules no reconnections: the clients must find their own way back
    through the control channel's breaker probes and refresh failovers —
    the scenario `exp_blackout_recovery` measures.
    """

    region: str | None = None
    #: Leave recovery entirely to the per-peer channel machinery.
    self_recovery: bool = False

    def apply(self, ctx: InjectionContext) -> object:
        ctx.system.control.blackout(self.region)
        return None

    def revert(self, ctx: InjectionContext, token: object) -> None:
        peers = None if self.self_recovery else ctx.system.iter_peer_nodes()
        ctx.system.control.restore(self.region, peers=peers)


# -------------------------------------------------------------- control channel


@dataclass(frozen=True)
class ControlMessageLoss(FaultSpec):
    """Drop a fraction of control messages on a set of peers' channels.

    Each affected peer's :class:`~repro.core.control.channel.ControlChannel`
    starts losing messages in both directions with ``loss_prob``; the
    channel's timeouts, backoff retries, and (past the breaker threshold)
    degraded-mode machinery absorb the damage.  The fault composes with
    :class:`ControlLatencySpike` — each restores only the knob it touched.
    """

    #: Fraction of peers whose channel turns lossy.
    fraction: float = 1.0
    #: Per-direction message loss probability while the fault holds.
    loss_prob: float = 0.3

    def __post_init__(self):
        super().__post_init__()
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError(
                f"fault {self.name!r}: loss_prob must be in [0, 1), got {self.loss_prob}"
            )

    def apply(self, ctx: InjectionContext) -> object:
        victims = []
        for peer in ctx.select(ctx.system.peer_universe(), self.fraction):
            victims.append((peer, peer.channel.loss_prob))
            peer.channel.loss_prob = self.loss_prob
        return victims

    def revert(self, ctx: InjectionContext, token: object) -> None:
        for peer, old in token:
            peer.channel.loss_prob = old


@dataclass(frozen=True)
class ControlLatencySpike(FaultSpec):
    """Inflate control-channel latency on a set of peers (congested path).

    Every RPC now takes two one-way trips of ``latency`` seconds; responses
    slower than the channel's request timeout are treated as lost, so a
    spike past the timeout shades into effective message loss.
    """

    fraction: float = 1.0
    #: One-way control-message latency while the fault holds, seconds.
    latency: float = 5.0

    def __post_init__(self):
        super().__post_init__()
        if self.latency < 0:
            raise ValueError(
                f"fault {self.name!r}: latency must be >= 0, got {self.latency}"
            )

    def apply(self, ctx: InjectionContext) -> object:
        victims = []
        for peer in ctx.select(ctx.system.peer_universe(), self.fraction):
            victims.append((peer, peer.channel.latency))
            peer.channel.latency = self.latency
        return victims

    def revert(self, ctx: InjectionContext, token: object) -> None:
        for peer, old in token:
            peer.channel.latency = old


@dataclass(frozen=True)
class RegionPartition(FaultSpec):
    """Cut the control path between a region's peers and every CN.

    Unlike :class:`ControlPlaneBlackout` the servers stay healthy — only
    the affected peers cannot reach them (a transit dispute, a mis-pushed
    ACL).  Their channels stop delivering messages entirely: requests time
    out, breakers trip, downloads degrade to edge-only, and when the
    partition heals the recovery probes bring the region back without any
    server-side action.  ``region=None`` partitions every peer.
    """

    #: Network region to cut off; None = all peers everywhere.
    region: str | None = None

    def apply(self, ctx: InjectionContext) -> object:
        victims = []
        for peer in ctx.system.peer_universe():
            if self.region is not None and peer.network_region != self.region:
                continue
            if peer.channel.reachable:
                peer.channel.reachable = False
                victims.append(peer)
        return victims

    def revert(self, ctx: InjectionContext, token: object) -> None:
        for peer in token:
            peer.channel.reachable = True


# ------------------------------------------------------------------- data path


@dataclass(frozen=True)
class EdgeBrownout(FaultSpec):
    """Degrade edge-server egress to a fraction of normal capacity.

    The infrastructure half of the hybrid weakens: peer-assisted downloads
    lean on the swarm, edge-only downloads slow down.  This is the scenario
    where peer assistance is a *reliability* feature, not just a cost one.
    """

    region: str | None = None
    fraction: float = 1.0
    #: Remaining egress as a fraction of normal.
    capacity_factor: float = 0.1

    def apply(self, ctx: InjectionContext) -> object:
        servers = ctx.system.edge.servers_in(self.region)
        victims = [
            s for s in ctx.select(servers, self.fraction)
            if s.apply_brownout(ctx.system.flows, self.capacity_factor)
        ]
        return victims

    def revert(self, ctx: InjectionContext, token: object) -> None:
        for server in token:
            server.clear_brownout(ctx.system.flows)


@dataclass(frozen=True)
class LinkDegradation(FaultSpec):
    """Degrade a fraction of peers' access links (congestion, line faults).

    Both directions shrink; in-flight flows are re-allocated immediately.
    The edge backstop should absorb most of the damage for downloads whose
    *uploaders* are hit.
    """

    fraction: float = 0.25
    down_factor: float = 0.2
    up_factor: float = 0.2

    def apply(self, ctx: InjectionContext) -> object:
        flows = ctx.system.flows
        victims = [
            peer for peer in ctx.select(ctx.system.peer_universe(), self.fraction)
            if peer.link.degrade(flows, self.down_factor, self.up_factor)
        ]
        return victims

    def revert(self, ctx: InjectionContext, token: object) -> None:
        flows = ctx.system.flows
        for peer in token:
            peer.link.restore(flows)


@dataclass(frozen=True)
class NATRebind(FaultSpec):
    """Re-draw the NAT profile of a fraction of peers (CPE reboots, CGN churn).

    The directory keeps each victim's stale reported type until its next
    refresh, so candidate selection temporarily works from wrong
    connectivity data — the §3.7 matching degrades exactly as it would in
    production.  With a duration, the original profiles return at the end;
    instantaneous rebinds are permanent.
    """

    fraction: float = 0.2

    def apply(self, ctx: InjectionContext) -> object:
        nat_model = ctx.system.nat_model
        victims = []
        for peer in ctx.select(ctx.system.peer_universe(), self.fraction):
            old = peer.nat_profile
            peer.rebind_nat(nat_model.rebind(old, ctx.rng))
            victims.append((peer, old))
        return victims

    def revert(self, ctx: InjectionContext, token: object) -> None:
        if self.instantaneous:
            return
        for peer, old in token:
            peer.rebind_nat(old)


@dataclass(frozen=True)
class PeerChurnStorm(FaultSpec):
    """A burst of disconnects: a fraction of online peers drop and return.

    Each victim goes offline at a random moment inside the storm window and
    comes back after a random downtime — downloads pause/resume, uploads
    die and are replaced, directory entries are withdrawn and re-added.
    Requires a positive duration (a zero-length storm is no storm).
    """

    fraction: float = 0.3
    #: (low, high) seconds a churned peer stays offline.
    downtime: tuple[float, float] = (30.0, 300.0)

    def __post_init__(self):
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError(f"fault {self.name!r}: a churn storm needs a positive duration")
        lo, hi = self.downtime
        if lo < 0 or hi < lo:
            raise ValueError(f"fault {self.name!r}: invalid downtime range {self.downtime}")

    def apply(self, ctx: InjectionContext) -> object:
        sim = ctx.system.sim
        online = [p for p in ctx.system.peer_universe() if p.online]
        lo, hi = self.downtime
        for peer in ctx.select(online, self.fraction):
            offset = ctx.rng.uniform(0.0, self.duration)
            downtime = ctx.rng.uniform(lo, hi)
            sim.schedule(offset, lambda p=peer, d=downtime: p.churn(d))
        return None


@dataclass(frozen=True)
class FlakyUploader(FaultSpec):
    """Raise the piece-corruption probability of a fraction of uploaders.

    Exercises the §3.5 integrity defences end to end: hash verification
    discards bad pieces, repeat offenders get their connections dropped,
    and only a download drowning in corruption fails with a system cause.
    """

    fraction: float = 0.2
    corruption_prob: float = 0.05

    def __post_init__(self):
        super().__post_init__()
        if not 0 <= self.corruption_prob <= 1:
            raise ValueError(
                f"fault {self.name!r}: corruption_prob out of range: {self.corruption_prob}"
            )

    def apply(self, ctx: InjectionContext) -> object:
        uploaders = [p for p in ctx.system.peer_universe() if p.uploads_enabled]
        victims = []
        for peer in ctx.select(uploaders, self.fraction):
            victims.append((peer, peer.piece_corruption_prob))
            peer.piece_corruption_prob = self.corruption_prob
        return victims

    def revert(self, ctx: InjectionContext, token: object) -> None:
        for peer, old_prob in token:
            peer.piece_corruption_prob = old_prob


# ----------------------------------------------------------------- adversaries


@dataclass(frozen=True)
class AdversarialInfestation(FaultSpec):
    """Convert a fraction of the population into adversaries mid-run.

    Applies the :mod:`repro.adversary.profiles` misbehavior profiles —
    unlike the scenario-level ``adversary`` leaf (present from t=0), this
    models a *compromise event*: a malware push or a Sybil wave landing on
    a previously honest swarm.  Victims are recorded in the system's
    ``adversary_truth`` so the drill's false-positive-ban metric still has
    ground truth; reverting restores the saved peer attributes (the
    "cleanup" half of the incident) but deliberately leaves the truth map
    and any reputation state in place — detection history is real history.
    """

    fraction: float = 0.1
    #: Restrict to one profile, or None for the uniform five-way mix.
    profile: str | None = None
    #: Per-piece corruption probability for converted corrupters.
    corruption_prob: float = 0.3
    #: Upload-cap factor for converted slow-loris peers.
    slow_factor: float = 0.02

    def __post_init__(self):
        super().__post_init__()
        from repro.adversary.profiles import PROFILES

        if not 0 < self.fraction <= 1:
            raise ValueError(
                f"fault {self.name!r}: fraction must be in (0, 1], got {self.fraction}"
            )
        if self.profile is not None and self.profile not in PROFILES:
            raise ValueError(
                f"fault {self.name!r}: unknown profile {self.profile!r}"
            )

    def apply(self, ctx: InjectionContext) -> object:
        from repro.adversary.profiles import (
            AdversaryConfig, PROFILES, apply_profile, choose_profile,
        )

        config = AdversaryConfig(
            fraction=self.fraction,
            corruption_prob=self.corruption_prob,
            slow_factor=self.slow_factor,
        )
        honest = [
            p for p in ctx.system.peer_universe() if p.adversary_profile is None
        ]
        tokens = []
        for peer in ctx.select(honest, self.fraction):
            profile = self.profile or choose_profile(ctx.rng)
            tokens.append(apply_profile(peer, profile, config))
            ctx.system.adversary_truth[peer.guid] = profile
        return tokens

    def revert(self, ctx: InjectionContext, token: object) -> None:
        from repro.adversary.profiles import revert_profile

        for t in token:
            revert_profile(t)


@dataclass(frozen=True)
class ReputationWipe(FaultSpec):
    """Erase the reputation engine's memory (instantaneous).

    Models losing the defense's soft state — a CN-side restart, a bad
    schema migration.  Every score and quarantine is forgotten: banned
    adversaries walk free until re-detected, which is exactly the recovery
    curve the adversarial drill measures.  A no-op when the defense is off.
    """

    def apply(self, ctx: InjectionContext) -> object:
        engine = ctx.system.reputation
        if engine is None:
            return 0
        return engine.wipe()
