"""Seeded scenario fuzzing with strict invariants and greedy shrinking.

The fuzzer is the offensive half of the :mod:`repro.invariants` sanitizer:
it generates randomized workload/fault/configuration combinations the
hand-written tests would never think to try, runs each one with strict
invariants, and — when a run violates a conservation law — *shrinks* the
specification to a minimal still-failing reproducer and emits a standalone
Python script that replays it.

Everything is keyed by an integer seed: :func:`generate` draws a
:class:`FuzzSpec` from a string-seeded RNG, and :func:`run_spec` builds the
system deterministically from the spec alone, so a failure found in CI
replays exactly from its seed (or its shrunk spec) on any machine.

Used by ``tests/fuzz/`` (see TESTING.md); the slow sweep is marked
``fuzz`` and runs in its own CI job.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, replace
from typing import Callable, Optional

from repro.adversary.profiles import PROFILES as _PROFILES
from repro.core.config import (
    ControlChannelConfig, DefenseConfig, InvariantConfig, SystemConfig,
)
from repro.core.content import ContentObject, ContentProvider
from repro.core.peer import CacheEntry
from repro.core.system import NetSessionSystem
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import build_scenario, scenario_names
from repro.invariants import InvariantViolationError

__all__ = ["FuzzSpec", "FuzzResult", "generate", "run_spec", "run_seed",
           "run_seeds", "shrink", "reproducer_script"]

MB = 1024 * 1024


@dataclass(frozen=True)
class FuzzSpec:
    """One randomized scenario, fully determined by its fields.

    Frozen so shrinking can produce simplified copies with
    :func:`dataclasses.replace` while the original stays intact.
    """

    seed: int
    n_seeders: int = 8
    n_downloaders: int = 8
    object_mb: int = 96
    n_objects: int = 2
    #: Fraction of objects published with p2p enabled.
    p2p_fraction: float = 1.0
    duration_hours: float = 6.0
    #: Scenario name from the fault library, or None for a fault-free run.
    fault_scenario: Optional[str] = None
    fault_at: float = 600.0
    fault_duration: float = 1800.0
    #: Control-channel impairment baked into the config (on top of any
    #: fault-injected impairment).
    channel_latency: float = 0.0
    channel_loss: float = 0.0
    flow_batching: bool = True
    #: Edge egress cap in Mbit/s, or None for overprovisioned.
    edge_egress_mbps: Optional[float] = None
    #: Mid-run peer churn: this many (offline, online) round trips.
    churn_events: int = 0
    #: Mid-run session pause/resume round trips.
    pause_resume_events: int = 0
    #: Sampled-audit cadence; fuzz runs are small, so audit often.
    every_events: int = 500
    #: VoD streaming sessions layered on top of the download workload
    #: (0 keeps the run identical to a pre-VoD fuzzer: no video object is
    #: published and no extra RNG is consumed at run time).
    vod_streams: int = 0
    #: Serving policy installed for the video cid, or None for no policy.
    vod_policy: Optional[str] = None
    #: Water-filling kernel for the run ("numpy"|"python"|"auto"); fuzz
    #: workloads are small, so this mostly exercises the dispatch seam.
    kernel: str = "auto"
    #: Fraction of peers converted to misbehavior profiles (0.0 keeps the
    #: run identical to a pre-adversary fuzzer: nothing is converted and
    #: no extra RNG stream exists).
    adversary_fraction: float = 0.0
    #: Restrict the conversion to one profile, or None for the uniform mix.
    adversary_profile: Optional[str] = None
    #: Run with the reputation/quarantine defense enabled.
    defense: bool = False
    #: Pool width for an extra region-sharded mini-scenario run under
    #: strict invariants after the classic fuzz run (0 skips it entirely:
    #: no scenario is built and no extra RNG stream exists, so the run is
    #: bit-identical to a pre-sharding fuzzer).  Exercises the columnar
    #: store, lazy materialization, and the shard merge/reconcile pass.
    shards: int = 0
    #: Device-tier mix for the mini-scenario ("off" or a preset name from
    #: :data:`repro.workload.devices.PRESET_MIXES`).  "off" keeps the run
    #: bit-identical to a pre-device fuzzer; any preset forces the
    #: mini-scenario to run (unsharded if ``shards == 0``) with
    #: heterogeneous classes under strict invariants, exercising the
    #: device columns, class scheduling, caps, and the budget checker.
    device_mix: str = "off"

    def label(self) -> str:
        """Compact identifier for logs and test ids."""
        fault = self.fault_scenario or "none"
        return (f"seed={self.seed} peers={self.n_seeders}+{self.n_downloaders} "
                f"obj={self.n_objects}x{self.object_mb}MB fault={fault} "
                f"loss={self.channel_loss:.2f} batching={self.flow_batching}")


@dataclass
class FuzzResult:
    """Outcome of one strict-invariant fuzz run."""

    spec: FuzzSpec
    #: None when the run was clean; the strict-mode exception otherwise.
    failure: Optional[InvariantViolationError]
    completed_downloads: int = 0
    warnings: int = 0

    @property
    def ok(self) -> bool:
        return self.failure is None


def generate(seed: int) -> FuzzSpec:
    """Draw one randomized spec from a string-seeded RNG.

    The RNG stream is independent of every system RNG (string-seeded like
    the control channel's), so spec generation never perturbs a run.
    """
    rng = random.Random(f"repro-fuzz:{seed}")
    fault = None
    if rng.random() < 0.7:
        fault = rng.choice(scenario_names())
    duration_hours = rng.uniform(2.0, 10.0)
    fault_at = rng.uniform(300.0, 0.4 * duration_hours * 3600.0)
    return FuzzSpec(
        seed=seed,
        n_seeders=rng.randint(2, 14),
        n_downloaders=rng.randint(2, 14),
        object_mb=rng.choice((16, 48, 96, 160, 300)),
        n_objects=rng.randint(1, 3),
        p2p_fraction=rng.choice((1.0, 1.0, 0.5)),
        duration_hours=duration_hours,
        fault_scenario=fault,
        fault_at=fault_at,
        fault_duration=rng.uniform(600.0, 3600.0),
        channel_latency=rng.choice((0.0, 0.0, 0.05, 0.25)),
        channel_loss=rng.choice((0.0, 0.0, 0.02, 0.10)),
        flow_batching=rng.random() < 0.8,
        edge_egress_mbps=rng.choice((None, None, 500.0, 2000.0)),
        churn_events=rng.randint(0, 6),
        pause_resume_events=rng.randint(0, 6),
        # Newer fields draw last, newest at the bottom: every older field
        # above keeps the exact value the same seed produced before the
        # newer knob was fuzzable.
        vod_streams=rng.choice((0, 0, 0, 2, 4)),
        vod_policy=rng.choice(
            (None, "unrestricted", "isp_local", "popularity_seeding")
        ),
        kernel=rng.choice(("auto", "numpy", "python")),
        adversary_fraction=rng.choice((0.0, 0.0, 0.0, 0.15, 0.3)),
        adversary_profile=rng.choice((None, None) + _PROFILES),
        defense=rng.random() < 0.5,
        shards=rng.choice((0, 0, 0, 1, 2, 4)),
        device_mix=rng.choice(
            ("off", "off", "off", "balanced", "router_heavy", "mobile_heavy")),
    )


def _build_config(spec: FuzzSpec) -> SystemConfig:
    return SystemConfig(
        channel=ControlChannelConfig(
            latency=spec.channel_latency,
            loss_prob=spec.channel_loss,
        ),
        invariants=InvariantConfig(
            mode="strict", every_events=spec.every_events
        ),
        flow_batching=spec.flow_batching,
        edge_egress_mbps=spec.edge_egress_mbps,
        kernel=spec.kernel,
        defense=DefenseConfig(enabled=spec.defense),
    )


def run_spec(spec: FuzzSpec) -> FuzzResult:
    """Build and run one spec under strict invariants.

    Returns a clean :class:`FuzzResult` or one carrying the
    :class:`InvariantViolationError` that strict mode raised.  Never lets
    the violation propagate — the sweep wants to keep fuzzing.
    """
    try:
        system = NetSessionSystem(_build_config(spec), seed=spec.seed)
        rng = random.Random(f"repro-fuzz-run:{spec.seed}")
        provider = ContentProvider(cp_code=7001, name="FuzzCo")
        objects = []
        for i in range(spec.n_objects):
            objects.append(ContentObject(
                f"fuzzco/blob-{i}.bin", spec.object_mb * MB, provider,
                p2p_enabled=(i < spec.p2p_fraction * spec.n_objects or i == 0),
            ))
            system.publish(objects[-1])

        # The optional VoD layer: a dedicated video object, seeded into half
        # the seeders *before* they boot (so the copies register with the
        # control plane at login).  With vod_streams == 0 this whole layer —
        # object, caches, policy, streams — does not exist and the run is
        # bit-identical to a download-only fuzz.
        video = None
        if spec.vod_streams > 0:
            video = ContentObject(
                "fuzzco/video-0.mp4", 24 * MB, provider, p2p_enabled=True,
            )
            system.publish(video)

        country = system.world.by_code["DE"]
        seeders = []
        for _ in range(spec.n_seeders):
            seeder = system.create_peer(country=country, uploads_enabled=True)
            for obj in objects:
                seeder.cache[obj.cid] = CacheEntry(obj.cid, completed_at=0.0)
            if video is not None and len(seeders) % 2 == 0:
                seeder.cache[video.cid] = CacheEntry(video.cid, completed_at=0.0)
            seeder.boot()
            seeders.append(seeder)

        downloaders = []
        horizon = spec.duration_hours * 3600.0
        for i in range(spec.n_downloaders):
            peer = system.create_peer(country=country, uploads_enabled=True)
            peer.boot()
            downloaders.append(peer)
            obj = objects[i % len(objects)]
            system.sim.schedule_at(
                rng.uniform(60.0, 0.5 * horizon),
                lambda p=peer, o=obj: p.online and p.start_download(o),
            )

        if spec.fault_scenario is not None:
            specs = build_scenario(
                spec.fault_scenario,
                at=min(spec.fault_at, 0.6 * horizon),
                duration=spec.fault_duration,
            )
            FaultInjector(system, specs, seed=spec.seed ^ 0xFA17).arm()

        for i in range(spec.churn_events):
            victim = downloaders[i % len(downloaders)]
            down_at = rng.uniform(0.2, 0.7) * horizon
            system.sim.schedule_at(
                down_at, lambda p=victim: p.online and p.go_offline())
            system.sim.schedule_at(
                down_at + rng.uniform(120.0, 1800.0),
                lambda p=victim: not p.online and p.boot())

        def pause_resume(peer) -> None:
            for session in list(peer.sessions.values()):
                if session.state == "active":
                    session.pause()
                elif session.state == "paused":
                    session.resume()

        for i in range(spec.pause_resume_events):
            victim = downloaders[(i * 3 + 1) % len(downloaders)]
            system.sim.schedule_at(
                rng.uniform(0.2, 0.8) * horizon,
                lambda p=victim: p.online and pause_resume(p))

        # VoD streams go last, so the vod_streams == 0 case consumes no
        # extra draws from the run RNG anywhere above.
        if spec.vod_streams > 0:
            from repro.core.streaming import start_streaming

            if spec.vod_policy is not None:
                from repro.vod.policy import make_policy

                policy = make_policy(
                    spec.vod_policy, frozenset({video.cid}),
                    counters=system.vod,
                )
                policy.install(system)
            bitrate = 48 * 1024  # bytes/s: the 24 MB video plays in ~8 min
            for i in range(spec.vod_streams):
                viewer = downloaders[i % len(downloaders)]
                system.sim.schedule_at(
                    rng.uniform(60.0, 0.5 * horizon),
                    lambda p=viewer, o=video: (
                        p.online
                        and o.cid not in p.sessions
                        and start_streaming(p, o, bitrate=bitrate)
                    ),
                )

        # Adversary conversion goes last of all: it draws only from its own
        # string-seeded RNG, so with adversary_fraction == 0 every stream
        # above is untouched and the run is bit-identical to an honest one.
        if spec.adversary_fraction > 0:
            from repro.adversary.profiles import (
                AdversaryConfig, assign_adversaries,
            )

            mix = (1.0,) * len(_PROFILES)
            if spec.adversary_profile is not None:
                mix = tuple(
                    1.0 if name == spec.adversary_profile else 0.0
                    for name in _PROFILES
                )
            assign_adversaries(
                seeders + downloaders,
                AdversaryConfig(fraction=spec.adversary_fraction,
                                profile_mix=mix),
                spec.seed,
                truth=system.adversary_truth,
            )

        system.run(until=horizon)
        system.finalize_open_downloads()
        system.audit(final=True)

        # The sharded mini-scenario goes truly last — a second, tiny
        # region-sharded ScenarioConfig run under strict invariants, built
        # from its own seeds.  With shards == 0 and device_mix == "off"
        # nothing here exists and the run is bit-identical to a
        # pre-sharding fuzzer.  A device mix forces the run (unsharded
        # when shards == 0) so the tier columns, class scheduling, and the
        # device-budget checker get fuzz coverage.  Shard-isolation
        # breaches surface as ValueError from the reconcile pass (a crash,
        # not a recorded failure: the sweep must stop on those).
        if spec.shards > 0 or spec.device_mix != "off":
            _run_sharded_mini_scenario(spec)
    except InvariantViolationError as exc:
        return FuzzResult(spec=spec, failure=exc)

    completed = sum(
        1 for r in system.logstore.downloads if r.outcome == "completed"
    )
    return FuzzResult(
        spec=spec, failure=None, completed_downloads=completed,
        warnings=system.auditor.warning_count(),
    )


def _run_sharded_mini_scenario(spec: FuzzSpec) -> None:
    """Run a tiny region-sharded scenario under strict invariants.

    Every shard audits itself (strict mode raises inside the shard), and
    the merge's reconcile pass checks cross-shard GUID isolation.  Scale
    is deliberately tiny — the point is coverage of the columnar store +
    lazy materialization + shard merge under audit, not throughput.
    """
    from repro.runner import run_scenario_artifact
    from repro.workload.demand import DemandConfig
    from repro.workload.devices import PRESET_MIXES
    from repro.workload.population import PopulationConfig
    from repro.workload.scenario import ScenarioConfig
    from repro.workload.sharding import ShardingConfig

    device = (PRESET_MIXES[spec.device_mix]()
              if spec.device_mix != "off" else None)
    duration_days = min(spec.duration_hours, 6.0) / 24.0
    config = ScenarioConfig(
        seed=spec.seed,
        duration_days=duration_days,
        system=SystemConfig(
            invariants=InvariantConfig(mode="strict",
                                       every_events=spec.every_events),
            flow_batching=spec.flow_batching,
            kernel=spec.kernel,
            defense=DefenseConfig(enabled=spec.defense),
        ),
        population=PopulationConfig(
            n_peers=10 * (spec.n_seeders + spec.n_downloaders),
            device=device),
        demand=DemandConfig(
            total_downloads=5 * spec.n_downloaders,
            duration_days=duration_days),
        sharding=(ShardingConfig(shards=spec.shards)
                  if spec.shards > 0 else None),
        warm_copies_per_peer=1.0,
    )
    run_scenario_artifact(config)


def run_seed(seed: int) -> FuzzResult:
    """Generate and run one seed — the process-pool work unit.

    Deterministic from the integer alone (spec generation and the run
    itself are both seeded from it), so a pool worker returns the same
    result the parent process would have computed.
    """
    return run_spec(generate(seed))


def run_seeds(seeds: list[int], *, jobs: int = 1) -> list[FuzzResult]:
    """Run many seeds, optionally across a process pool, in seed order.

    The parallel sweep only *finds* failures; shrinking a failure stays
    serial (see :func:`shrink`) because each shrink step depends on the
    previous verdict.  Results come back in input order, so a CI sweep
    reports the same first-failing seed at every ``--jobs`` width.
    """
    from repro.runner import parallel_map

    return parallel_map(run_seed, list(seeds), jobs=jobs)


# ---------------------------------------------------------------- shrinking

def _candidates(spec: FuzzSpec) -> list[FuzzSpec]:
    """Simplified variants of ``spec``, most aggressive first."""
    out: list[FuzzSpec] = []
    if spec.fault_scenario is not None:
        out.append(replace(spec, fault_scenario=None))
    if spec.adversary_fraction:
        out.append(replace(spec, adversary_fraction=0.0,
                           adversary_profile=None))
    if spec.defense:
        out.append(replace(spec, defense=False))
    if spec.device_mix != "off":
        out.append(replace(spec, device_mix="off"))
    if spec.shards:
        out.append(replace(spec, shards=0))
    if spec.vod_streams:
        out.append(replace(spec, vod_streams=0, vod_policy=None))
    if spec.vod_policy is not None:
        out.append(replace(spec, vod_policy=None))
    if spec.churn_events:
        out.append(replace(spec, churn_events=0))
    if spec.pause_resume_events:
        out.append(replace(spec, pause_resume_events=0))
    if spec.channel_loss or spec.channel_latency:
        out.append(replace(spec, channel_loss=0.0, channel_latency=0.0))
    if not spec.flow_batching:
        out.append(replace(spec, flow_batching=True))
    if spec.kernel != "auto":
        out.append(replace(spec, kernel="auto"))
    if spec.edge_egress_mbps is not None:
        out.append(replace(spec, edge_egress_mbps=None))
    if spec.n_objects > 1:
        out.append(replace(spec, n_objects=1))
    if spec.n_downloaders > 2:
        out.append(replace(spec, n_downloaders=max(2, spec.n_downloaders // 2)))
    if spec.n_seeders > 2:
        out.append(replace(spec, n_seeders=max(2, spec.n_seeders // 2)))
    if spec.object_mb > 16:
        out.append(replace(spec, object_mb=max(16, spec.object_mb // 2)))
    if spec.duration_hours > 2.0:
        out.append(replace(spec, duration_hours=max(2.0, spec.duration_hours / 2)))
    return out


def shrink(
    spec: FuzzSpec,
    *,
    still_fails: Optional[Callable[[FuzzSpec], bool]] = None,
    max_attempts: int = 40,
) -> FuzzSpec:
    """Greedily simplify a failing spec while it keeps failing.

    Each round tries the candidate simplifications in order and restarts
    from the first one that still reproduces a strict-mode violation; the
    loop ends when no candidate fails or the attempt budget runs out.
    ``still_fails`` is injectable for tests (defaults to re-running the
    spec via :func:`run_spec`).
    """
    if still_fails is None:
        still_fails = lambda s: not run_spec(s).ok  # noqa: E731
    attempts = 0
    current = spec
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _candidates(current):
            attempts += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
            if attempts >= max_attempts:
                break
    return current


def reproducer_script(spec: FuzzSpec) -> str:
    """A standalone script that replays ``spec`` with strict invariants.

    Shown (and writable to disk) when a fuzz test fails, so the minimal
    scenario can be rerun under a debugger without the fuzz machinery.
    """
    fields = ",\n    ".join(
        f"{name}={value!r}" for name, value in asdict(spec).items()
    )
    return f'''\
"""Minimal reproducer for a strict-invariant violation found by the fuzzer.

Run with:  PYTHONPATH=src python reproduce_fuzz_{spec.seed}.py
"""
from repro.fuzz import FuzzSpec, run_spec

spec = FuzzSpec(
    {fields},
)
result = run_spec(spec)
if result.failure is not None:
    raise SystemExit(f"still failing: {{result.failure}}")
print("no violation — the underlying bug is fixed")
'''
