"""repro.invariants — a sanitizer-style runtime invariant-audit layer.

The paper's headline numbers (70–80% offload at no reliability cost, §5)
are only as credible as the simulator's conservation laws.  This package
keeps those laws checked *while the system runs*, ASan/TSan-style, instead
of only in a handful of end-to-end tests:

* **byte conservation** — per-session source counters equal the verified
  piece bytes, exactly; end-of-run, CN download records reconcile against
  the trusted edge-server logs and the accounting ledger re-aggregates.
* **flow feasibility** — the water-filler never over-commits a link, in
  both the batched and reference settlement modes.
* **directory / soft-state consistency** — every DN entry maps to a known
  replica; drift the protocol tolerates (lost unregisters, TTL windows) is
  recorded as warnings, never raised.
* **NAT/reachability symmetry**, **event-heap time monotonicity**, and
  **control-channel breaker-state sanity**.

Modes (``SystemConfig.invariants``, env ``REPRO_INVARIANTS``): ``observe``
(default — record structured :class:`InvariantViolation` reports, surfaced
via ``SystemStats``, drill reports, and ``repro audit``), ``strict`` (tests
and CI — raise :class:`InvariantViolationError` on the first error), and
``off``.
"""

from repro.invariants.auditor import InvariantAuditor, InvariantStats
from repro.invariants.checkers import CHECKERS, Checker, checker_names, register_checker
from repro.invariants.violation import (
    ERROR, WARNING, InvariantViolation, InvariantViolationError,
)

__all__ = [
    "CHECKERS", "Checker", "ERROR", "WARNING",
    "InvariantAuditor", "InvariantStats", "InvariantViolation",
    "InvariantViolationError", "checker_names", "register_checker",
]
