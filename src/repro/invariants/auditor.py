"""The invariant auditor: runs checkers on a cadence and at end-of-run.

The auditor is the sanitizer runtime: :class:`~repro.core.system.NetSessionSystem`
constructs one at the end of ``__init__`` and (unless the mode resolves to
``off``) installs its sampled audit as the simulator's audit hook, which
fires every ``every_events`` processed events — after the post-event flow
flush, so rates are settled — plus on demand via :meth:`audit`.

Modes:

* ``observe`` — violations are recorded (deduplicated, capped) and surfaced
  through :class:`InvariantStats`/``SystemStats``; nothing raises.
* ``strict`` — the first *error*-severity violation raises
  :class:`~repro.invariants.violation.InvariantViolationError`, which
  propagates out of ``Simulator.run``.  Warnings are still only recorded.
* ``off`` — no hook is installed and :meth:`audit` is a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.config import InvariantConfig
from repro.invariants.checkers import CHECKERS, Checker
from repro.invariants.violation import (
    ERROR, InvariantViolation, InvariantViolationError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import NetSessionSystem

__all__ = ["InvariantAuditor", "InvariantStats"]


@dataclass(frozen=True)
class InvariantStats:
    """Point-in-time audit counters, flattened into ``SystemStats``."""

    #: Effective mode after ``auto`` resolution.
    mode: str
    #: Sampled audits run by the simulator hook.
    audits: int
    #: Full (end-of-run) audits run.
    final_audits: int
    #: Individual checker invocations.
    checks: int
    #: Distinct violations currently recorded / total occurrences seen.
    violations: int
    violation_occurrences: int
    errors: int
    warnings: int
    #: Distinct violations dropped past the ``max_violations`` cap.
    dropped: int

    def as_dict(self) -> dict[str, object]:
        return {
            "mode": self.mode,
            "audits": self.audits,
            "final_audits": self.final_audits,
            "checks": self.checks,
            "violations": self.violations,
            "violation_occurrences": self.violation_occurrences,
            "errors": self.errors,
            "warnings": self.warnings,
            "dropped": self.dropped,
        }


class InvariantAuditor:
    """Runs the registered checkers against one system."""

    def __init__(self, system: "NetSessionSystem", config: InvariantConfig):
        self.system = system
        self.config = config
        self.mode = config.resolve_mode()
        self.violations: dict[tuple[str, str, str], InvariantViolation] = {}
        self.dropped = 0
        self.audits = 0
        self.final_audits = 0
        self.checks = 0
        if config.checkers:
            unknown = [n for n in config.checkers if n not in CHECKERS]
            if unknown:
                raise ValueError(
                    f"unknown invariant checkers: {', '.join(unknown)} "
                    f"(available: {', '.join(CHECKERS)})"
                )
            selected = [CHECKERS[n] for n in config.checkers]
        else:
            selected = list(CHECKERS.values())
        self._sampled = [c for c in selected if not c.final_only]
        self._all = selected

    # ------------------------------------------------------------------ wiring

    def install(self) -> None:
        """Attach the sampled audit to the system's simulator (unless off)."""
        if self.mode != "off":
            self.system.sim.set_audit_hook(
                self._sampled_audit, every_events=self.config.every_events
            )

    def _sampled_audit(self) -> None:
        self.audits += 1
        self._run(self._sampled)

    def audit(self, *, final: bool = False) -> list[InvariantViolation]:
        """Run the checkers now; with ``final=True`` include the
        reconciliation checkers that only make sense at end-of-run.

        Returns the full (deduplicated) violation list.  In strict mode an
        error-severity violation raises instead.
        """
        if self.mode != "off":
            if final:
                self.final_audits += 1
                self._run(self._all)
            else:
                self.audits += 1
                self._run(self._sampled)
        return self.report()

    def _run(self, checkers: list[Checker]) -> None:
        for checker in checkers:
            self.checks += 1
            name = checker.name

            def report(severity: str, subject: str, detail: str,
                       _name: str = name) -> None:
                self._record(_name, severity, subject, detail)

            checker.func(self.system, report)

    # --------------------------------------------------------------- recording

    def _record(self, invariant: str, severity: str, subject: str,
                detail: str) -> None:
        now = self.system.sim.now
        key = (invariant, severity, subject)
        violation = self.violations.get(key)
        if violation is not None:
            violation.count += 1
            violation.last_seen = now
        elif len(self.violations) < self.config.max_violations:
            violation = InvariantViolation(
                invariant=invariant, severity=severity, subject=subject,
                detail=detail, first_seen=now, last_seen=now,
            )
            self.violations[key] = violation
        else:
            self.dropped += 1
            violation = InvariantViolation(
                invariant=invariant, severity=severity, subject=subject,
                detail=detail, first_seen=now, last_seen=now,
            )
        if self.mode == "strict" and severity == ERROR:
            raise InvariantViolationError(violation)

    # -------------------------------------------------------------- inspection

    def report(self) -> list[InvariantViolation]:
        """Recorded violations, errors first, then by first occurrence."""
        return sorted(
            self.violations.values(),
            key=lambda v: (v.severity != ERROR, v.first_seen, v.subject),
        )

    def error_count(self) -> int:
        """Distinct error-severity violations recorded."""
        return sum(1 for v in self.violations.values() if v.severity == ERROR)

    def warning_count(self) -> int:
        """Distinct warning-severity violations recorded."""
        return sum(1 for v in self.violations.values() if v.severity != ERROR)

    def stats(self) -> InvariantStats:
        """Snapshot the audit counters for ``SystemStats``."""
        return InvariantStats(
            mode=self.mode,
            audits=self.audits,
            final_audits=self.final_audits,
            checks=self.checks,
            violations=len(self.violations),
            violation_occurrences=sum(
                v.count for v in self.violations.values()
            ),
            errors=self.error_count(),
            warnings=self.warning_count(),
            dropped=self.dropped,
        )
