"""The built-in invariant checkers and their registry.

Each checker is a function ``(system, report) -> None`` where ``report`` is
a callback ``report(severity, subject, detail)`` bound to the checker's
name by the auditor.  Checkers must be **pure observers**: they draw no
randomness, schedule no events, and mutate nothing — a fixed-seed run is
byte-identical with auditing on or off.

Severity discipline: ``error`` means a conservation or bookkeeping law was
broken (a bug, never legitimate); ``warning`` marks soft-state drift the
protocol explicitly tolerates (a lost unregister leaving a directory entry
until its TTL, a stale CN connected-table entry after a degraded peer went
offline).  Strict mode raises only on errors.

Sampled checkers run at the simulator's audit cadence *and* at end-of-run;
``final_only`` checkers (log/ledger reconciliation over full histories) run
only at end-of-run, where an O(records) pass is affordable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.control.channel import ALL_STATES, DEGRADED, HEALTHY, PROBING
from repro.net.nat import DEFAULT_NAT_MIX, NATType, can_connect

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import NetSessionSystem

__all__ = ["Checker", "CHECKERS", "register_checker", "checker_names"]

#: Relative/absolute tolerance for float rate comparisons (matches the
#: allocation engine's own settlement precision).
_REL = 1e-6
_ABS = 1e-3

Report = Callable[[str, str, str], None]


@dataclass(frozen=True)
class Checker:
    """A registered invariant checker."""

    name: str
    description: str
    func: Callable[["NetSessionSystem", Report], None]
    #: True for reconciliation passes too expensive for the sampling cadence.
    final_only: bool = False


CHECKERS: dict[str, Checker] = {}


def register_checker(name: str, description: str, *, final_only: bool = False):
    """Class-decorator-style registration for checker functions."""

    def wrap(func: Callable[["NetSessionSystem", Report], None]):
        if name in CHECKERS:
            raise ValueError(f"duplicate checker {name!r}")
        CHECKERS[name] = Checker(name, description, func, final_only=final_only)
        return func

    return wrap


def checker_names() -> list[str]:
    """All registered checker names, in registration order."""
    return list(CHECKERS)


# --------------------------------------------------------------------------
# flow feasibility: the water-filler never over-commits a link
# --------------------------------------------------------------------------

@register_checker(
    "flow-feasibility",
    "sum of allocated rates <= capacity on every resource; bookkeeping exact",
)
def check_flow_feasibility(system: "NetSessionSystem", report: Report) -> None:
    flows = system.flows
    for res in flows.resources_in_use():
        total = 0.0
        for flow in res.flows:
            if not flow.active:
                report("error", f"resource:{res.name}",
                       f"inactive flow #{flow.flow_id} still attached")
                continue
            total += flow.rate
        cap = res.capacity
        if cap is not None and total > cap * (1.0 + _REL) + _ABS:
            report("error", f"resource:{res.name}",
                   f"allocated {total:.1f} B/s exceeds capacity {cap:.1f} B/s")
        if abs(res.allocated - total) > max(_REL * max(abs(total), 1.0), _ABS):
            report("error", f"resource:{res.name}",
                   f"incremental allocated {res.allocated:.1f} B/s != "
                   f"member-rate sum {total:.1f} B/s")
    for flow in flows.active_flows:
        if flow.rate < -_ABS:
            report("error", f"flow:{flow.flow_id}",
                   f"negative rate {flow.rate:.3f} B/s")
        if flow.cap is not None and flow.rate > flow.cap * (1.0 + _REL) + _ABS:
            report("error", f"flow:{flow.flow_id}",
                   f"rate {flow.rate:.1f} B/s exceeds cap {flow.cap:.1f} B/s")
        if flow.transferred > flow.size * (1.0 + _REL) + _ABS:
            report("error", f"flow:{flow.flow_id}",
                   f"transferred {flow.transferred:.0f}B exceeds size "
                   f"{flow.size:.0f}B")
        for res in flow.resources:
            if flow not in res.flows:
                report("error", f"flow:{flow.flow_id}",
                       f"active flow missing from resource {res.name!r} "
                       f"member set")


# --------------------------------------------------------------------------
# byte conservation: every credited byte is a delivered, verified piece
# --------------------------------------------------------------------------

@register_checker(
    "byte-conservation",
    "per-session source counters == verified piece bytes, exactly",
)
def check_byte_conservation(system: "NetSessionSystem", report: Report) -> None:
    for peer in system.iter_peer_nodes():
        for session in peer.sessions.values():
            subject = f"session:{peer.guid[:8]}/{session.obj.cid}"
            credited = session.edge_bytes + session.peer_bytes
            held = session.received_bytes()
            if credited != held:
                report("error", subject,
                       f"edge {session.edge_bytes}B + peer {session.peer_bytes}B"
                       f" = {credited}B but verified pieces hold {held}B")
            per_uploader = sum(session.per_uploader_bytes.values())
            if per_uploader != session.peer_bytes:
                report("error", subject,
                       f"per-uploader sum {per_uploader}B != peer_bytes "
                       f"{session.peer_bytes}B")
            if session.corrupted_bytes < 0 or session.edge_bytes < 0 \
                    or session.peer_bytes < 0:
                report("error", subject, "negative byte counter")
            if session.state == "completed" and credited != session.obj.size:
                report("error", subject,
                       f"completed with {credited}B credited of "
                       f"{session.obj.size}B object")


# --------------------------------------------------------------------------
# directory / soft-state consistency (DN tables, CN connected tables)
# --------------------------------------------------------------------------

@register_checker(
    "directory-consistency",
    "every directory entry maps to a known replica; soft-state drift bounded",
)
def check_directory_consistency(system: "NetSessionSystem", report: Report) -> None:
    now = system.sim.now
    valid_nat = {t.value for t in NATType}
    sweep_slack = 3600.0 + 1.0  # expiry sweep cadence in ControlPlane
    for dn in system.control.all_dns:
        if not dn.alive:
            continue
        ttl = dn.registration_ttl
        for cid, entries in dn.table.items():
            for guid, entry in entries.items():
                subject = f"dn:{dn.name}:{guid[:8]}/{cid}"
                peer = system.peer_by_guid.get(guid)
                if peer is None:
                    report("error", subject, "entry for unknown GUID")
                    continue
                if entry.nat_reported not in valid_nat:
                    report("error", subject,
                           f"invalid nat_reported {entry.nat_reported!r}")
                if entry.refreshed_at > now + _ABS:
                    report("error", subject,
                           f"refreshed_at {entry.refreshed_at:.0f}s is in "
                           f"the future (now {now:.0f}s)")
                if entry.registered_at > entry.refreshed_at + _ABS:
                    report("error", subject,
                           "registered_at is later than refreshed_at")
                age = now - entry.refreshed_at
                if age > ttl + sweep_slack:
                    report("error", subject,
                           f"entry {age:.0f}s stale outlived TTL "
                           f"{ttl:.0f}s plus a full expiry sweep")
                elif (peer.online and peer.uploads_enabled
                        and cid not in peer.cache and age > 60.0):
                    # The replica is gone but the unregister never landed
                    # (lost RPC, degraded channel) — legitimate soft-state
                    # drift; the TTL bounds it.
                    report("warning", subject,
                           "entry for evicted replica awaiting TTL expiry")
    for cn in system.control.all_cns:
        if not cn.alive:
            continue
        for guid, peer in cn.connected.items():
            subject = f"cn:{cn.name}:{guid[:8]}"
            if peer.guid != guid:
                report("error", subject,
                       f"connected-table key {guid[:8]} maps to peer "
                       f"{peer.guid[:8]}")
            elif not peer.online or peer.cn is not cn:
                # A degraded peer going offline, or a failover, can leave
                # the old CN's entry until its liveness check runs.
                report("warning", subject,
                       "connected entry for a peer no longer on this CN")


# --------------------------------------------------------------------------
# NAT / reachability symmetry
# --------------------------------------------------------------------------

@register_checker(
    "nat-symmetry",
    "traversal matrix symmetric, BLOCKED unreachable, profiles well-typed",
)
def check_nat_symmetry(system: "NetSessionSystem", report: Report) -> None:
    types = list(NATType)
    for a in types:
        for b in types:
            if can_connect(a, b) != can_connect(b, a):
                report("error", f"pair:{a.value}/{b.value}",
                       "can_connect is asymmetric for this pair")
        if can_connect(a, NATType.BLOCKED) or can_connect(NATType.BLOCKED, a):
            report("error", f"pair:{a.value}/blocked",
                   "BLOCKED peer reported reachable")
    if abs(sum(DEFAULT_NAT_MIX.values()) - 1.0) > 1e-9:
        report("error", "mix:default", "DEFAULT_NAT_MIX does not sum to 1")
    for peer in system.iter_peer_nodes():
        profile = peer.nat_profile
        if not isinstance(profile.true_type, NATType) \
                or not isinstance(profile.reported_type, NATType):
            report("error", f"peer:{peer.guid[:8]}",
                   f"NAT profile types malformed: {profile!r}")


# --------------------------------------------------------------------------
# event-heap / simulated-time sanity
# --------------------------------------------------------------------------

#: Heap entries examined per *sampled* audit.  The heap root region holds
#: the soonest events, which is where a past-scheduled entry would surface;
#: the full O(heap) sweep (plus the live-counter cross-check) runs in the
#: final-only ``sim-heap`` checker so a 50k-event heap doesn't blow the
#: observe-mode overhead budget.
_SAMPLED_HEAP_SCAN = 2048


@register_checker(
    "sim-time",
    "clock monotonic between audits; no near-term pending event in the past",
)
def check_sim_time(system: "NetSessionSystem", report: Report) -> None:
    sim = system.sim
    now = sim.now
    auditor = system.auditor
    last = getattr(auditor, "_last_audit_now", None)
    if last is not None and now < last - _ABS:
        report("error", "clock",
               f"simulated time went backwards: {last:.3f}s -> {now:.3f}s")
    auditor._last_audit_now = now
    if sim.pending_count() < 0:
        report("error", "heap:live-counter",
               f"pending counter is negative: {sim.pending_count()}")
    for time, _seq, event in sim._queue[:_SAMPLED_HEAP_SCAN]:
        if event.pending and time < now - _ABS:
            report("error", f"event:t={time:.3f}",
                   f"pending event scheduled at {time:.3f}s but now is "
                   f"{now:.3f}s")


@register_checker(
    "sim-heap",
    "full heap sweep: O(1) live counter exact, no pending event in the past",
    final_only=True,
)
def check_sim_heap(system: "NetSessionSystem", report: Report) -> None:
    sim = system.sim
    now = sim.now
    live = 0
    for time, _seq, event in sim._queue:
        if not event.pending:
            continue
        live += 1
        if time < now - _ABS:
            report("error", f"event:t={time:.3f}",
                   f"pending event scheduled at {time:.3f}s but now is "
                   f"{now:.3f}s")
    if live != sim.pending_count():
        report("error", "heap:live-counter",
               f"O(1) pending counter says {sim.pending_count()} but heap "
               f"scan finds {live} pending events")


# --------------------------------------------------------------------------
# control-channel breaker-state sanity
# --------------------------------------------------------------------------

@register_checker(
    "channel-state",
    "per-peer breaker state machine in a legal configuration",
)
def check_channel_state(system: "NetSessionSystem", report: Report) -> None:
    for peer in system.iter_peer_nodes():
        ch = peer.channel
        subject = f"channel:{peer.guid[:8]}"
        if ch.state not in ALL_STATES:
            report("error", subject, f"unknown state {ch.state!r}")
            continue
        if ch.state == PROBING:
            report("error", subject,
                   "PROBING observed at an event boundary (must be "
                   "transient within the probe callback)")
        if ch.consecutive_failures < 0:
            report("error", subject,
                   f"negative consecutive_failures {ch.consecutive_failures}")
        if not peer.online:
            if ch.state != HEALTHY or ch._pending:
                report("error", subject,
                       f"offline peer's channel not reset (state "
                       f"{ch.state!r}, {len(ch._pending)} pending)")
            continue
        if ch.state == DEGRADED:
            if ch.degraded_since is None:
                report("error", subject, "DEGRADED without degraded_since")
            if peer.cn is not None:
                report("error", subject,
                       "DEGRADED but peer still holds a CN reference")
            if ch._pending:
                report("error", subject,
                       f"DEGRADED with {len(ch._pending)} pending requests "
                       f"(breaker must shed them)")
            if ch._probe_event is None or not ch._probe_event.pending:
                report("error", subject,
                       "DEGRADED with no recovery probe scheduled")
        else:
            if ch.degraded_since is not None:
                report("error", subject,
                       f"{ch.state} state but degraded_since is set")
            if ch.consecutive_failures >= ch.cfg.breaker_threshold:
                report("error", subject,
                       f"{ch.consecutive_failures} consecutive failures "
                       f"should have tripped the breaker "
                       f"(threshold {ch.cfg.breaker_threshold})")


# --------------------------------------------------------------------------
# end-of-run reconciliation against logs and ledgers
# --------------------------------------------------------------------------

@register_checker(
    "edge-log-reconciliation",
    "CN download records never claim more edge bytes than the edge served",
    final_only=True,
)
def check_edge_log_reconciliation(system: "NetSessionSystem", report: Report) -> None:
    claimed: dict[tuple[str, str], int] = {}
    for rec in system.logstore.downloads:
        key = (rec.guid, rec.cid)
        claimed[key] = claimed.get(key, 0) + rec.edge_bytes
        if rec.edge_bytes < 0 or rec.peer_bytes < 0:
            report("error", f"record:{rec.guid[:8]}/{rec.cid}",
                   "negative byte count in download record")
        if rec.ended_at < rec.started_at:
            report("error", f"record:{rec.guid[:8]}/{rec.cid}",
                   f"record ends at {rec.ended_at:.0f}s before it starts "
                   f"at {rec.started_at:.0f}s")
    for (guid, cid), nbytes in claimed.items():
        trusted = system.edge.trusted_bytes_served(guid, cid)
        if nbytes > trusted:
            # Aborts without partial credit and duplicate chunk bytes only
            # ever push the trusted log *above* the credited total, so the
            # reverse gap is a conservation breach.
            report("error", f"record:{guid[:8]}/{cid}",
                   f"records claim {nbytes}B from the edge but trusted "
                   f"edge logs show only {trusted}B served")


@register_checker(
    "accounting-ledger",
    "billing summaries equal a from-scratch aggregation of accepted reports",
    final_only=True,
)
def check_accounting_ledger(system: "NetSessionSystem", report: Report) -> None:
    for line in system.accounting.ledger_drift():
        report("error", f"ledger:{line.split(':', 1)[0]}", line)


# --------------------------------------------------------------------------
# reputation / quarantine defense sanity (no-ops with the defense off)
# --------------------------------------------------------------------------

@register_checker(
    "reputation-bounds",
    "scores clamped, states legal, no quarantined peer ever selected",
)
def check_reputation_bounds(system: "NetSessionSystem", report: Report) -> None:
    from repro.adversary.reputation import GOOD, PROBATION, QUARANTINED

    engine = system.reputation
    if engine is None:
        return
    cfg = engine.config
    legal = {GOOD, PROBATION, QUARANTINED}
    for guid, entry in engine.entries():
        subject = f"reputation:{guid[:8]}"
        # Decay only shrinks magnitude, so the clamp bound holds lazily too.
        if not cfg.score_min - _ABS <= entry.score <= cfg.score_max + _ABS:
            report("error", subject,
                   f"score {entry.score:.3f} outside "
                   f"[{cfg.score_min}, {cfg.score_max}]")
        if entry.state not in legal:
            report("error", subject, f"illegal state {entry.state!r}")
        if entry.state == QUARANTINED and entry.quarantines < 1:
            report("error", subject,
                   "QUARANTINED with a zero quarantine count")
        if entry.quarantined_at > system.sim.now + _ABS:
            report("error", subject,
                   f"quarantined_at {entry.quarantined_at:.0f}s is in the "
                   f"future")
    if engine.quarantine_leaks:
        report("error", "reputation:selection",
               f"{engine.quarantine_leaks} quarantined peers slipped into "
               f"query answers (the admission filter must make this zero)")


@register_checker(
    "quarantine-exclusion",
    "no directory entry for a peer inside its quarantine window",
)
def check_quarantine_exclusion(system: "NetSessionSystem", report: Report) -> None:
    engine = system.reputation
    if engine is None:
        return
    now = system.sim.now
    quarantined = {
        guid for guid, _ in engine.entries() if engine.is_quarantined(guid, now)
    }
    if not quarantined:
        return
    for dn in system.control.all_dns:
        if not dn.alive:
            continue
        for cid, entries in dn.table.items():
            for guid in entries:
                if guid in quarantined:
                    # Eviction is synchronous at quarantine time and the CN
                    # refuses re-registration for the whole window, so an
                    # entry here is a defense bypass, not tolerated drift.
                    report("error", f"dn:{dn.name}:{guid[:8]}/{cid}",
                           "directory entry for a quarantined peer")


@register_checker(
    "device-budget",
    "device-tier budgets hold: legal classes, uplink caps, cache limits",
)
def check_device_budgets(system: "NetSessionSystem", report: Report) -> None:
    mix = system.device_mix
    if mix is None:
        return
    legal = {cls.name for cls in mix.classes}
    client = system.config.client
    for peer in system.all_peers:
        device = peer.device
        name = peer.device_class
        subject = f"device:{peer.guid[:8]}"
        if device is not None and name not in legal:
            report("error", subject,
                   f"device class {name!r} not in the declared mix {sorted(legal)}")
            continue
        if device is None:
            continue
        # Recompute the per-flow cap from first principles: the client
        # throttle fraction, the access link, the adversary slow factor,
        # and the tier's uplink budget.  Every live upload flow must obey
        # it — a cap implementation that forgets the device term fails here
        # within one audit interval.
        fraction = (client.backoff_rate_fraction if peer.link_busy
                    else client.upload_rate_fraction)
        cap = fraction * peer.link.up_bps * peer.adversary_slow_factor
        if device.uplink_cap_bps is not None:
            cap = min(cap, device.uplink_cap_bps)
        cap = max(1.0, cap)
        for flow in peer.upload_flows:
            if flow.cap is not None and flow.cap > cap * (1.0 + _REL) + _ABS:
                report("error", subject,
                       f"upload flow capped at {flow.cap:.0f} B/s exceeds the "
                       f"{name} device budget {cap:.0f} B/s")
        if device.cache_objects is not None \
                and len(peer.cache) > device.cache_objects:
            report("error", subject,
                   f"{len(peer.cache)} cached objects exceed the {name} "
                   f"budget of {device.cache_objects}")
