"""Structured invariant-violation reports and the strict-mode exception.

A violation is identified by ``(invariant, severity, subject)``: repeated
occurrences of the same defect (the same session, resource, or directory
entry failing the same check on consecutive audits) collapse into one
record with an occurrence count and first/last timestamps, so a long
observe-mode run produces a readable report instead of a flood.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ERROR", "WARNING", "InvariantViolation", "InvariantViolationError"]

#: A genuine conservation/consistency breach — raises in strict mode.
ERROR = "error"
#: Legitimate soft-state drift worth surfacing (lost unregister under a
#: lossy channel, stale CN entry after a degraded peer went offline).
#: Recorded in every mode, never raised.
WARNING = "warning"


@dataclass
class InvariantViolation:
    """One distinct defect observed by the audit layer."""

    #: Name of the checker that reported it (e.g. ``flow-feasibility``).
    invariant: str
    #: ``error`` or ``warning``.
    severity: str
    #: What broke — a stable identifier used for deduplication
    #: (e.g. ``resource:uplink:peer42`` or ``session:3f2a.../cid``).
    subject: str
    #: Human-readable description from the first occurrence.
    detail: str
    #: Simulated time of the first and latest occurrence.
    first_seen: float
    last_seen: float
    #: Occurrences observed (including the first).
    count: int = 1

    @property
    def key(self) -> tuple[str, str, str]:
        """Deduplication key."""
        return (self.invariant, self.severity, self.subject)

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly view (drill reports, ``repro audit --json``)."""
        return {
            "invariant": self.invariant,
            "severity": self.severity,
            "subject": self.subject,
            "detail": self.detail,
            "first_seen": round(self.first_seen, 3),
            "last_seen": round(self.last_seen, 3),
            "count": self.count,
        }

    def __str__(self) -> str:
        times = f"t={self.first_seen:.0f}s"
        if self.count > 1:
            times += f"..{self.last_seen:.0f}s x{self.count}"
        return f"[{self.severity}] {self.invariant} ({self.subject}, {times}): {self.detail}"


class InvariantViolationError(RuntimeError):
    """Raised in strict mode on the first error-severity violation."""

    def __init__(self, violation: InvariantViolation):
        super().__init__(str(violation))
        self.violation = violation

    def __reduce__(self):
        # The default exception reduce rebuilds from ``self.args`` (the
        # rendered string), which would leave ``violation`` holding a str
        # after a round trip through a process pool.  Rebuild from the
        # structured violation instead.
        return (InvariantViolationError, (self.violation,))
