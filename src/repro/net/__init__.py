"""Network substrate: simulation engine, fluid flows, links, topology, NAT, geo.

This subpackage replaces the real Internet in the reproduction.  See
DESIGN.md §2 for the substitution rationale.
"""

from repro.net.sim import Simulator, Event, SimulationError
from repro.net.flows import FlowNetwork, Flow, Resource
from repro.net.links import AccessLink, BroadbandModel, EdgeCapacityModel, mbps
from repro.net.nat import NATType, NATProfile, NATModel, can_connect
from repro.net.geo import (
    World, Country, City, Region, GeoDatabase, GeoRecord,
    build_core_world, haversine_km,
)
from repro.net.topology import ASTopology, AutonomousSystem, build_topology
from repro.net.addressing import IPAllocator
from repro.net.lan import LanSite

__all__ = [
    "Simulator", "Event", "SimulationError",
    "FlowNetwork", "Flow", "Resource",
    "AccessLink", "BroadbandModel", "EdgeCapacityModel", "mbps",
    "NATType", "NATProfile", "NATModel", "can_connect",
    "World", "Country", "City", "Region", "GeoDatabase", "GeoRecord",
    "build_core_world", "haversine_km",
    "ASTopology", "AutonomousSystem", "build_topology",
    "IPAllocator",
    "LanSite",
]
