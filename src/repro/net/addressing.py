"""IP address assignment within ASes, with DHCP-style churn.

The paper's Table 1 counts 133.7 million distinct IPs against 25.9 million
GUIDs — peers change addresses constantly (DHCP leases, reconnects,
mobility).  The :class:`IPAllocator` gives each AS a synthetic prefix and
hands out addresses inside it; the population layer asks for a fresh address
whenever a peer's lease churns or the peer moves to a different AS.

Every assignment is registered in the :class:`~repro.net.geo.GeoDatabase`,
which is exactly how the authors joined their logs with EdgeScape data.
"""

from __future__ import annotations

import random

from repro.net.geo import City, Country, GeoDatabase, GeoRecord
from repro.net.topology import AutonomousSystem

__all__ = ["IPAllocator"]


class IPAllocator:
    """Allocates synthetic IPv4-style addresses per AS.

    Address format: ``10.<asn-hi>.<asn-lo>.<host>`` extended with a fifth
    component when an AS exhausts a /24 — the addresses only need to be
    unique strings with an AS-identifiable prefix, not routable.
    """

    def __init__(self, geodb: GeoDatabase, rng: random.Random):
        self._geodb = geodb
        self._rng = rng
        self._counters: dict[int, int] = {}

    def assign(
        self,
        asys: AutonomousSystem,
        country: Country,
        city: City,
    ) -> str:
        """Allocate a fresh address in ``asys`` located at ``city``.

        The address is registered in the geo database with full EdgeScape
        fields.  A small jitter (~city scale) is added to the coordinates so
        that distinct households in one city are distinct "locations" at
        roughly suburb granularity — the paper notes 218 distinct locations
        within Pennsylvania alone.
        """
        index = self._counters.get(asys.asn, 0)
        self._counters[asys.asn] = index + 1
        hi, lo = divmod(asys.asn, 256)
        upper, host = divmod(index, 256)
        ip = f"10.{hi}.{lo}.{host}" if upper == 0 else f"10.{hi}.{lo}.{host}.{upper}"

        # Jitter coordinates to ~0.02 degrees (about 2 km), quantised so
        # that nearby households share a "location" the way EdgeScape
        # reports city/suburb-granularity coordinates.  The jitter radius
        # keeps two sessions of a stationary machine within the 10 km the
        # §6.2 mobility analysis uses as its threshold.
        lat = round(city.lat + self._rng.uniform(-0.02, 0.02), 2)
        lon = round(city.lon + self._rng.uniform(-0.02, 0.02), 2)

        self._geodb.register(ip, GeoRecord(
            country_code=country.code,
            region=country.region,
            city=city.name,
            lat=lat,
            lon=lon,
            timezone=country.timezone,
            network=asys.name,
            asn=asys.asn,
        ))
        return ip

    def assigned_count(self, asn: int) -> int:
        """How many addresses have been handed out in an AS so far."""
        return self._counters.get(asn, 0)
