"""Flow-level fluid bandwidth model with max-min fair sharing.

Downloads in this reproduction are not simulated packet-by-packet; what the
paper measures (download speed CDFs, peer efficiency, traffic volumes) is
driven entirely by how competing transfers share constrained links.  We model
each transfer as a *flow* that traverses a set of capacity-constrained
*resources* — the uploader's uplink, the downloader's downlink, an edge
server's egress capacity — and allocate rates with the classic progressive
water-filling algorithm, which yields the max-min fair allocation [Bertsekas
& Gallager].  Per-flow rate caps model NetSession's deliberate upload
throttling (paper §3.9).

Between allocation changes every flow progresses linearly, so the engine is
event-driven: rates are only recomputed when a flow starts, finishes, is
aborted, or has its cap changed — and only for the connected component of
flows that actually share resources with the change.

Batched settlement
------------------
Mutations arrive in same-timestamp bursts: the swarm layer opens several
connections inside one completion tick, a session teardown aborts every
connection it holds, and the fault injector degrades whole regions of links
in a single callback.  Recomputing the component's water-filling once per
mutation would be pure waste — no simulated time passes between the
mutations, so only the *final* state of the burst is ever observable.

The engine therefore runs dirty-set batched: every mutation marks the
affected flows dirty and returns immediately; a *settlement pass*
(:meth:`FlowNetwork.flush`) walks the dirty flows' connected components once
and runs one water-filling over their union.  Settlement is triggered

* automatically at the end of every simulator event (a post-event hook, so
  no other event can ever observe stale rates),
* immediately when a mutation happens outside the event loop (direct
  library use keeps its synchronous feel), and
* lazily by the few in-callback readers of live rates
  (:meth:`FlowNetwork.flush` is idempotent and O(1) when clean).

Because settlement happens at the same simulated timestamp as the mutations
it coalesces, the resulting rate trajectories are identical to the
per-mutation engine's — ``batching=False`` restores the per-mutation
behaviour and is kept as the reference for the equivalence test-suite and
the ``benchmarks/test_simcore.py`` baseline.

Water-filling kernels
---------------------
The progressive water-filling itself runs on one of two interchangeable
kernels, selected per network (``FlowNetwork(kernel=...)``, usually via
``SystemConfig.kernel``):

* ``python`` — :func:`_max_min_fair`, the dict-and-set reference
  implementation; and
* ``numpy`` (default) — :class:`_VectorWaterfill`, which rebuilds the
  settling component into flat arrays (per-flow caps, a CSR-style
  flow→resource incidence, per-resource remaining capacity and unfrozen
  counts) and runs each freezing round as vector ops: ``argmin`` over the
  per-resource equal shares, boolean-mask freezing, and an ordered
  scatter-subtract of the frozen rates.

The two kernels perform the *same* IEEE operations in the same order —
components are canonically ordered by flow id before either kernel sees
them — so their results are bit-identical, not merely close; the golden
experiment pipeline produces the same bytes under both.  Components
smaller than :data:`_VECTOR_MIN_FLOWS` always take the python path (array
setup would cost more than it saves), which keeps the numpy kernel a pure
large-component accelerator.
"""

from __future__ import annotations

import heapq
import math
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Iterator, Optional

from repro.net.sim import Simulator

__all__ = ["Resource", "Flow", "FlowNetwork", "FlowNetworkStats", "KERNELS"]

#: Rate assigned to a flow constrained by nothing at all (no resources, no
#: cap).  Finite so completion times stay finite; generous enough (10 GB/s)
#: that it never binds in realistic scenarios.
UNCONSTRAINED_RATE = 10e9

#: Completion-heap entries are compacted (stale entries dropped, heap
#: rebuilt) when more than half the heap is stale — but only past this size,
#: so small heaps never pay the rebuild.
_HEAP_COMPACT_MIN = 64

#: Components with fewer flows than this settle on the python kernel even
#: when the numpy kernel is selected: building the arrays costs more than
#: the handful of dict operations they replace.  Both kernels are
#: bit-identical, so the cutover is unobservable except in wall time.
_VECTOR_MIN_FLOWS = 24

#: Kernel names accepted by :class:`FlowNetwork` / ``SystemConfig.kernel``.
KERNELS = ("numpy", "python")


class Resource:
    """A capacity constraint shared by flows (a link direction, a server NIC).

    ``capacity`` is in bytes/second.  A resource with ``capacity=None`` is
    unconstrained and never becomes a bottleneck (useful for modelling core
    links we assume are overprovisioned, as the paper implicitly does).

    ``allocated`` is the sum of the current rates of the flows crossing the
    resource.  It is maintained incrementally by the :class:`FlowNetwork`
    (exactly recomputed at each settlement touching the resource), which
    makes :attr:`utilization` O(1) — monitoring and fault gauges poll it in
    loops.
    """

    __slots__ = ("name", "capacity", "flows", "allocated", "_slot", "_stamp")

    def __init__(self, name: str, capacity: Optional[float]):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"resource {name!r} capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.flows: set["Flow"] = set()
        self.allocated = 0.0
        # Dense local index interned by the vector kernel while it rebuilds
        # a component into arrays (valid only for the stamped settle call).
        self._slot = 0
        self._stamp = 0

    @property
    def utilization(self) -> float:
        """Fraction of capacity currently allocated (0.0 for unconstrained)."""
        if self.capacity is None:
            return 0.0
        return self.allocated / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "inf" if self.capacity is None else f"{self.capacity:.0f}B/s"
        return f"<Resource {self.name} cap={cap} flows={len(self.flows)}>"


class Flow:
    """A fluid transfer of ``size`` bytes across a set of resources.

    Flows are created through :meth:`FlowNetwork.start_flow`.  ``meta`` is an
    opaque payload for the caller (the swarm layer stores the connection it
    belongs to).
    """

    __slots__ = (
        "flow_id", "resources", "size", "transferred", "rate", "cap",
        "on_complete", "meta", "start_time", "_last_update", "_version",
        "_queued", "active", "end_time",
    )

    def __init__(
        self,
        flow_id: int,
        resources: tuple[Resource, ...],
        size: float,
        cap: Optional[float],
        on_complete: Optional[Callable[["Flow"], None]],
        meta: object,
        now: float,
    ):
        self.flow_id = flow_id
        self.resources = resources
        self.size = float(size)
        self.transferred = 0.0
        self.rate = 0.0
        self.cap = cap
        self.on_complete = on_complete
        self.meta = meta
        self.start_time = now
        self.end_time: Optional[float] = None
        self._last_update = now
        self._version = 0
        self._queued = False  # has a live completion-heap entry
        self.active = True

    @property
    def remaining(self) -> float:
        """Bytes still to transfer."""
        return max(0.0, self.size - self.transferred)

    @property
    def elapsed(self) -> Optional[float]:
        """Transfer duration, or None if still active."""
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    def average_rate(self, now: Optional[float] = None) -> float:
        """Mean throughput in bytes/s over the flow's lifetime so far."""
        end = self.end_time if self.end_time is not None else now
        if end is None or end <= self.start_time:
            return 0.0
        return self.transferred / (end - self.start_time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Flow #{self.flow_id} {self.transferred:.0f}/{self.size:.0f}B "
            f"@{self.rate:.0f}B/s {'active' if self.active else 'done'}>"
        )


@dataclass
class FlowNetworkStats:
    """Counters exposing the allocation engine's work (perf observability).

    All counters are cumulative since network creation.  ``snapshot()``
    returns an independent copy; ``as_dict()`` flattens counters plus the
    derived component-size statistics for reports and JSON export.
    """

    #: Mutations received (start/abort/set_cap/set_resource_capacity).
    mutations: int = 0
    #: Settlement passes that found dirty flows to resolve.
    flushes: int = 0
    #: Reallocation calls (one settle + water-filling over a dirty union).
    reallocations: int = 0
    #: Connected components walked across all settlements.
    components: int = 0
    #: Total flows covered by component walks (mean = / components).
    flows_reallocated: int = 0
    #: Largest single component seen.
    max_component: int = 0
    #: Water-filling invocations and total freezing rounds inside them.
    waterfill_calls: int = 0
    waterfill_rounds: int = 0
    #: Completion-heap churn: entries pushed, pushes avoided because the
    #: flow's rate (hence ETA) was unchanged, stale entries popped, and
    #: full compactions performed.
    heap_pushes: int = 0
    heap_skips: int = 0
    heap_stale_pops: int = 0
    heap_compactions: int = 0

    @property
    def mean_component_size(self) -> float:
        """Mean flows per walked component (0.0 before any settlement)."""
        if self.components == 0:
            return 0.0
        return self.flows_reallocated / self.components

    def snapshot(self) -> "FlowNetworkStats":
        """An independent copy of the current counters."""
        return replace(self)

    def as_dict(self) -> dict[str, float]:
        """Counters plus derived statistics, for reports and JSON."""
        return {
            "mutations": self.mutations,
            "flushes": self.flushes,
            "reallocations": self.reallocations,
            "components": self.components,
            "flows_reallocated": self.flows_reallocated,
            "mean_component_size": round(self.mean_component_size, 2),
            "max_component": self.max_component,
            "waterfill_calls": self.waterfill_calls,
            "waterfill_rounds": self.waterfill_rounds,
            "heap_pushes": self.heap_pushes,
            "heap_skips": self.heap_skips,
            "heap_stale_pops": self.heap_stale_pops,
            "heap_compactions": self.heap_compactions,
        }


class FlowNetwork:
    """Manages all active flows and keeps their rates max-min fair.

    The network owns a completion heap inside the simulator: whenever rates
    change, new completion times are computed and stale heap entries are
    invalidated lazily via per-flow version counters.

    ``batching`` selects the settlement policy: ``True`` (default) coalesces
    same-timestamp mutation bursts into one settlement pass per simulator
    event; ``False`` settles after every mutation (the reference engine the
    equivalence tests and benchmarks compare against).

    ``kernel`` selects the water-filling implementation: ``"numpy"``
    (default) settles large components on the vectorized
    :class:`_VectorWaterfill` backend, ``"python"`` always uses the
    dict-based reference :func:`_max_min_fair`.  The two are bit-identical
    (see the module docstring), so the knob only moves wall time.
    """

    def __init__(self, sim: Simulator, *, batching: bool = True,
                 kernel: str = "numpy"):
        if kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        self.sim = sim
        self.batching = batching
        self.kernel = kernel
        self._vector: Optional[_VectorWaterfill] = None
        self._next_id = 0
        self.active_flows: set[Flow] = set()
        # (completion_time, flow_id, version, flow) — lazy invalidation
        self._completions: list[tuple[float, int, int, Flow]] = []
        self._heap_live = 0  # entries whose (flow, version) is still current
        self._completion_event = None
        self.completed_count = 0
        self.aborted_count = 0
        self.stats = FlowNetworkStats()
        # Dirty flows awaiting settlement; a dict preserves mutation order
        # so components are walked in the order the burst touched them.
        self._dirty: dict[Flow, None] = {}
        self._need_schedule = False
        self._batch_depth = 0
        sim.add_post_event_hook(self._post_event_flush)

    # ------------------------------------------------------------------ API

    def start_flow(
        self,
        resources: Iterable[Resource],
        size: float,
        *,
        cap: Optional[float] = None,
        on_complete: Optional[Callable[[Flow], None]] = None,
        meta: object = None,
    ) -> Flow:
        """Begin a transfer of ``size`` bytes across ``resources``.

        ``cap`` optionally limits the flow's rate regardless of fair share
        (NetSession's upload throttle).  ``on_complete`` fires, inside the
        simulator, when the last byte is delivered.
        """
        if size <= 0:
            raise ValueError(f"flow size must be positive, got {size}")
        if cap is not None and cap <= 0:
            raise ValueError(f"flow cap must be positive, got {cap}")
        flow = Flow(
            flow_id=self._next_id,
            resources=tuple(resources),
            size=size,
            cap=cap,
            on_complete=on_complete,
            meta=meta,
            now=self.sim.now,
        )
        self._next_id += 1
        self.active_flows.add(flow)
        for res in flow.resources:
            res.flows.add(flow)
        self._dirty[flow] = None
        self._mutated()
        return flow

    def abort_flow(self, flow: Flow) -> None:
        """Stop a flow before completion; already-transferred bytes stand."""
        if not flow.active:
            return
        self._settle(flow)
        self._detach(flow)
        flow.end_time = self.sim.now
        self.aborted_count += 1
        for res in flow.resources:
            if res.capacity is None:
                continue
            for other in res.flows:
                self._dirty.setdefault(other)
        self._need_schedule = True
        self._mutated()

    def set_cap(self, flow: Flow, cap: Optional[float]) -> None:
        """Change a flow's rate cap (used to throttle or pause-ish a flow)."""
        if not flow.active:
            return
        if cap is not None and cap <= 0:
            raise ValueError(f"flow cap must be positive, got {cap}")
        if cap == flow.cap:
            return
        flow.cap = cap
        self._dirty.setdefault(flow)
        self._mutated()

    def set_resource_capacity(self, resource: Resource, capacity: Optional[float]) -> None:
        """Change a shared resource's capacity mid-simulation.

        Used by the fault-injection layer (edge brownouts, link degradation):
        flows currently crossing the resource are settled at their old rates
        and re-allocated under the new capacity.  ``None`` lifts the
        constraint entirely.
        """
        if capacity is not None and capacity <= 0:
            raise ValueError(
                f"resource {resource.name!r} capacity must be positive, got {capacity}"
            )
        if capacity == resource.capacity:
            return
        resource.capacity = capacity
        for flow in list(resource.flows):
            if flow.active:
                self._dirty.setdefault(flow)
        self._mutated()

    def throughput_snapshot(self) -> dict[int, float]:
        """Current rate of every active flow, keyed by flow id."""
        self.flush()
        return {f.flow_id: f.rate for f in self.active_flows}

    def resources_in_use(self) -> set[Resource]:
        """Every resource referenced by at least one active flow.

        Does **not** flush: the invariant auditor calls this at event
        boundaries where the post-event hook has already settled rates, and
        a flush here would perturb the settlement counters it audits.
        """
        resources: set[Resource] = set()
        for flow in self.active_flows:
            resources.update(flow.resources)
        return resources

    @contextmanager
    def batch(self) -> Iterator[None]:
        """Coalesce a block of mutations into one settlement pass.

        Inside the simulator loop this is automatic (the post-event hook
        settles each event's burst); the context manager extends the same
        coalescing to mutation bursts issued *outside* the loop — a fault
        being applied from driver code, a peer re-capping all its upload
        flows.  Nests safely.  In ``batching=False`` reference mode it is a
        no-op: every mutation still settles immediately.
        """
        self._batch_depth += 1
        try:
            yield
        finally:
            self._batch_depth -= 1
            self._maybe_settle()

    def flush(self) -> None:
        """Settle pending mutations now.  Idempotent; O(1) when clean.

        Rates are always settled before any other simulator event runs; the
        few code paths that read live rates *inside* the same callback that
        mutated the network call this first.
        """
        if not self._dirty:
            if self._need_schedule:
                self._need_schedule = False
                self._schedule_next_completion()
            return
        self.stats.flushes += 1
        dirty, self._dirty = self._dirty, {}
        self._need_schedule = False
        component: set[Flow] = set()
        for flow in dirty:
            if flow.active and flow not in component:
                walked = self._component(flow)
                self.stats.components += 1
                self.stats.flows_reallocated += len(walked)
                if len(walked) > self.stats.max_component:
                    self.stats.max_component = len(walked)
                component |= walked
        self._reallocate(component)

    # ------------------------------------------------------- internal engine

    def _mutated(self) -> None:
        """A mutation happened: settle now or defer to the event boundary."""
        self.stats.mutations += 1
        self._maybe_settle()

    def _maybe_settle(self) -> None:
        if not self.batching:
            self.flush()
            return
        if self._batch_depth == 0 and not self.sim.in_event:
            self.flush()

    def _post_event_flush(self) -> None:
        # Registered with the simulator: runs after every event callback, so
        # the next event (and anything after run()) always sees settled rates.
        if self._dirty or self._need_schedule:
            self.flush()

    def _detach(self, flow: Flow) -> None:
        flow.active = False
        flow._version += 1  # invalidate any heap entry
        if flow._queued:
            flow._queued = False
            self._heap_live -= 1
        self.active_flows.discard(flow)
        for res in flow.resources:
            res.flows.discard(flow)
            if res.flows:
                res.allocated -= flow.rate
            else:
                res.allocated = 0.0  # exact reset: no float residue lingers

    def _settle(self, flow: Flow) -> None:
        """Advance a flow's transferred bytes up to the current time."""
        now = self.sim.now
        dt = now - flow._last_update
        if dt > 0:
            flow.transferred = min(flow.size, flow.transferred + flow.rate * dt)
        flow._last_update = now

    def _component(self, flow: Flow) -> set[Flow]:
        """All active flows transitively sharing a resource with ``flow``."""
        if not flow.active:
            return set()
        seen = {flow}
        frontier = [flow]
        while frontier:
            current = frontier.pop()
            for res in current.resources:
                if res.capacity is None:
                    # Unconstrained resources never bind, so they don't
                    # couple allocations — skipping them keeps components
                    # (and reallocation cost) small.
                    continue
                for other in res.flows:
                    if other not in seen:
                        seen.add(other)
                        frontier.append(other)
        return seen

    def _reallocate(self, flows: set[Flow]) -> None:
        """Recompute max-min fair rates for a dirty union and reschedule."""
        flows = {f for f in flows if f.active}
        if not flows:
            self._schedule_next_completion()
            return
        self.stats.reallocations += 1
        for f in flows:
            self._settle(f)

        rates = self._waterfill(flows)
        now = self.sim.now
        changed = False
        for f, rate in rates.items():
            if rate == f.rate:
                # Flows progress linearly, so an unchanged rate means the
                # existing heap entry's ETA is still exact — skip the version
                # bump and re-push entirely (satellite: no heap bloat).
                self.stats.heap_skips += 1
                continue
            changed = True
            f.rate = rate
            f._version += 1
            if f._queued:
                f._queued = False
                self._heap_live -= 1
            if rate > 0 and f.remaining > 0:
                eta = now + f.remaining / rate
            else:
                eta = math.inf
            if math.isfinite(eta):
                heapq.heappush(self._completions, (eta, f.flow_id, f._version, f))
                f._queued = True
                self._heap_live += 1
                self.stats.heap_pushes += 1
        if changed:
            # Exact per-resource allocated sums: recomputed (not drifted) for
            # every constrained resource the union touches, so utilization
            # reads stay O(1) *and* bit-exact.
            seen_res: set[Resource] = set()
            for f in flows:
                for res in f.resources:
                    if res.capacity is not None and res not in seen_res:
                        seen_res.add(res)
                        res.allocated = sum(g.rate for g in res.flows)
        self._schedule_next_completion()

    def _waterfill(self, flows: set[Flow]) -> dict[Flow, float]:
        """Run the selected kernel over one settling component.

        Both kernels receive the component in canonical flow-id order, so
        their per-round freeze/subtract sequences — and therefore every
        IEEE rounding step — coincide exactly.  Components too small to
        amortize array setup stay on the python path regardless of the
        selected kernel.
        """
        ordered = sorted(flows, key=lambda f: f.flow_id)
        if self.kernel == "numpy" and len(ordered) >= _VECTOR_MIN_FLOWS:
            if self._vector is None:
                self._vector = _VectorWaterfill()
            return self._vector.solve(ordered, self.stats)
        return _max_min_fair(ordered, self.stats)

    def _maybe_compact_heap(self) -> None:
        heap = self._completions
        if len(heap) <= _HEAP_COMPACT_MIN:
            return
        if (len(heap) - self._heap_live) * 2 <= len(heap):
            return
        self._completions = [
            entry for entry in heap
            if entry[3].active and entry[2] == entry[3]._version
        ]
        heapq.heapify(self._completions)
        self.stats.heap_compactions += 1

    def _schedule_next_completion(self) -> None:
        # Drop stale heap entries, then (re)schedule the simulator event for
        # the earliest valid completion.
        self._maybe_compact_heap()
        while self._completions:
            eta, _fid, version, flow = self._completions[0]
            if not flow.active or version != flow._version:
                heapq.heappop(self._completions)
                self.stats.heap_stale_pops += 1
                continue
            break
        if not self._completions:
            if self._completion_event is not None and self._completion_event.pending:
                self._completion_event.cancel()
                self._completion_event = None
            return
        eta = self._completions[0][0]
        delay = max(0.0, eta - self.sim.now)
        if (
            self._completion_event is not None
            and self._completion_event.pending
            and self._completion_event.time == self.sim.now + delay
        ):
            return  # already armed for exactly this instant — keep it
        if self._completion_event is not None and self._completion_event.pending:
            self._completion_event.cancel()
        self._completion_event = self.sim.schedule(delay, self._on_completion_tick)

    def _on_completion_tick(self) -> None:
        now = self.sim.now
        finished: list[Flow] = []
        while self._completions:
            eta, _fid, version, flow = self._completions[0]
            if not flow.active or version != flow._version:
                heapq.heappop(self._completions)
                self.stats.heap_stale_pops += 1
                continue
            if eta > now + 1e-9:
                break
            heapq.heappop(self._completions)
            flow._queued = False
            self._heap_live -= 1
            finished.append(flow)

        affected: set[Flow] = set()
        for flow in finished:
            self._settle(flow)
            flow.transferred = flow.size  # squash float residue
            for res in flow.resources:
                if res.capacity is None:
                    continue
                for other in res.flows:
                    if other is not flow:
                        affected.add(other)
            self._detach(flow)
            flow.end_time = now
            self.completed_count += 1

        for f in affected:
            if f.active:
                self._dirty.setdefault(f)
        self._need_schedule = True
        if not self.batching:
            self.flush()
        # In batched mode even the completion burst defers: the freed
        # capacity, the flows the callbacks below start, and any teardowns
        # they trigger all settle in this event's single settlement pass.
        # Callbacks never observe stale rates — every live-rate reader
        # flushes first.

        for flow in finished:
            if flow.on_complete is not None:
                flow.on_complete(flow)


def _max_min_fair(
    flows: Iterable[Flow], stats: Optional[FlowNetworkStats] = None
) -> dict[Flow, float]:
    """Progressive water-filling with per-flow caps (the python kernel).

    Repeatedly find the binding constraint — either the most-loaded resource's
    equal share or the smallest unfrozen flow cap — and freeze the affected
    flows at that rate.  Each iteration freezes at least one flow, so the
    loop terminates in at most ``len(flows)`` rounds.
    """
    if stats is not None:
        stats.waterfill_calls += 1
    # Count only flows in this component; flows on this resource that are
    # outside the component cannot exist (components are closed under
    # shared resources).
    remaining: dict[Resource, float] = {}
    counts: dict[Resource, int] = {}
    for f in flows:
        for res in f.resources:
            if res.capacity is None:
                continue
            if res not in remaining:
                remaining[res] = res.capacity
                counts[res] = 1
            else:
                counts[res] += 1

    unfrozen = set(flows)
    rates: dict[Flow, float] = {}

    while unfrozen:
        if stats is not None:
            stats.waterfill_rounds += 1
        # Bottleneck share among constrained resources with unfrozen flows.
        share = math.inf
        bottleneck: Optional[Resource] = None
        for res, cap_left in remaining.items():
            n = counts[res]
            if n <= 0:
                continue
            s = cap_left / n
            if s < share:
                share = s
                bottleneck = res

        # Smallest cap among unfrozen flows.
        min_cap = math.inf
        for f in unfrozen:
            if f.cap is not None and f.cap < min_cap:
                min_cap = f.cap

        if min_cap < share:
            # Freeze all flows whose cap equals the minimum at their cap.
            level = min_cap
            frozen = [f for f in unfrozen if f.cap is not None and f.cap <= level]
            for f in frozen:
                rates[f] = f.cap  # type: ignore[assignment]
                unfrozen.discard(f)
                for res in f.resources:
                    if res in remaining:
                        remaining[res] -= f.cap  # type: ignore[operator]
                        counts[res] -= 1
        elif bottleneck is not None:
            level = share
            frozen = [f for f in unfrozen if bottleneck in f.resources]
            for f in frozen:
                rates[f] = level
                unfrozen.discard(f)
                for res in f.resources:
                    if res in remaining:
                        remaining[res] -= level
                        counts[res] -= 1
            remaining[bottleneck] = 0.0
        else:
            # No constrained resource and no cap: unconstrained flows.
            for f in unfrozen:
                rates[f] = f.cap if f.cap is not None else UNCONSTRAINED_RATE
            unfrozen.clear()

    # Guard against tiny negative residue from float subtraction.
    return {f: max(0.0, r) for f, r in rates.items()}


class _VectorWaterfill:
    """Array-based progressive water-filling (the ``numpy`` kernel).

    A settling component is rebuilt into flat arrays — made cheap by the
    interned integer ids both node kinds already carry (``Flow.flow_id``;
    resources are interned into dense local indices in first-encounter
    order over the flow-id-ordered component):

    * ``caps[i]``       — flow *i*'s rate cap (``inf`` when uncapped);
    * ``inc_flow[k]`` / ``inc_res[k]`` — the CSR-style flow→resource
      incidence list, flow-major in flow-id order (so entry order equals
      the reference kernel's iteration order);
    * ``remaining[j]`` / ``counts[j]`` — per-resource capacity left and
      unfrozen-flow occurrence counts.

    Each freezing round is then vector ops: an elementwise divide +
    ``argmin`` finds the bottleneck share, a boolean mask selects the
    flows to freeze (every flow whose cap equals the binding minimum cap,
    or every unfrozen flow crossing the bottleneck), and an *ordered*
    ``np.subtract.at`` scatter-subtracts the frozen rates from their
    resources.  ``subtract.at`` applies repeated indices sequentially in
    entry order, and within a round every subtracted value is identical
    (the frozen caps all equal the minimum cap; the bottleneck freezes at
    one level), so each remaining-capacity cell sees the exact IEEE
    operation sequence the python kernel performs — results are
    bit-identical, which the hypothesis suite and the golden pipeline
    both assert.

    Buffers are owned by the instance and grown geometrically, so steady
    state settles allocate nothing; one instance lives per
    :class:`FlowNetwork` and is reused across all its settle calls.
    """

    #: Settle-call stamps are global so two networks sharing Resource
    #: objects can never mistake each other's interned slots for their own.
    _next_stamp = 0

    __slots__ = ("np", "_caps", "_rates", "_unfrozen", "_frozen",
                 "_inc_flow", "_inc_res", "_remaining", "_counts", "_share")

    def __init__(self):
        import numpy
        self.np = numpy
        self._caps = numpy.empty(0)
        self._rates = numpy.empty(0)
        self._unfrozen = numpy.empty(0, dtype=bool)
        self._frozen = numpy.empty(0, dtype=bool)
        self._inc_flow = numpy.empty(0, dtype=numpy.intp)
        self._inc_res = numpy.empty(0, dtype=numpy.intp)
        self._remaining = numpy.empty(0)
        self._counts = numpy.empty(0, dtype=numpy.int64)
        self._share = numpy.empty(0)

    def _fit(self, name: str, n: int):
        """The named buffer, grown (never shrunk) to hold ``n`` entries."""
        buf = getattr(self, name)
        if len(buf) < n:
            buf = self.np.empty(max(n, 2 * len(buf)), dtype=buf.dtype)
            setattr(self, name, buf)
        return buf

    def solve(
        self, ordered: list[Flow], stats: Optional[FlowNetworkStats] = None
    ) -> dict[Flow, float]:
        """Max-min fair rates for one component, in flow-id order."""
        np = self.np
        if stats is not None:
            stats.waterfill_calls += 1
        nf = len(ordered)

        # ---- rebuild the component into arrays -------------------------
        # Resources are interned to dense local slots via a stamp (no dict,
        # no hashing): a resource whose stamp is stale gets the next slot.
        caps = self._fit("_caps", nf)
        inc_cap = sum(len(f.resources) for f in ordered)
        inc_flow = self._fit("_inc_flow", inc_cap)
        inc_res = self._fit("_inc_res", inc_cap)
        stamp = _VectorWaterfill._next_stamp = _VectorWaterfill._next_stamp + 1
        res_list: list[Resource] = []
        k = 0
        for i, f in enumerate(ordered):
            cap = f.cap
            caps[i] = math.inf if cap is None else cap
            for res in f.resources:
                if res.capacity is None:
                    continue  # never binds; keeping it out shrinks the arrays
                if res._stamp != stamp:
                    res._stamp = stamp
                    res._slot = len(res_list)
                    res_list.append(res)
                inc_flow[k] = i
                inc_res[k] = res._slot
                k += 1
        nr = len(res_list)
        caps = caps[:nf]
        inc_flow = inc_flow[:k]
        inc_res = inc_res[:k]

        remaining = self._fit("_remaining", nr)[:nr]
        counts = self._fit("_counts", nr)[:nr]
        share = self._fit("_share", nr)[:nr]
        for j, res in enumerate(res_list):
            remaining[j] = res.capacity
        counts[:] = 0
        np.add.at(counts, inc_res, 1)

        rates = self._fit("_rates", nf)[:nf]
        rates[:] = 0.0
        unfrozen = self._fit("_unfrozen", nf)[:nf]
        unfrozen[:] = True
        frozen = self._fit("_frozen", nf)[:nf]

        # ---- freezing rounds -------------------------------------------
        # ``caps`` doubles as the live cap array: a frozen flow's entry is
        # overwritten with inf, so the per-round minimum only ever sees
        # unfrozen caps (the reference scans the unfrozen set the same way).
        remaining_flows = nf
        while remaining_flows:
            if stats is not None:
                stats.waterfill_rounds += 1
            # Bottleneck share among constrained resources with unfrozen
            # flows; inactive resources keep inf so argmin (first-minimum,
            # like the reference's strict '<' scan) skips them.  An
            # infinite minimum means no resource binds at all.
            share.fill(math.inf)
            np.divide(remaining, counts, out=share, where=counts > 0)
            if nr:
                b = int(np.argmin(share))
                level = float(share[b])
            else:
                b = -1
                level = math.inf

            # Smallest cap among unfrozen flows (inf when all uncapped;
            # frozen entries were overwritten with inf below).
            min_cap = float(caps.min())

            if min_cap < level:
                # Freeze every flow whose cap equals the binding minimum —
                # ``<=`` like the reference, but every selected cap *is*
                # min_cap exactly, so the scatter subtracts the same value
                # the reference kernel subtracts flow by flow.
                np.less_equal(caps, min_cap, out=frozen)
                rates[frozen] = min_cap
                idx = inc_res[frozen[inc_flow]]
                np.subtract.at(remaining, idx, min_cap)
            elif level < math.inf:
                # Freeze every unfrozen flow crossing the bottleneck at the
                # equal share.
                frozen[:] = False
                touching = inc_res == b
                touching &= unfrozen[inc_flow]
                frozen[inc_flow[touching]] = True
                rates[frozen] = level
                idx = inc_res[frozen[inc_flow]]
                np.subtract.at(remaining, idx, level)
                remaining[b] = 0.0
            else:
                # No constrained resource and no unfrozen cap (min_cap is
                # also inf here, or the cap branch would have taken it):
                # the leftovers are fully unconstrained flows.
                rates[unfrozen] = UNCONSTRAINED_RATE
                break
            np.add.at(counts, idx, -1)
            unfrozen[frozen] = False
            caps[frozen] = math.inf
            remaining_flows -= int(np.count_nonzero(frozen))

        # Guard against tiny negative residue from float subtraction
        # (same final clamp as the reference kernel).
        return {f: max(0.0, float(rates[i])) for i, f in enumerate(ordered)}
