"""Flow-level fluid bandwidth model with max-min fair sharing.

Downloads in this reproduction are not simulated packet-by-packet; what the
paper measures (download speed CDFs, peer efficiency, traffic volumes) is
driven entirely by how competing transfers share constrained links.  We model
each transfer as a *flow* that traverses a set of capacity-constrained
*resources* — the uploader's uplink, the downloader's downlink, an edge
server's egress capacity — and allocate rates with the classic progressive
water-filling algorithm, which yields the max-min fair allocation [Bertsekas
& Gallager].  Per-flow rate caps model NetSession's deliberate upload
throttling (paper §3.9).

Between allocation changes every flow progresses linearly, so the engine is
event-driven: rates are only recomputed when a flow starts, finishes, is
aborted, or has its cap changed — and only for the connected component of
flows that actually share resources with the change.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Iterable, Optional

from repro.net.sim import Simulator

__all__ = ["Resource", "Flow", "FlowNetwork"]

#: Rate assigned to a flow constrained by nothing at all (no resources, no
#: cap).  Finite so completion times stay finite; generous enough (10 GB/s)
#: that it never binds in realistic scenarios.
UNCONSTRAINED_RATE = 10e9


class Resource:
    """A capacity constraint shared by flows (a link direction, a server NIC).

    ``capacity`` is in bytes/second.  A resource with ``capacity=None`` is
    unconstrained and never becomes a bottleneck (useful for modelling core
    links we assume are overprovisioned, as the paper implicitly does).
    """

    __slots__ = ("name", "capacity", "flows")

    def __init__(self, name: str, capacity: Optional[float]):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"resource {name!r} capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.flows: set["Flow"] = set()

    @property
    def utilization(self) -> float:
        """Fraction of capacity currently allocated (0.0 for unconstrained)."""
        if self.capacity is None:
            return 0.0
        return sum(f.rate for f in self.flows) / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "inf" if self.capacity is None else f"{self.capacity:.0f}B/s"
        return f"<Resource {self.name} cap={cap} flows={len(self.flows)}>"


class Flow:
    """A fluid transfer of ``size`` bytes across a set of resources.

    Flows are created through :meth:`FlowNetwork.start_flow`.  ``meta`` is an
    opaque payload for the caller (the swarm layer stores the connection it
    belongs to).
    """

    __slots__ = (
        "flow_id", "resources", "size", "transferred", "rate", "cap",
        "on_complete", "meta", "start_time", "_last_update", "_version",
        "active", "end_time",
    )

    def __init__(
        self,
        flow_id: int,
        resources: tuple[Resource, ...],
        size: float,
        cap: Optional[float],
        on_complete: Optional[Callable[["Flow"], None]],
        meta: object,
        now: float,
    ):
        self.flow_id = flow_id
        self.resources = resources
        self.size = float(size)
        self.transferred = 0.0
        self.rate = 0.0
        self.cap = cap
        self.on_complete = on_complete
        self.meta = meta
        self.start_time = now
        self.end_time: Optional[float] = None
        self._last_update = now
        self._version = 0
        self.active = True

    @property
    def remaining(self) -> float:
        """Bytes still to transfer."""
        return max(0.0, self.size - self.transferred)

    @property
    def elapsed(self) -> Optional[float]:
        """Transfer duration, or None if still active."""
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    def average_rate(self, now: Optional[float] = None) -> float:
        """Mean throughput in bytes/s over the flow's lifetime so far."""
        end = self.end_time if self.end_time is not None else now
        if end is None or end <= self.start_time:
            return 0.0
        return self.transferred / (end - self.start_time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Flow #{self.flow_id} {self.transferred:.0f}/{self.size:.0f}B "
            f"@{self.rate:.0f}B/s {'active' if self.active else 'done'}>"
        )


class FlowNetwork:
    """Manages all active flows and keeps their rates max-min fair.

    The network owns a completion heap inside the simulator: whenever rates
    change, new completion times are computed and stale heap entries are
    invalidated lazily via per-flow version counters.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._next_id = 0
        self.active_flows: set[Flow] = set()
        # (completion_time, flow_id, version, flow) — lazy invalidation
        self._completions: list[tuple[float, int, int, Flow]] = []
        self._completion_event = None
        self.completed_count = 0
        self.aborted_count = 0

    # ------------------------------------------------------------------ API

    def start_flow(
        self,
        resources: Iterable[Resource],
        size: float,
        *,
        cap: Optional[float] = None,
        on_complete: Optional[Callable[[Flow], None]] = None,
        meta: object = None,
    ) -> Flow:
        """Begin a transfer of ``size`` bytes across ``resources``.

        ``cap`` optionally limits the flow's rate regardless of fair share
        (NetSession's upload throttle).  ``on_complete`` fires, inside the
        simulator, when the last byte is delivered.
        """
        if size <= 0:
            raise ValueError(f"flow size must be positive, got {size}")
        if cap is not None and cap <= 0:
            raise ValueError(f"flow cap must be positive, got {cap}")
        flow = Flow(
            flow_id=self._next_id,
            resources=tuple(resources),
            size=size,
            cap=cap,
            on_complete=on_complete,
            meta=meta,
            now=self.sim.now,
        )
        self._next_id += 1
        self.active_flows.add(flow)
        for res in flow.resources:
            res.flows.add(flow)
        self._reallocate(self._component(flow))
        return flow

    def abort_flow(self, flow: Flow) -> None:
        """Stop a flow before completion; already-transferred bytes stand."""
        if not flow.active:
            return
        self._settle(flow)
        self._detach(flow)
        flow.end_time = self.sim.now
        self.aborted_count += 1
        component = set()
        for res in flow.resources:
            if res.capacity is None:
                continue
            for other in res.flows:
                component |= self._component(other)
        self._reallocate(component)

    def set_cap(self, flow: Flow, cap: Optional[float]) -> None:
        """Change a flow's rate cap (used to throttle or pause-ish a flow)."""
        if not flow.active:
            return
        if cap is not None and cap <= 0:
            raise ValueError(f"flow cap must be positive, got {cap}")
        flow.cap = cap
        self._reallocate(self._component(flow))

    def set_resource_capacity(self, resource: Resource, capacity: Optional[float]) -> None:
        """Change a shared resource's capacity mid-simulation.

        Used by the fault-injection layer (edge brownouts, link degradation):
        flows currently crossing the resource are settled at their old rates
        and re-allocated under the new capacity.  ``None`` lifts the
        constraint entirely.
        """
        if capacity is not None and capacity <= 0:
            raise ValueError(
                f"resource {resource.name!r} capacity must be positive, got {capacity}"
            )
        if capacity == resource.capacity:
            return
        resource.capacity = capacity
        component: set[Flow] = set()
        for flow in list(resource.flows):
            if flow.active and flow not in component:
                component |= self._component(flow)
        self._reallocate(component)

    def throughput_snapshot(self) -> dict[int, float]:
        """Current rate of every active flow, keyed by flow id."""
        return {f.flow_id: f.rate for f in self.active_flows}

    # ------------------------------------------------------- internal engine

    def _detach(self, flow: Flow) -> None:
        flow.active = False
        flow._version += 1  # invalidate any heap entry
        self.active_flows.discard(flow)
        for res in flow.resources:
            res.flows.discard(flow)

    def _settle(self, flow: Flow) -> None:
        """Advance a flow's transferred bytes up to the current time."""
        now = self.sim.now
        dt = now - flow._last_update
        if dt > 0:
            flow.transferred = min(flow.size, flow.transferred + flow.rate * dt)
        flow._last_update = now

    def _component(self, flow: Flow) -> set[Flow]:
        """All active flows transitively sharing a resource with ``flow``."""
        if not flow.active:
            return set()
        seen = {flow}
        frontier = [flow]
        while frontier:
            current = frontier.pop()
            for res in current.resources:
                if res.capacity is None:
                    # Unconstrained resources never bind, so they don't
                    # couple allocations — skipping them keeps components
                    # (and reallocation cost) small.
                    continue
                for other in res.flows:
                    if other not in seen:
                        seen.add(other)
                        frontier.append(other)
        return seen

    def _reallocate(self, flows: set[Flow]) -> None:
        """Recompute max-min fair rates for a component and reschedule."""
        flows = {f for f in flows if f.active}
        if not flows:
            self._schedule_next_completion()
            return
        for f in flows:
            self._settle(f)

        rates = _max_min_fair(flows)
        for f, rate in rates.items():
            f.rate = rate
            f._version += 1
            if rate > 0 and f.remaining > 0:
                eta = self.sim.now + f.remaining / rate
            else:
                eta = math.inf
            if math.isfinite(eta):
                heapq.heappush(self._completions, (eta, f.flow_id, f._version, f))
        self._schedule_next_completion()

    def _schedule_next_completion(self) -> None:
        # Drop stale heap entries, then (re)schedule the simulator event for
        # the earliest valid completion.
        while self._completions:
            eta, _fid, version, flow = self._completions[0]
            if not flow.active or version != flow._version:
                heapq.heappop(self._completions)
                continue
            break
        if self._completion_event is not None and self._completion_event.pending:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._completions:
            return
        eta = self._completions[0][0]
        delay = max(0.0, eta - self.sim.now)
        self._completion_event = self.sim.schedule(delay, self._on_completion_tick)

    def _on_completion_tick(self) -> None:
        now = self.sim.now
        finished: list[Flow] = []
        while self._completions:
            eta, _fid, version, flow = self._completions[0]
            if not flow.active or version != flow._version:
                heapq.heappop(self._completions)
                continue
            if eta > now + 1e-9:
                break
            heapq.heappop(self._completions)
            finished.append(flow)

        affected: set[Flow] = set()
        for flow in finished:
            self._settle(flow)
            flow.transferred = flow.size  # squash float residue
            for res in flow.resources:
                if res.capacity is None:
                    continue
                for other in res.flows:
                    if other is not flow:
                        affected.add(other)
            self._detach(flow)
            flow.end_time = now
            self.completed_count += 1

        component: set[Flow] = set()
        for f in affected:
            if f not in component and f.active:
                component |= self._component(f)
        self._reallocate(component)

        for flow in finished:
            if flow.on_complete is not None:
                flow.on_complete(flow)


def _max_min_fair(flows: set[Flow]) -> dict[Flow, float]:
    """Progressive water-filling with per-flow caps.

    Repeatedly find the binding constraint — either the most-loaded resource's
    equal share or the smallest unfrozen flow cap — and freeze the affected
    flows at that rate.  Each iteration freezes at least one flow, so the
    loop terminates in at most ``len(flows)`` rounds.
    """
    remaining: dict[Resource, float] = {}
    counts: dict[Resource, int] = {}
    for f in flows:
        for res in f.resources:
            if res.capacity is None:
                continue
            if res not in remaining:
                remaining[res] = res.capacity
                counts[res] = 0
            # Count only flows in this component; flows on this resource that
            # are outside the component cannot exist (components are closed
            # under shared resources).
    for f in flows:
        for res in f.resources:
            if res in counts:
                counts[res] += 1

    unfrozen = set(flows)
    rates: dict[Flow, float] = {}

    while unfrozen:
        # Bottleneck share among constrained resources with unfrozen flows.
        share = math.inf
        bottleneck: Optional[Resource] = None
        for res, cap_left in remaining.items():
            n = counts[res]
            if n <= 0:
                continue
            s = cap_left / n
            if s < share:
                share = s
                bottleneck = res

        # Smallest cap among unfrozen flows.
        min_cap = math.inf
        for f in unfrozen:
            if f.cap is not None and f.cap < min_cap:
                min_cap = f.cap

        if min_cap < share:
            # Freeze all flows whose cap equals the minimum at their cap.
            level = min_cap
            frozen = [f for f in unfrozen if f.cap is not None and f.cap <= level]
            for f in frozen:
                rates[f] = f.cap  # type: ignore[assignment]
                unfrozen.discard(f)
                for res in f.resources:
                    if res in remaining:
                        remaining[res] -= f.cap  # type: ignore[operator]
                        counts[res] -= 1
        elif bottleneck is not None:
            level = share
            frozen = [f for f in unfrozen if bottleneck in f.resources]
            for f in frozen:
                rates[f] = level
                unfrozen.discard(f)
                for res in f.resources:
                    if res in remaining:
                        remaining[res] -= level
                        counts[res] -= 1
            remaining[bottleneck] = 0.0
        else:
            # No constrained resource and no cap: unconstrained flows.
            for f in unfrozen:
                rates[f] = f.cap if f.cap is not None else UNCONSTRAINED_RATE
            unfrozen.clear()

    # Guard against tiny negative residue from float subtraction.
    return {f: max(0.0, r) for f, r in rates.items()}
