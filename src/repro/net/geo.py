"""Synthetic world geography and an EdgeScape-equivalent geolocation service.

The paper geolocates every peer IP with Akamai's EdgeScape [paper §4.1]:
country code, city, latitude/longitude, timezone, and network provider.  We
build the same lookup service over a synthetic world:

* the ten analysis regions of Table 2 (US East, US West, other Americas,
  India, China, other Asia, Europe, Africa, Oceania);
* a core table of real countries with real coordinates and peer-population
  weights calibrated to the paper's Figure 2 (27% North America, 35% Europe,
  sizable South America/Asia groups);
* optional synthetic "territories" to pad the country count toward the 239
  country codes the paper observes (ISO codes cover territories and even
  Antarctica — Table 1's note).

Distances use the haversine formula; the mobility analysis (§6.2: 77% of
GUIDs stay within 10 km) relies on it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

__all__ = [
    "Region", "City", "Country", "GeoRecord", "World", "GeoDatabase",
    "haversine_km", "build_core_world", "REGIONS",
]


class Region:
    """The ten regions used for Table 2's download breakdown."""

    US_EAST = "US East"
    US_WEST = "US West"
    AMERICAS_OTHER = "Americas Other"
    INDIA = "India"
    CHINA = "China"
    ASIA_OTHER = "Asia Other"
    EUROPE = "Europe"
    AFRICA = "Africa"
    OCEANIA = "Oceania"


REGIONS: tuple[str, ...] = (
    Region.US_EAST, Region.US_WEST, Region.AMERICAS_OTHER, Region.INDIA,
    Region.CHINA, Region.ASIA_OTHER, Region.EUROPE, Region.AFRICA,
    Region.OCEANIA,
)


@dataclass(frozen=True)
class City:
    """A populated place peers can be located in."""

    name: str
    lat: float
    lon: float
    weight: float = 1.0


@dataclass(frozen=True)
class Country:
    """A country (or territory) in the synthetic world."""

    code: str            # ISO 3166-ish two-letter code
    name: str
    region: str          # one of REGIONS
    peer_weight: float   # share of the global peer population
    cities: tuple[City, ...]
    timezone: str = "UTC"
    speed_multiplier: float = 1.0  # scales sampled broadband speeds

    def __post_init__(self):
        if not self.cities:
            raise ValueError(f"country {self.code} needs at least one city")
        if self.peer_weight < 0:
            raise ValueError(f"country {self.code} peer_weight must be >= 0")


@dataclass(frozen=True)
class GeoRecord:
    """What an EdgeScape lookup returns for one IP address."""

    country_code: str
    region: str
    city: str
    lat: float
    lon: float
    timezone: str
    network: str  # provider / AS name
    asn: int


class World:
    """The set of countries plus sampling helpers."""

    def __init__(self, countries: list[Country]):
        if not countries:
            raise ValueError("world needs at least one country")
        codes = [c.code for c in countries]
        if len(set(codes)) != len(codes):
            raise ValueError("duplicate country codes in world definition")
        self.countries = list(countries)
        self.by_code = {c.code: c for c in countries}
        self._weights = [c.peer_weight for c in countries]
        total = sum(self._weights)
        if total <= 0:
            raise ValueError("total peer weight must be positive")

    def sample_country(self, rng: random.Random) -> Country:
        """Draw a country proportionally to its peer-population weight."""
        return rng.choices(self.countries, weights=self._weights, k=1)[0]

    def sample_city(self, country: Country, rng: random.Random) -> City:
        """Draw a city within a country, weighted by city size."""
        weights = [c.weight for c in country.cities]
        return rng.choices(list(country.cities), weights=weights, k=1)[0]

    def region_weight(self, region: str) -> float:
        """Total peer weight of all countries in a region."""
        return sum(c.peer_weight for c in self.countries if c.region == region)

    def __len__(self) -> int:
        return len(self.countries)


class GeoDatabase:
    """EdgeScape substitute: IP address → :class:`GeoRecord`.

    The addressing layer registers records as it assigns IPs; the analysis
    layer performs lookups exactly as the paper's authors did with the real
    EdgeScape data set.
    """

    def __init__(self):
        self._records: dict[str, GeoRecord] = {}

    def register(self, ip: str, record: GeoRecord) -> None:
        """Associate ``ip`` with a geolocation record (idempotent overwrite)."""
        self._records[ip] = record

    def lookup(self, ip: str) -> GeoRecord:
        """Return the record for ``ip``; KeyError for unknown addresses."""
        return self._records[ip]

    def get(self, ip: str) -> GeoRecord | None:
        """Like :meth:`lookup` but returns None for unknown addresses."""
        return self._records.get(ip)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, ip: str) -> bool:
        return ip in self._records

    def distinct_locations(self) -> int:
        """Number of distinct (lat, lon) pairs — Table 1's 'distinct locations'."""
        return len({(r.lat, r.lon) for r in self._records.values()})

    def distinct_countries(self) -> int:
        """Number of distinct country codes — Table 1's country count."""
        return len({r.country_code for r in self._records.values()})

    def distinct_asns(self) -> int:
        """Number of distinct autonomous systems observed."""
        return len({r.asn for r in self._records.values()})


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two points, in kilometres."""
    r = 6371.0
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2) ** 2
    return 2 * r * math.asin(min(1.0, math.sqrt(a)))


# --------------------------------------------------------------------- world


def build_core_world(extra_territories: int = 0, seed: int = 0) -> World:
    """Build the synthetic world.

    The core table covers the population mix the paper reports (Figure 2:
    North America 27%, Europe 35%, plus South America and Asia).  With
    ``extra_territories`` > 0, small synthetic territories (negligible
    weight, random coordinates) are appended so that scenario runs can
    observe connections from "239 countries and territories" like Table 1.
    """
    countries = list(_CORE_COUNTRIES)
    if extra_territories:
        rng = random.Random(seed ^ 0x7E44)
        used = {c.code for c in countries}
        regions = list(REGIONS)
        n = 0
        while n < extra_territories:
            code = "".join(rng.choices("ABCDEFGHIJKLMNOPQRSTUVWXYZ", k=2))
            if code in used:
                continue
            used.add(code)
            lat = rng.uniform(-60, 70)
            lon = rng.uniform(-180, 180)
            countries.append(
                Country(
                    code=code,
                    name=f"Territory {code}",
                    region=rng.choice(regions),
                    peer_weight=0.02,
                    cities=(City(f"{code} Main", lat, lon),),
                )
            )
            n += 1
    return World(countries)


def _c(code, name, region, weight, cities, tz="UTC", speed=1.0) -> Country:
    return Country(code, name, region, weight,
                   tuple(City(*c) for c in cities), tz, speed)


#: Core country table.  Weights are percentage points of the global peer
#: population (they need not sum to 100; sampling normalises).  The regional
#: totals track Figure 2: ~27% North America, ~35% Europe, the rest split
#: across South America, Asia, Africa, Oceania.
_CORE_COUNTRIES: tuple[Country, ...] = (
    # --- North America (~27) -------------------------------------------------
    _c("US", "United States", Region.US_EAST, 12.0, [
        ("New York", 40.71, -74.01, 8.4), ("Philadelphia", 39.95, -75.17, 1.6),
        ("Boston", 42.36, -71.06, 0.7), ("Atlanta", 33.75, -84.39, 0.5),
        ("Miami", 25.76, -80.19, 0.5), ("Washington", 38.91, -77.04, 0.7),
        ("Pittsburgh", 40.44, -79.99, 0.3),
    ], "America/New_York", 1.3),
    _c("UW", "United States (West)", Region.US_WEST, 8.0, [
        ("Los Angeles", 34.05, -118.24, 4.0), ("San Francisco", 37.77, -122.42, 0.9),
        ("Seattle", 47.61, -122.33, 0.7), ("Denver", 39.74, -104.99, 0.7),
        ("Phoenix", 33.45, -112.07, 1.6),
    ], "America/Los_Angeles", 1.4),
    _c("CA", "Canada", Region.AMERICAS_OTHER, 3.5, [
        ("Toronto", 43.65, -79.38, 2.8), ("Vancouver", 49.28, -123.12, 0.6),
        ("Montreal", 45.50, -73.57, 1.7),
    ], "America/Toronto", 1.2),
    _c("MX", "Mexico", Region.AMERICAS_OTHER, 2.5, [
        ("Mexico City", 19.43, -99.13, 8.9), ("Guadalajara", 20.66, -103.35, 1.5),
    ], "America/Mexico_City", 0.6),
    # --- South America -------------------------------------------------------
    _c("BR", "Brazil", Region.AMERICAS_OTHER, 5.0, [
        ("Sao Paulo", -23.55, -46.63, 12.3), ("Rio de Janeiro", -22.91, -43.17, 6.7),
        ("Brasilia", -15.79, -47.88, 3.0),
    ], "America/Sao_Paulo", 0.5),
    _c("AR", "Argentina", Region.AMERICAS_OTHER, 1.5, [
        ("Buenos Aires", -34.60, -58.38, 3.0), ("Cordoba", -31.42, -64.18, 1.4),
    ], "America/Argentina/Buenos_Aires", 0.5),
    _c("CL", "Chile", Region.AMERICAS_OTHER, 0.8, [
        ("Santiago", -33.45, -70.67, 5.6),
    ], "America/Santiago", 0.6),
    _c("CO", "Colombia", Region.AMERICAS_OTHER, 0.9, [
        ("Bogota", 4.71, -74.07, 7.4), ("Medellin", 6.25, -75.56, 2.5),
    ], "America/Bogota", 0.4),
    # --- Europe (~35) ---------------------------------------------------------
    _c("DE", "Germany", Region.EUROPE, 6.5, [
        ("Berlin", 52.52, 13.41, 3.6), ("Munich", 48.14, 11.58, 1.5),
        ("Hamburg", 53.55, 9.99, 1.8), ("Frankfurt", 50.11, 8.68, 0.7),
    ], "Europe/Berlin", 1.1),
    _c("GB", "United Kingdom", Region.EUROPE, 5.5, [
        ("London", 51.51, -0.13, 8.9), ("Manchester", 53.48, -2.24, 0.5),
        ("Birmingham", 52.49, -1.89, 1.1),
    ], "Europe/London", 1.1),
    _c("FR", "France", Region.EUROPE, 5.0, [
        ("Paris", 48.86, 2.35, 2.2), ("Lyon", 45.76, 4.84, 0.5),
        ("Marseille", 43.30, 5.37, 0.9),
    ], "Europe/Paris", 1.2),
    _c("IT", "Italy", Region.EUROPE, 3.5, [
        ("Rome", 41.90, 12.50, 2.9), ("Milan", 45.46, 9.19, 1.4),
    ], "Europe/Rome", 0.8),
    _c("ES", "Spain", Region.EUROPE, 3.0, [
        ("Madrid", 40.42, -3.70, 3.2), ("Barcelona", 41.39, 2.17, 1.6),
    ], "Europe/Madrid", 0.9),
    _c("PL", "Poland", Region.EUROPE, 2.5, [
        ("Warsaw", 52.23, 21.01, 1.8), ("Krakow", 50.06, 19.94, 0.8),
    ], "Europe/Warsaw", 0.8),
    _c("NL", "Netherlands", Region.EUROPE, 2.0, [
        ("Amsterdam", 52.37, 4.90, 0.9), ("Rotterdam", 51.92, 4.48, 0.6),
    ], "Europe/Amsterdam", 1.5),
    _c("SE", "Sweden", Region.EUROPE, 1.5, [
        ("Stockholm", 59.33, 18.07, 1.0), ("Gothenburg", 57.71, 11.97, 0.6),
    ], "Europe/Stockholm", 1.6),
    _c("RO", "Romania", Region.EUROPE, 1.5, [
        ("Bucharest", 44.43, 26.10, 1.9),
    ], "Europe/Bucharest", 1.4),
    _c("RU", "Russia", Region.EUROPE, 3.5, [
        ("Moscow", 55.76, 37.62, 12.5), ("Saint Petersburg", 59.93, 30.34, 5.4),
        ("Novosibirsk", 55.03, 82.92, 1.6),
    ], "Europe/Moscow", 0.9),
    _c("TR", "Turkey", Region.EUROPE, 2.0, [
        ("Istanbul", 41.01, 28.98, 15.0), ("Ankara", 39.93, 32.86, 5.6),
    ], "Europe/Istanbul", 0.7),
    _c("UA", "Ukraine", Region.EUROPE, 1.5, [
        ("Kyiv", 50.45, 30.52, 2.9), ("Kharkiv", 49.99, 36.23, 1.4),
    ], "Europe/Kyiv", 0.9),
    _c("CZ", "Czechia", Region.EUROPE, 1.0, [
        ("Prague", 50.08, 14.44, 1.3),
    ], "Europe/Prague", 1.0),
    _c("PT", "Portugal", Region.EUROPE, 0.8, [
        ("Lisbon", 38.72, -9.14, 0.5),
    ], "Europe/Lisbon", 1.0),
    _c("GR", "Greece", Region.EUROPE, 0.7, [
        ("Athens", 37.98, 23.73, 3.2),
    ], "Europe/Athens", 0.6),
    # --- Asia -----------------------------------------------------------------
    _c("IN", "India", Region.INDIA, 4.0, [
        ("Mumbai", 19.08, 72.88, 12.4), ("Delhi", 28.70, 77.10, 11.0),
        ("Bangalore", 12.97, 77.59, 8.4), ("Chennai", 13.08, 80.27, 4.6),
    ], "Asia/Kolkata", 0.3),
    _c("CN", "China", Region.CHINA, 3.0, [
        ("Beijing", 39.90, 116.41, 21.5), ("Shanghai", 31.23, 121.47, 24.3),
        ("Guangzhou", 23.13, 113.26, 13.1), ("Chengdu", 30.57, 104.07, 16.3),
    ], "Asia/Shanghai", 0.5),
    _c("JP", "Japan", Region.ASIA_OTHER, 3.5, [
        ("Tokyo", 35.68, 139.65, 13.9), ("Osaka", 34.69, 135.50, 2.7),
    ], "Asia/Tokyo", 1.6),
    _c("KR", "South Korea", Region.ASIA_OTHER, 2.5, [
        ("Seoul", 37.57, 126.98, 9.7), ("Busan", 35.18, 129.08, 3.4),
    ], "Asia/Seoul", 1.8),
    _c("TW", "Taiwan", Region.ASIA_OTHER, 1.5, [
        ("Taipei", 25.03, 121.57, 2.6),
    ], "Asia/Taipei", 1.3),
    _c("TH", "Thailand", Region.ASIA_OTHER, 1.5, [
        ("Bangkok", 13.76, 100.50, 8.3),
    ], "Asia/Bangkok", 0.6),
    _c("VN", "Vietnam", Region.ASIA_OTHER, 1.5, [
        ("Ho Chi Minh City", 10.82, 106.63, 8.4), ("Hanoi", 21.03, 105.85, 7.5),
    ], "Asia/Ho_Chi_Minh", 0.5),
    _c("ID", "Indonesia", Region.ASIA_OTHER, 1.8, [
        ("Jakarta", -6.21, 106.85, 10.6), ("Surabaya", -7.25, 112.75, 2.9),
    ], "Asia/Jakarta", 0.3),
    _c("MY", "Malaysia", Region.ASIA_OTHER, 1.0, [
        ("Kuala Lumpur", 3.14, 101.69, 1.8),
    ], "Asia/Kuala_Lumpur", 0.6),
    _c("PH", "Philippines", Region.ASIA_OTHER, 1.2, [
        ("Manila", 14.60, 120.98, 1.8), ("Cebu", 10.32, 123.89, 0.9),
    ], "Asia/Manila", 0.4),
    _c("SG", "Singapore", Region.ASIA_OTHER, 0.6, [
        ("Singapore", 1.35, 103.82, 5.6),
    ], "Asia/Singapore", 1.7),
    _c("IL", "Israel", Region.ASIA_OTHER, 0.8, [
        ("Tel Aviv", 32.09, 34.78, 0.4),
    ], "Asia/Jerusalem", 1.0),
    _c("SA", "Saudi Arabia", Region.ASIA_OTHER, 0.8, [
        ("Riyadh", 24.71, 46.68, 7.0),
    ], "Asia/Riyadh", 0.6),
    _c("AE", "United Arab Emirates", Region.ASIA_OTHER, 0.5, [
        ("Dubai", 25.20, 55.27, 3.3),
    ], "Asia/Dubai", 0.9),
    # --- Africa ---------------------------------------------------------------
    _c("ZA", "South Africa", Region.AFRICA, 1.0, [
        ("Johannesburg", -26.20, 28.05, 5.6), ("Cape Town", -33.92, 18.42, 4.6),
    ], "Africa/Johannesburg", 0.4),
    _c("EG", "Egypt", Region.AFRICA, 1.0, [
        ("Cairo", 30.04, 31.24, 9.5),
    ], "Africa/Cairo", 0.3),
    _c("NG", "Nigeria", Region.AFRICA, 0.8, [
        ("Lagos", 6.52, 3.38, 14.9),
    ], "Africa/Lagos", 0.2),
    _c("MA", "Morocco", Region.AFRICA, 0.6, [
        ("Casablanca", 33.57, -7.59, 3.4),
    ], "Africa/Casablanca", 0.4),
    _c("KE", "Kenya", Region.AFRICA, 0.4, [
        ("Nairobi", -1.29, 36.82, 4.4),
    ], "Africa/Nairobi", 0.3),
    # --- Oceania ----------------------------------------------------------------
    _c("AU", "Australia", Region.OCEANIA, 1.8, [
        ("Sydney", -33.87, 151.21, 5.3), ("Melbourne", -37.81, 144.96, 5.0),
        ("Perth", -31.95, 115.86, 2.1),
    ], "Australia/Sydney", 0.8),
    _c("NZ", "New Zealand", Region.OCEANIA, 0.5, [
        ("Auckland", -36.85, 174.76, 1.6),
    ], "Pacific/Auckland", 0.8),
)
