"""Corporate LAN sites: same-building peers with a fast local network.

Paper §5.3: "Another potential benefit of a large peer population is that
downloading peers might find a copy of the requested content within their
local network, e.g., in a corporate LAN.  In October 2012 this case appears
to have been rare, but this could change, e.g., when NetSession is used to
distribute large software updates."

A :class:`LanSite` groups peers that share a switch: transfers between two
members traverse the site's internal capacity instead of both members'
broadband access links, so one office download can seed the whole building
at LAN speed.  Peer selection treats same-site peers as the most specific
locality level of all.
"""

from __future__ import annotations

from repro.net.flows import Resource
from repro.net.links import mbps

__all__ = ["LanSite"]


class LanSite:
    """One corporate/campus LAN: an id plus shared internal capacity."""

    def __init__(self, site_id: str, *, internal_gbps: float = 1.0):
        if internal_gbps <= 0:
            raise ValueError("internal capacity must be positive")
        self.site_id = site_id
        #: Shared switch capacity for all intra-site transfers.
        self.switch = Resource(f"lan:{site_id}", mbps(internal_gbps * 1000.0))
        self.member_guids: set[str] = set()

    def add_member(self, guid: str) -> None:
        """Record a peer as belonging to this site."""
        self.member_guids.add(guid)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LanSite {self.site_id} members={len(self.member_guids)}>"
