"""Access-link models: asymmetric residential broadband and edge capacity.

The paper attributes the peer-assisted speed gap (Figure 4) to the asymmetry
of residential broadband — fast downstream, slow upstream [Dischinger et al.,
IMC 2007].  We model each peer's access link as a pair of
:class:`~repro.net.flows.Resource` objects (one per direction) whose
capacities are sampled from a tiered broadband distribution, and each edge
server as a single high-capacity egress resource.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.flows import Resource

__all__ = ["AccessLink", "BroadbandTier", "BroadbandModel", "EdgeCapacityModel",
           "DEFAULT_BROADBAND_TIERS", "mbps"]


def mbps(value: float) -> float:
    """Convert megabits/second to the bytes/second used by the flow model."""
    return value * 1e6 / 8.0


@dataclass(frozen=True)
class BroadbandTier:
    """One access-technology tier in the broadband mix.

    ``down_mbps``/``up_mbps`` are (low, high) ranges sampled log-uniformly,
    which matches the long-tailed speed distributions seen in residential
    measurements better than a uniform draw.
    """

    name: str
    weight: float
    down_mbps: tuple[float, float]
    up_mbps: tuple[float, float]


#: A broadband mix loosely calibrated to the 2012-era populations the paper
#: measured: a DSL bulk, a cable middle class, a fast-fiber minority, and a
#: slow long tail (mobile/legacy links).  Asymmetry ratios of roughly 4-20x
#: reproduce the upstream bottleneck that shapes Figures 4-6.
DEFAULT_BROADBAND_TIERS: tuple[BroadbandTier, ...] = (
    BroadbandTier("dsl", 0.40, (2.0, 16.0), (0.4, 1.5)),
    BroadbandTier("cable", 0.35, (8.0, 50.0), (1.0, 5.0)),
    BroadbandTier("fiber", 0.10, (50.0, 200.0), (10.0, 100.0)),
    BroadbandTier("slow", 0.15, (0.5, 2.0), (0.1, 0.5)),
)


@dataclass
class AccessLink:
    """A peer's access link: one Resource per direction plus tier metadata."""

    downlink: Resource
    uplink: Resource
    tier: str
    #: While a fault degrades this link, the original (down, up) capacities
    #: in bytes/second; None when the link is healthy.
    pre_degradation: tuple[float, float] | None = None

    @property
    def down_bps(self) -> float:
        """Downstream capacity in bytes/second."""
        assert self.downlink.capacity is not None
        return self.downlink.capacity

    @property
    def up_bps(self) -> float:
        """Upstream capacity in bytes/second."""
        assert self.uplink.capacity is not None
        return self.uplink.capacity

    @property
    def asymmetry(self) -> float:
        """Downstream/upstream capacity ratio."""
        return self.down_bps / self.up_bps

    @property
    def degraded(self) -> bool:
        """Is a fault currently degrading this link?"""
        return self.pre_degradation is not None

    def degrade(self, flows, down_factor: float, up_factor: float) -> bool:
        """Scale both directions down (brownout, congestion, line fault).

        In-flight flows are re-allocated at the reduced capacity.  Returns
        False (and does nothing) if the link is already degraded — faults do
        not stack, which keeps apply/revert symmetric.
        """
        if not 0 < down_factor <= 1.0 or not 0 < up_factor <= 1.0:
            raise ValueError(
                f"degradation factors must be in (0, 1], got {down_factor}/{up_factor}"
            )
        if self.degraded:
            return False
        self.pre_degradation = (self.down_bps, self.up_bps)
        # Both directions drop at the same instant: settle once.
        with flows.batch():
            flows.set_resource_capacity(self.downlink, max(1.0, self.down_bps * down_factor))
            flows.set_resource_capacity(self.uplink, max(1.0, self.up_bps * up_factor))
        return True

    def restore(self, flows) -> bool:
        """Undo :meth:`degrade`, re-allocating flows at full capacity."""
        if self.pre_degradation is None:
            return False
        down, up = self.pre_degradation
        self.pre_degradation = None
        with flows.batch():
            flows.set_resource_capacity(self.downlink, down)
            flows.set_resource_capacity(self.uplink, up)
        return True


class BroadbandModel:
    """Samples peer access links from a weighted tier mix.

    Country-level speed multipliers let the population layer give, say,
    fiber-heavy countries faster links — which the paper's Figure 4 exploits
    by comparing two specific large ASes.
    """

    def __init__(
        self,
        rng: random.Random,
        tiers: tuple[BroadbandTier, ...] = DEFAULT_BROADBAND_TIERS,
    ):
        if not tiers:
            raise ValueError("broadband model needs at least one tier")
        total = sum(t.weight for t in tiers)
        if total <= 0:
            raise ValueError("tier weights must sum to a positive value")
        self._rng = rng
        self._tiers = tiers
        self._weights = [t.weight / total for t in tiers]

    def sample(self, owner: str, speed_multiplier: float = 1.0) -> AccessLink:
        """Draw an access link for peer ``owner``.

        ``speed_multiplier`` scales both directions (used for per-country or
        per-AS speed differences).
        """
        if speed_multiplier <= 0:
            raise ValueError(f"speed multiplier must be positive, got {speed_multiplier}")
        tier = self._rng.choices(self._tiers, weights=self._weights, k=1)[0]
        down = _log_uniform(self._rng, *tier.down_mbps) * speed_multiplier
        up = _log_uniform(self._rng, *tier.up_mbps) * speed_multiplier
        # Upstream never exceeds downstream on residential links.
        up = min(up, down)
        return AccessLink(
            downlink=Resource(f"{owner}/down", mbps(down)),
            uplink=Resource(f"{owner}/up", mbps(up)),
            tier=tier.name,
        )


class EdgeCapacityModel:
    """Creates egress-capacity resources for edge servers.

    Akamai edge servers are well provisioned; the default of 10 Gbit/s per
    server means the infrastructure is effectively never the bottleneck for
    an individual download — matching the paper's observation that edge-only
    downloads run at client line rate.
    """

    def __init__(self, egress_mbps: float = 10_000.0):
        if egress_mbps <= 0:
            raise ValueError(f"edge egress must be positive, got {egress_mbps}")
        self.egress_mbps = egress_mbps

    def make_resource(self, server_name: str) -> Resource:
        """Create the egress Resource for one edge server."""
        return Resource(f"edge:{server_name}/egress", mbps(self.egress_mbps))


def _log_uniform(rng: random.Random, low: float, high: float) -> float:
    """Sample log-uniformly from [low, high]."""
    import math

    if low <= 0 or high < low:
        raise ValueError(f"invalid log-uniform range [{low}, {high}]")
    if high == low:
        return low
    return math.exp(rng.uniform(math.log(low), math.log(high)))
