"""NAT taxonomy, STUN-style classification, and traversal compatibility.

The paper notes (§3.7) that NAT hole punching is "a complex issue" consuming
a large fraction of the NetSession codebase, and that the database nodes
select only peers "that are likely to be able to establish a connection with
each other, e.g., based on the type of their NAT or firewall".

We model the classic STUN taxonomy (RFC 3489/5389 behaviours).  The control
plane coordinates connection establishment over the peers' persistent TCP
connections — so the compatibility matrix below assumes *coordinated,
simultaneous* hole punching, which succeeds for all pairings except those
involving symmetric NATs on both (or one plus a port-restricted) side, and
never when a peer's firewall blocks p2p entirely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

__all__ = ["NATType", "NATProfile", "NATModel", "can_connect", "DEFAULT_NAT_MIX"]


class NATType(Enum):
    """STUN-style NAT/firewall classification for a peer."""

    OPEN = "open"                      # public IP, no NAT
    FULL_CONE = "full_cone"
    RESTRICTED_CONE = "restricted_cone"
    PORT_RESTRICTED = "port_restricted"
    SYMMETRIC = "symmetric"
    BLOCKED = "blocked"                # firewall drops all unsolicited/p2p


#: Pairwise hole-punch success (with control-plane coordination).  The matrix
#: is symmetric; entries omitted here are True.
_INCOMPATIBLE: frozenset[frozenset[NATType]] = frozenset(
    frozenset(pair)
    for pair in [
        (NATType.SYMMETRIC, NATType.SYMMETRIC),
        (NATType.SYMMETRIC, NATType.PORT_RESTRICTED),
    ]
)


def can_connect(a: "NATType", b: "NATType") -> bool:
    """Can peers behind NAT types ``a`` and ``b`` establish a connection?

    Assumes the control plane coordinates a simultaneous open on both sides
    (paper §3.6: "these persistent TCP connections are also used to tell
    peers to connect to each other").
    """
    if a is NATType.BLOCKED or b is NATType.BLOCKED:
        return False
    return frozenset((a, b)) not in _INCOMPATIBLE


#: NAT-type mix for a 2012-era residential population.  Symmetric NATs and
#: blocked firewalls are the minority but large enough that connectivity-aware
#: selection visibly matters.
DEFAULT_NAT_MIX: dict[NATType, float] = {
    NATType.OPEN: 0.12,
    NATType.FULL_CONE: 0.18,
    NATType.RESTRICTED_CONE: 0.22,
    NATType.PORT_RESTRICTED: 0.33,
    NATType.SYMMETRIC: 0.10,
    NATType.BLOCKED: 0.05,
}


@dataclass
class NATProfile:
    """A peer's connectivity details, as stored by the database nodes.

    ``reported_type`` is what STUN probing concluded; it can differ from
    ``true_type`` with a small probability, modelling the real-world
    classification noise that makes some "compatible" connection attempts
    fail anyway.
    """

    true_type: NATType
    reported_type: NATType

    @property
    def misclassified(self) -> bool:
        """True if STUN got this peer's NAT type wrong."""
        return self.true_type is not self.reported_type


class NATModel:
    """Samples NAT profiles and runs STUN-style classification."""

    def __init__(
        self,
        rng: random.Random,
        mix: dict[NATType, float] | None = None,
        misclassify_prob: float = 0.02,
    ):
        self._rng = rng
        self._mix = dict(DEFAULT_NAT_MIX if mix is None else mix)
        total = sum(self._mix.values())
        if total <= 0:
            raise ValueError("NAT mix weights must sum to a positive value")
        if not 0.0 <= misclassify_prob < 1.0:
            raise ValueError(f"misclassify_prob out of range: {misclassify_prob}")
        self._types = list(self._mix.keys())
        self._weights = [self._mix[t] / total for t in self._types]
        self.misclassify_prob = misclassify_prob

    def sample(self, rng: random.Random | None = None) -> NATProfile:
        """Draw a peer's NAT profile (true type + STUN-reported type).

        ``rng`` overrides the model's own stream — the fault-injection layer
        passes a per-fault RNG so rebind storms are reproducible without
        perturbing the population's draw sequence.
        """
        rng = self._rng if rng is None else rng
        true_type = rng.choices(self._types, weights=self._weights, k=1)[0]
        reported = true_type
        if rng.random() < self.misclassify_prob:
            others = [t for t in self._types if t is not true_type]
            reported = rng.choice(others)
        return NATProfile(true_type=true_type, reported_type=reported)

    def rebind(self, profile: NATProfile, rng: random.Random) -> NATProfile:
        """Model a NAT rebind: the middlebox re-assigns this peer's mapping.

        CPE reboots and carrier-grade NAT churn can change a peer's
        effective NAT behaviour mid-session; the directory keeps the stale
        reported type until the peer's next registration refresh.  Returns a
        fresh profile drawn from the same mix (possibly the same types).
        """
        return self.sample(rng=rng)

    def classify(self, profile: NATProfile) -> NATType:
        """Run a (repeat) STUN probe: returns the reported type."""
        return profile.reported_type
