"""Discrete-event simulation engine.

The whole reproduction runs on simulated time: the control plane, the edge
servers, the peers, and the fluid bandwidth model are all driven by a single
:class:`Simulator` event loop.  The engine is intentionally small — a binary
heap of timestamped callbacks plus a handful of conveniences (recurring
timers, cancellable events, a monotonic tiebreaker so same-time events fire
in scheduling order).

The heap holds plain ``(time, seq, event)`` tuples — the hot loop pushes and
pops millions of entries per run, and tuple comparison is several times
cheaper than a ``dataclass(order=True)`` wrapper.  Post-event hooks let the
flow network settle batched rate mutations at every event boundary (see
:mod:`repro.net.flows`), and cheap counters (events processed, heap pushes,
stale pops) feed the perf observability surface.

Time is a ``float`` number of seconds since the start of the simulated trace.
Nothing in the engine knows about wall-clock dates; the workload layer maps
simulated seconds onto calendar days when it needs diurnal patterns.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be cancelled
    with :meth:`cancel`.  A cancelled event stays in the heap but is skipped
    when popped; this makes cancellation O(1).
    """

    __slots__ = ("time", "callback", "cancelled", "fired", "_sim")

    def __init__(self, time: float, callback: Callable[[], None]):
        self.time = time
        self.callback = callback
        self.cancelled = False
        self.fired = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; no-op if already fired."""
        if not (self.cancelled or self.fired) and self._sim is not None:
            self._sim._live -= 1
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<Event t={self.time:.3f} {state}>"


class Simulator:
    """A minimal discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._in_event = False
        self._live = 0  # pending (not-fired, not-cancelled) queued events
        self._post_event_hooks: list[Callable[[], None]] = []
        self._audit_hook: Optional[Callable[[], None]] = None
        self._audit_every = 0
        self._audit_countdown = 0
        self.events_processed = 0
        self.heap_pushes = 0
        self.stale_pops = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def in_event(self) -> bool:
        """True while an event callback is executing."""
        return self._in_event

    def add_post_event_hook(self, hook: Callable[[], None]) -> None:
        """Register ``hook`` to run after every event callback.

        Hooks run in registration order, after the callback returns and
        before the next event is popped — the flow network uses this to
        settle each event's batched rate mutations at the event boundary.
        """
        self._post_event_hooks.append(hook)

    def set_audit_hook(self, hook: Callable[[], None], *, every_events: int) -> None:
        """Register ``hook`` to run every ``every_events`` processed events.

        Unlike a recurring timer, the audit hook lives outside the event
        queue: it consumes no heap slots, draws no randomness, and runs
        *after* the post-event hooks, so the flow network has already
        settled the event's batched rate mutations when it fires.  That
        keeps fixed-seed runs byte-identical whether auditing is on or off.
        Exceptions raised by the hook propagate out of :meth:`run` (strict
        invariant mode relies on this).
        """
        if every_events <= 0:
            raise SimulationError(
                f"audit cadence must be positive, got {every_events}"
            )
        self._audit_hook = hook
        self._audit_every = every_events
        self._audit_countdown = every_events

    def clear_audit_hook(self) -> None:
        """Remove the audit hook installed by :meth:`set_audit_hook`."""
        self._audit_hook = None
        self._audit_every = 0
        self._audit_countdown = 0

    def _push(self, time: float, event: Event) -> None:
        heapq.heappush(self._queue, (time, next(self._seq), event))
        self._live += 1
        self.heap_pushes += 1

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay schedules the callback
        to run after the currently executing event (same timestamp).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.3f}s in the past")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.3f} (now is t={self._now:.3f})"
            )
        event = Event(time, callback)
        event._sim = self
        self._push(time, event)
        return event

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        first_delay: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Event:
        """Schedule ``callback`` to run every ``interval`` seconds.

        Returns the Event for the *next* occurrence; cancelling it stops the
        recurrence.  The same Event object is reused for each tick so a held
        reference stays valid across occurrences.
        """
        if interval <= 0:
            raise SimulationError(f"recurring interval must be positive, got {interval}")
        delay = interval if first_delay is None else first_delay

        event = Event(self._now + delay, lambda: None)
        event._sim = self

        def tick() -> None:
            callback()
            next_time = self._now + interval
            if until is not None and next_time > until:
                return
            if event.cancelled:
                return
            event.time = next_time
            event.fired = False
            self._push(next_time, event)

        event.callback = tick
        self._push(event.time, event)
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in timestamp order.

        Stops when the queue is empty, when the next event is later than
        ``until``, after ``max_events`` events, or when :meth:`stop` is
        called from within a callback.  When ``until`` is given, the clock
        is advanced to ``until`` even if no event lands exactly there.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        processed = 0
        queue = self._queue
        hooks = self._post_event_hooks
        try:
            while queue:
                if self._stopped:
                    break
                if max_events is not None and processed >= max_events:
                    break
                time, _seq, event = queue[0]
                if until is not None and time > until:
                    break
                heapq.heappop(queue)
                if event.cancelled or event.fired:
                    self.stale_pops += 1
                    continue
                self._now = time
                event.fired = True
                self._live -= 1
                self._in_event = True
                try:
                    event.callback()
                finally:
                    self._in_event = False
                for hook in hooks:
                    hook()
                processed += 1
                self.events_processed += 1
                if self._audit_every:
                    self._audit_countdown -= 1
                    if self._audit_countdown <= 0:
                        self._audit_countdown = self._audit_every
                        self._audit_hook()
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def pending_count(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue.

        O(1): maintained as a live counter on schedule/fire/cancel instead
        of scanning the heap (monitoring paths poll this).
        """
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.3f} queued={len(self._queue)}>"
