"""Autonomous systems, network regions, and the inter-AS graph.

Three pieces of the paper depend on network structure:

* **Peer selection** (§3.7) groups peers into nested locality sets — world,
  large geographic region, smaller region, and specific AS — and the control
  plane itself is partitioned into fewer than 20 *network regions*.
* **The ISP analysis** (§6.1) aggregates peer-to-peer traffic per AS and per
  AS pair, and uses CAIDA topology data to estimate which heavy uploaders
  are directly connected.
* **Figure 9(c)** relates the number of IPs observed in an AS to how much it
  uploads.

We synthesise an AS-level topology: every country hosts a handful of
"eyeball" ASes sized by a Zipf-like weight, plus regional transit ASes and a
small global tier-1 clique, wired in networkx with customer-provider and
peering edges (our CAIDA substitute).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import networkx as nx

from repro.net.geo import World, Country

__all__ = ["AutonomousSystem", "ASTopology", "build_topology"]


@dataclass(frozen=True)
class AutonomousSystem:
    """One AS in the synthetic Internet."""

    asn: int
    name: str
    country_code: str
    region: str           # geographic region (Table 2 regions)
    network_region: str   # control-plane region (paper: <20 of these)
    kind: str             # "eyeball" | "transit" | "tier1"
    size_weight: float    # relative share of the country's peers


class ASTopology:
    """The synthetic AS-level Internet.

    Holds the AS inventory, the per-country eyeball-AS weights used when
    placing peers, and the inter-AS connectivity graph used by the Figure 11
    analysis ("were these two heavy uploaders directly connected?").
    """

    def __init__(self, ases: list[AutonomousSystem], graph: nx.Graph):
        if not ases:
            raise ValueError("topology needs at least one AS")
        self.ases = list(ases)
        self.by_asn = {a.asn: a for a in ases}
        if len(self.by_asn) != len(ases):
            raise ValueError("duplicate ASNs in topology")
        self.graph = graph
        self._eyeballs_by_country: dict[str, list[AutonomousSystem]] = {}
        for a in ases:
            if a.kind == "eyeball":
                self._eyeballs_by_country.setdefault(a.country_code, []).append(a)

    def eyeball_ases(self, country_code: str) -> list[AutonomousSystem]:
        """Eyeball (access) ASes serving a country."""
        return self._eyeballs_by_country.get(country_code, [])

    def sample_as(self, country_code: str, rng: random.Random) -> AutonomousSystem:
        """Pick the AS a new peer in ``country_code`` attaches to."""
        candidates = self.eyeball_ases(country_code)
        if not candidates:
            raise KeyError(f"no eyeball ASes for country {country_code!r}")
        weights = [a.size_weight for a in candidates]
        return rng.choices(candidates, weights=weights, k=1)[0]

    def directly_connected(self, asn_a: int, asn_b: int) -> bool:
        """True if the two ASes share an edge in the inter-AS graph."""
        return self.graph.has_edge(asn_a, asn_b)

    def network_regions(self) -> list[str]:
        """Distinct control-plane network regions, sorted."""
        return sorted({a.network_region for a in self.ases})

    def __len__(self) -> int:
        return len(self.ases)


#: Map from geographic region to control-plane network region.  The paper
#: says the deployment has fewer than 20 network regions defined by proximity
#: to server groups; we use one per geographic super-region plus splits for
#: the biggest ones, giving 12.
_NETWORK_REGION_OF = {
    "US East": "na-east",
    "US West": "na-west",
    "Americas Other": "latam",
    "Europe": "eu",
    "India": "in",
    "China": "cn",
    "Asia Other": "apac",
    "Africa": "emea-south",
    "Oceania": "oceania",
}

#: Optional per-country network-region splits for very dense regions.  The
#: production deployment subdivides dense areas, but at reproduction scale
#: splitting fragments the per-region directories without adding fidelity,
#: so the default is no splits (9 regions + backbone ≈ the paper's "<20").
_REGION_SPLITS: dict[str, str] = {}


def build_topology(
    world: World,
    rng: random.Random,
    *,
    eyeballs_per_weight: float = 0.7,
    min_eyeballs: int = 1,
    max_eyeballs: int = 12,
) -> ASTopology:
    """Synthesise an AS topology for ``world``.

    Each country gets ``~eyeballs_per_weight * peer_weight`` eyeball ASes
    (clamped), with Zipf-distributed size weights — real countries have one
    or two dominant ISPs and a tail of small ones, which is what makes the
    paper's "two largest ASes" (Figure 4) meaningful.  Regional transit ASes
    aggregate the eyeballs; a tier-1 clique interconnects the regions.
    """
    ases: list[AutonomousSystem] = []
    graph = nx.Graph()
    next_asn = 1000

    # Global tier-1 clique.
    tier1: list[AutonomousSystem] = []
    for i in range(6):
        a = AutonomousSystem(
            asn=next_asn, name=f"Tier1-{i}", country_code="US",
            region="US East", network_region="backbone", kind="tier1",
            size_weight=0.0,
        )
        next_asn += 1
        tier1.append(a)
        ases.append(a)
        graph.add_node(a.asn)
    for i, a in enumerate(tier1):
        for b in tier1[i + 1:]:
            graph.add_edge(a.asn, b.asn, relation="peer")

    # One transit AS per network region, multihomed to two tier-1s.
    transits: dict[str, AutonomousSystem] = {}
    for region in sorted(set(_NETWORK_REGION_OF.values()) | set(_REGION_SPLITS.values())):
        a = AutonomousSystem(
            asn=next_asn, name=f"Transit-{region}", country_code="--",
            region="Europe", network_region=region, kind="transit",
            size_weight=0.0,
        )
        next_asn += 1
        transits[region] = a
        ases.append(a)
        graph.add_node(a.asn)
        uplinks = rng.sample(tier1, 2)
        for up in uplinks:
            graph.add_edge(a.asn, up.asn, relation="customer")

    # Eyeball ASes per country.
    for country in world.countries:
        network_region = _REGION_SPLITS.get(
            country.code, _NETWORK_REGION_OF.get(country.region, "eu")
        )
        n_eyeballs = int(round(eyeballs_per_weight * max(country.peer_weight, 0.1)))
        n_eyeballs = max(min_eyeballs, min(max_eyeballs, n_eyeballs))
        for i in range(n_eyeballs):
            # Zipf-ish sizes: ISP #1 dominates, tail is small.
            size = 1.0 / (i + 1) ** 1.2
            a = AutonomousSystem(
                asn=next_asn,
                name=f"{country.code}-ISP-{i + 1}",
                country_code=country.code,
                region=country.region,
                network_region=network_region,
                kind="eyeball",
                size_weight=size,
            )
            next_asn += 1
            ases.append(a)
            graph.add_node(a.asn)
            # Every eyeball buys transit from its regional transit AS.
            graph.add_edge(a.asn, transits[network_region].asn, relation="customer")
            # Large eyeballs also peer directly with other large eyeballs in
            # the same network region (settlement-free peering).
            if i == 0:
                for other in ases:
                    if (
                        other.kind == "eyeball"
                        and other.network_region == network_region
                        and other.asn != a.asn
                        and other.name.endswith("ISP-1")
                        and rng.random() < 0.5
                    ):
                        graph.add_edge(a.asn, other.asn, relation="peer")

    return ASTopology(ases, graph)
