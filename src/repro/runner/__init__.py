"""repro.runner — deterministic process-parallel experiment orchestration.

Four pieces, layered:

* :mod:`~repro.runner.fingerprint` — content hashes for configs and code;
* :mod:`~repro.runner.artifact` — the picklable scenario projection that
  crosses process and disk boundaries;
* :mod:`~repro.runner.cache` — the on-disk, namespace-versioned result
  cache (``.repro-cache/``, managed by ``repro cache``);
* :mod:`~repro.runner.orchestrator` — fingerprint-deduplicated scheduling
  over a process pool, merging results in caller order;
* :mod:`~repro.runner.sharding` — region-sharded execution: factor one
  scenario per geographic region, fan out, merge, reconcile.

The contract, enforced by ``tests/runner/``: any pipeline built on this
package renders byte-identical output for ``--jobs 1`` and ``--jobs N``,
cold cache and warm.
"""

from repro.runner.artifact import (
    ScenarioArtifact, artifact_from_result, run_scenario_artifact,
)
from repro.runner.cache import DEFAULT_CACHE_DIR, CacheEntry, ResultCache
from repro.runner.fingerprint import (
    CACHE_SCHEMA_VERSION, cache_namespace, canonicalize, code_fingerprint,
    fingerprint_config,
)
from repro.runner.orchestrator import Orchestrator, default_jobs, parallel_map
from repro.runner.sharding import (
    merge_shard_artifacts, run_sharded_artifact, shard_configs,
)

__all__ = [
    "ScenarioArtifact", "artifact_from_result", "run_scenario_artifact",
    "CacheEntry", "ResultCache", "DEFAULT_CACHE_DIR",
    "CACHE_SCHEMA_VERSION", "cache_namespace", "canonicalize",
    "code_fingerprint", "fingerprint_config",
    "Orchestrator", "parallel_map", "default_jobs",
    "merge_shard_artifacts", "run_sharded_artifact", "shard_configs",
]
