"""The portable scenario result: what crosses process and disk boundaries.

A live :class:`~repro.workload.scenario.ScenarioResult` drags the whole
simulated system behind it — an event heap full of closures, peers wired
to control channels, an auditor holding checker callbacks.  None of that
survives :mod:`pickle`, and none of it is what the analysis layer reads.

:class:`ScenarioArtifact` is the closed, picklable projection the
experiments actually consume: the trace (:class:`LogStore`), the geo
database, topology and world, the end-of-run perf/robustness counters
(:class:`~repro.core.system.SystemStats`), the censuses, and the fault
timeline/recovery gauges.  Workers build artifacts; the orchestrator
ships them over the process pool and persists them in the result cache;
every table and figure renders from them byte-identically to an
in-process run.

:func:`run_scenario_artifact` is the process-pool entry point.  It is a
module-level function (picklable by reference) whose only input is the
:class:`ScenarioConfig` — every RNG inside :func:`run_scenario` is seeded
from the config alone, so a worker inherits nothing from its parent but
code.  The determinism test layer (``tests/runner/``) enforces that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.logstore import LogStore
from repro.core.system import SystemStats
from repro.faults.metrics import FaultRecovery, adversary_metrics
from repro.net.geo import GeoDatabase, World
from repro.net.topology import ASTopology
from repro.runner.fingerprint import fingerprint_config
from repro.workload.scenario import ScenarioConfig, ScenarioResult, run_scenario

__all__ = ["ScenarioArtifact", "artifact_from_result", "run_scenario_artifact"]


@dataclass
class ScenarioArtifact:
    """A finished scenario, reduced to its analysis-facing surface."""

    config: ScenarioConfig
    #: Content hash of ``config`` (see :mod:`repro.runner.fingerprint`).
    fingerprint: str
    #: The trace (downloads / logins / registrations).
    logstore: LogStore
    #: The EdgeScape-equivalent geolocation data set.
    geodb: GeoDatabase
    #: The synthetic AS-level topology (the CAIDA substitute).
    topology: ASTopology
    #: The synthetic world geography.
    world: World
    #: End-of-run perf, control-channel, and invariant counters.
    stats: SystemStats
    mobility_census: dict[str, int] = field(default_factory=dict)
    cloning_census: dict[str, int] = field(default_factory=dict)
    finalized_downloads: int = 0
    #: §3.8 recovery gauges, in fault-schedule order (empty if fault-free).
    recoveries: tuple[FaultRecovery, ...] = ()
    #: Injection timeline, already rendered (one line per apply/revert).
    timeline: tuple[str, ...] = ()
    #: Recorded invariant violations, as dicts (see
    #: :meth:`repro.invariants.InvariantViolation.as_dict`).
    violations: tuple[dict, ...] = ()
    #: Adversarial-defense outcome vs. ground truth (see
    #: :func:`repro.faults.metrics.adversary_metrics`); {} for honest,
    #: defenseless runs.
    adversary: dict = field(default_factory=dict)
    #: Region-shard record for sharded runs (see
    #: :mod:`repro.runner.sharding`): shard regions, resolved pool width,
    #: per-region peer counts, and — when ``reconcile`` is on — the
    #: cross-region reconciliation matrix.  {} for unsharded runs.
    sharding: dict = field(default_factory=dict)
    #: Device-tier record for tiered runs ({} without a device mix):
    #: ``census`` (class name -> install count) and ``classes``
    #: (guid -> class name, for per-class byte attribution).
    devices: dict = field(default_factory=dict)

    @property
    def invariants(self):
        """The end-of-run audit counters (`InvariantStats`)."""
        return self.stats.invariants

    def audit_report(self) -> dict:
        """Audit summary in the shape drill reports and ``repro audit`` use."""
        return {**self.invariants.as_dict(), "violations": list(self.violations)}

    def label(self) -> str:
        """Compact human identifier for perf tables and cache listings."""
        cfg = self.config
        return (f"seed={cfg.seed} peers={cfg.population.n_peers} "
                f"days={cfg.duration_days:g} fp={self.fingerprint[:12]}")


def artifact_from_result(
    result: ScenarioResult, fingerprint: str | None = None
) -> ScenarioArtifact:
    """Project a live :class:`ScenarioResult` onto its portable artifact."""
    injector = result.injector
    recoveries: tuple[FaultRecovery, ...] = ()
    timeline: tuple[str, ...] = ()
    if injector is not None:
        recoveries = tuple(
            injector.recoveries[spec.name]
            for spec in injector.specs if spec.name in injector.recoveries
        )
        timeline = tuple(str(event) for event in injector.timeline)
    return ScenarioArtifact(
        config=result.config,
        fingerprint=(fingerprint if fingerprint is not None
                     else fingerprint_config(result.config)),
        logstore=result.logstore,
        geodb=result.geodb,
        topology=result.topology,
        world=result.world,
        stats=result.system.stats(),
        mobility_census=result.mobility_census,
        cloning_census=result.cloning_census,
        finalized_downloads=result.finalized_downloads,
        recoveries=recoveries,
        timeline=timeline,
        violations=tuple(v.as_dict() for v in result.system.auditor.report()),
        adversary=adversary_metrics(result.system),
        devices=_device_record(result),
    )


def _device_record(result: ScenarioResult) -> dict:
    if result.config.population.device is None:
        return {}
    population = result.population
    return {
        "census": population.device_census(),
        "classes": population.device_classes(),
    }


def run_scenario_artifact(config: ScenarioConfig) -> ScenarioArtifact:
    """Worker entry point: run one scenario and return its artifact.

    Deterministic from ``config`` alone — :func:`run_scenario` seeds every
    RNG from the config, so the artifact is identical whether this runs in
    the parent process, a pool worker, or a worker with deliberately
    polluted global RNG state.

    A config with ``sharding`` set dispatches to the region sharder (see
    :mod:`repro.runner.sharding`), which factors the scenario per region,
    fans the sub-scenarios across its own pool, and merges — equally
    deterministic from the config alone.
    """
    if config.sharding is not None:
        from repro.runner.sharding import run_sharded_artifact

        return run_sharded_artifact(config)
    return artifact_from_result(run_scenario(config))
