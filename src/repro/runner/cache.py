"""On-disk scenario result cache (``.repro-cache/``).

Layout::

    .repro-cache/
        v1-<code fingerprint>/          # namespace: schema + code digest
            <fp[:2]>/<fp>.pkl           # pickled ScenarioArtifact
            <fp[:2]>/<fp>.json          # sidecar metadata

Every entry is namespaced by :func:`~repro.runner.fingerprint.cache_namespace`
— a schema version plus a digest of the ``repro`` package's own source — so
touching any code invalidates the whole namespace instead of risking stale
results.  Old namespaces linger on disk (a checkout switching branches can
come back to them) until ``repro cache clear`` or eviction removes them.

The sidecar records a SHA-256 of the payload; :meth:`ResultCache.get`
verifies it on every read, so a corrupted or truncated entry degrades to a
cache miss instead of a wrong result.  Writes are atomic
(temp file + ``os.replace``), so a killed run never leaves a half-written
entry behind.  :meth:`ResultCache.prune` evicts least-recently-used entries
past the entry/byte budgets.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.runner.fingerprint import cache_namespace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.runner.artifact import ScenarioArtifact

__all__ = ["CacheEntry", "ResultCache", "DEFAULT_CACHE_DIR"]

#: Default cache root, relative to the working directory; override with
#: ``--cache-dir`` or the ``REPRO_CACHE_DIR`` environment variable.
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass(frozen=True)
class CacheEntry:
    """One listed cache entry (metadata only; the payload stays on disk)."""

    fingerprint: str
    namespace: str
    path: Path
    size: int
    created: float
    last_used: float
    label: str = ""

    @property
    def stale(self) -> bool:
        """True when the entry belongs to an old code/schema namespace."""
        return self.namespace != cache_namespace()


class ResultCache:
    """Fingerprint-keyed artifact store under a cache root directory."""

    def __init__(
        self,
        root: str | os.PathLike = DEFAULT_CACHE_DIR,
        *,
        namespace: Optional[str] = None,
        max_entries: int = 256,
        max_bytes: int = 4 << 30,
    ):
        self.root = Path(root)
        self.namespace = namespace if namespace is not None else cache_namespace()
        if max_entries <= 0 or max_bytes <= 0:
            raise ValueError("cache budgets must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes

    # ------------------------------------------------------------- layout

    @property
    def namespace_dir(self) -> Path:
        return self.root / self.namespace

    def _payload_path(self, fingerprint: str) -> Path:
        return self.namespace_dir / fingerprint[:2] / f"{fingerprint}.pkl"

    def _meta_path(self, fingerprint: str) -> Path:
        return self.namespace_dir / fingerprint[:2] / f"{fingerprint}.json"

    # ------------------------------------------------------------ get/put

    def get(self, fingerprint: str) -> Optional["ScenarioArtifact"]:
        """Load an artifact, or None on miss/corruption (miss-equivalent)."""
        payload_path = self._payload_path(fingerprint)
        meta_path = self._meta_path(fingerprint)
        try:
            payload = payload_path.read_bytes()
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError):
            return None
        if hashlib.sha256(payload).hexdigest() != meta.get("sha256"):
            # Corrupted entry: drop it so the slot is rebuilt, not re-read.
            self._remove(fingerprint)
            return None
        try:
            artifact = pickle.loads(payload)
        except Exception:
            self._remove(fingerprint)
            return None
        meta["last_used"] = time.time()
        self._write_atomic(meta_path, json.dumps(meta).encode("utf-8"))
        return artifact

    def put(self, fingerprint: str, artifact: "ScenarioArtifact") -> Path:
        """Persist an artifact and prune past the budgets."""
        payload = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
        now = time.time()
        meta = {
            "fingerprint": fingerprint,
            "namespace": self.namespace,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "bytes": len(payload),
            "created": now,
            "last_used": now,
            "label": artifact.label(),
        }
        payload_path = self._payload_path(fingerprint)
        payload_path.parent.mkdir(parents=True, exist_ok=True)
        self._write_atomic(payload_path, payload)
        self._write_atomic(self._meta_path(fingerprint),
                           json.dumps(meta, sort_keys=True).encode("utf-8"))
        self.prune()
        return payload_path

    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def _remove(self, fingerprint: str) -> None:
        for path in (self._payload_path(fingerprint),
                     self._meta_path(fingerprint)):
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------ introspection

    def entries(self, *, all_namespaces: bool = False) -> list[CacheEntry]:
        """List entries, oldest-used first (stable for eviction and `ls`)."""
        out: list[CacheEntry] = []
        if not self.root.is_dir():
            return out
        namespaces = (
            sorted(p.name for p in self.root.iterdir() if p.is_dir())
            if all_namespaces else [self.namespace]
        )
        for ns in namespaces:
            for meta_path in sorted((self.root / ns).glob("*/*.json")):
                try:
                    meta = json.loads(meta_path.read_text())
                except (OSError, ValueError):
                    continue
                fp = meta.get("fingerprint", meta_path.stem)
                payload = meta_path.with_suffix(".pkl")
                out.append(CacheEntry(
                    fingerprint=fp,
                    namespace=ns,
                    path=payload,
                    size=int(meta.get("bytes", 0)),
                    created=float(meta.get("created", 0.0)),
                    last_used=float(meta.get("last_used", 0.0)),
                    label=str(meta.get("label", "")),
                ))
        out.sort(key=lambda e: (e.last_used, e.fingerprint))
        return out

    def verify(self, *, all_namespaces: bool = False) -> list[tuple[str, str]]:
        """Check every entry's payload against its recorded digest.

        Returns ``(fingerprint, problem)`` pairs; an empty list means the
        cache is sound.  Detects truncation, bit rot, missing payloads,
        and unreadable pickles without deleting anything.
        """
        problems: list[tuple[str, str]] = []
        for entry in self.entries(all_namespaces=all_namespaces):
            meta_path = entry.path.with_suffix(".json")
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError):
                problems.append((entry.fingerprint, "unreadable metadata"))
                continue
            try:
                payload = entry.path.read_bytes()
            except OSError:
                problems.append((entry.fingerprint, "missing payload"))
                continue
            if hashlib.sha256(payload).hexdigest() != meta.get("sha256"):
                problems.append((entry.fingerprint, "digest mismatch"))
                continue
            try:
                pickle.loads(payload)
            except Exception:
                problems.append((entry.fingerprint, "unpicklable payload"))
        return problems

    # ---------------------------------------------------------- lifecycle

    def prune(self) -> int:
        """Evict least-recently-used entries past the budgets.

        Only the active namespace is pruned — stale namespaces are dead
        weight the user clears explicitly (or a branch switch revives).
        Returns the number of entries evicted.
        """
        entries = self.entries()
        evicted = 0
        total = sum(e.size for e in entries)
        while entries and (len(entries) > self.max_entries
                           or total > self.max_bytes):
            victim = entries.pop(0)  # oldest last_used first
            self._remove(victim.fingerprint)
            total -= victim.size
            evicted += 1
        return evicted

    def clear(self, *, all_namespaces: bool = True) -> int:
        """Delete cached entries; returns how many were removed."""
        removed = len(self.entries(all_namespaces=all_namespaces))
        if all_namespaces:
            if self.root.is_dir():
                shutil.rmtree(self.root)
        elif self.namespace_dir.is_dir():
            shutil.rmtree(self.namespace_dir)
        return removed
