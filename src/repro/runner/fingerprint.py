"""Stable content fingerprints for scenario configurations and code.

The orchestrator's correctness rests on one property: a fingerprint is a
pure function of *everything that can move a result byte*.  Two halves:

* :func:`fingerprint_config` hashes a :class:`ScenarioConfig` (or any
  dataclass tree) into a stable hex digest.  Canonicalization walks the
  dataclass recursively — field names, fully qualified class names (the
  fault schedule is polymorphic), deterministic float rendering, sorted
  dicts — and refuses anything it cannot make stable, so an unstable
  config field is a loud ``TypeError`` instead of a silent cache
  collision.  :class:`~repro.core.config.InvariantConfig`'s ``auto`` mode
  resolves through the ``REPRO_INVARIANTS`` environment variable at run
  time, so it is resolved *before* hashing — a strict-mode run never
  shares a cache entry with an observe-mode run.

* :func:`code_fingerprint` hashes the source of the ``repro`` package
  itself.  The on-disk cache namespaces entries by
  ``v<schema>-<code digest>`` (:func:`cache_namespace`), so any code
  change — a new field default, a fixed bug, a modelling tweak —
  invalidates every stale entry wholesale rather than risking a result
  computed by old code masquerading as fresh.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from functools import lru_cache
from pathlib import Path

__all__ = [
    "CACHE_SCHEMA_VERSION", "canonicalize", "fingerprint_config",
    "code_fingerprint", "cache_namespace",
]

#: Bump when the artifact schema or canonicalization rules change; old
#: cache namespaces become unreachable (and ``repro cache clear`` removable).
CACHE_SCHEMA_VERSION = 1


def _canonical_float(value: float) -> object:
    """Floats render via ``repr`` (shortest round-trip form, stable across
    platforms for IEEE doubles); integral floats collapse to ints so
    ``7`` and ``7.0`` — equal in every arithmetic the config feeds — hash
    identically."""
    if value != value or value in (float("inf"), float("-inf")):
        return repr(value)
    if float(value).is_integer():
        return int(value)
    return repr(value)


def canonicalize(obj: object) -> object:
    """Reduce ``obj`` to a JSON-serializable tree with deterministic order.

    Supports dataclasses (by field), mappings (key-sorted), sequences,
    sets (element-sorted), enums, and scalars.  Anything else raises
    ``TypeError`` — an unstable value must never be silently folded into
    a fingerprint.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        # ``auto`` invariant mode and ``auto`` kernel are env-var
        # indirections (REPRO_INVARIANTS / REPRO_KERNEL): resolve them so
        # the fingerprint captures the behaviour, not the indirection.
        resolve = getattr(obj, "resolve_mode", None)
        if "mode" in fields and callable(resolve):
            fields["mode"] = resolve()
        resolve_kernel = getattr(obj, "resolve_kernel", None)
        if "kernel" in fields and callable(resolve_kernel):
            fields["kernel"] = resolve_kernel()
        resolve_store = getattr(obj, "resolve_store", None)
        if "store" in fields and callable(resolve_store):
            fields["store"] = resolve_store()
        resolve_shards = getattr(obj, "resolve_shards", None)
        if "shards" in fields and callable(resolve_shards):
            fields["shards"] = resolve_shards()
        return {
            "__class__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": fields,
        }
    if isinstance(obj, enum.Enum):
        return {"__enum__": f"{type(obj).__module__}.{type(obj).__qualname__}",
                "name": obj.name}
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return _canonical_float(obj)
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    if isinstance(obj, dict):
        return {"__dict__": [
            [canonicalize(k), canonicalize(v)]
            for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        ]}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted((canonicalize(i) for i in obj), key=repr)}
    raise TypeError(
        f"cannot canonicalize {type(obj).__qualname__!r} for fingerprinting; "
        "add a stable representation before caching on it"
    )


def fingerprint_config(config: object) -> str:
    """A stable SHA-256 content hash of a configuration object."""
    payload = json.dumps(canonicalize(config), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``.py`` source file of the ``repro`` package.

    Computed once per process (the package does not change under a running
    interpreter).  Ordering is by package-relative path, so the digest is
    independent of filesystem iteration order.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def cache_namespace() -> str:
    """The cache directory name current code writes to and reads from."""
    return f"v{CACHE_SCHEMA_VERSION}-{code_fingerprint()[:16]}"
