"""Deterministic process-parallel scheduling of scenario runs.

One trace feeds ~20 tables and figures (the paper's shape), and studies,
fault drills, sweeps, and fuzz runs are all embarrassingly parallel over
*distinct* scenario configurations.  The orchestrator exploits that while
keeping the one property the reproduction cannot trade away: rendered
output is byte-identical regardless of job count.

How the guarantee holds:

* **Workers are pure.**  The pool entry point is
  :func:`~repro.runner.artifact.run_scenario_artifact`, whose only input
  is the config; every RNG is re-seeded from it, so a worker inherits
  nothing from parent-process state.
* **Scheduling is keyed by content.**  Configs are fingerprinted
  (:mod:`repro.runner.fingerprint`); duplicates collapse to one run no
  matter how many callers ask.
* **Merging is ordered by the caller, not the pool.**  Results return in
  submission order; completion order never leaks into output.

Layers above use two surfaces: :class:`Orchestrator` for cached scenario
runs, and :func:`parallel_map` for order-preserving fan-out of other pure
functions (fault drills, fuzz specs).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence, TypeVar

from repro.runner.artifact import ScenarioArtifact, run_scenario_artifact
from repro.runner.cache import ResultCache
from repro.runner.fingerprint import fingerprint_config

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.scenario import ScenarioConfig

__all__ = ["Orchestrator", "parallel_map", "default_jobs"]

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """The CLI's default ``--jobs``: every core the container grants."""
    return os.cpu_count() or 1


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    jobs: int = 1,
) -> list[R]:
    """Map a pure, picklable function over items, preserving input order.

    ``jobs <= 1`` (or a single item) runs in-process with no pool, which
    keeps tracebacks direct and avoids fork overhead for trivial batches.
    Results always come back in input order — the scheduling never shows.
    """
    items = list(items)
    jobs = max(1, min(jobs, len(items))) if items else 1
    if jobs == 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, items))


class Orchestrator:
    """Fingerprint-keyed scenario runner with memory + disk caching.

    Resolution order per config: in-memory memo → on-disk
    :class:`ResultCache` → run (in a process pool when ``jobs > 1`` and
    more than one distinct scenario misses).  Every resolved artifact
    lands back in both caches, so a warm study renders without running a
    single simulation.

    The memo dict can be shared (``memory=``) so a caller — the
    experiments layer — keeps one process-wide artifact store across
    reconfigurations, exactly like the old module-global ``_CACHE`` but
    keyed by content instead of ``(scale, seed)``.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        memory: Optional[dict[str, ScenarioArtifact]] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.memory: dict[str, ScenarioArtifact] = (
            memory if memory is not None else {}
        )

    # ------------------------------------------------------------ running

    def result(self, config: "ScenarioConfig") -> ScenarioArtifact:
        """Run (or fetch) one scenario."""
        return self.run_many([config])[0]

    def run_many(
        self, configs: Iterable["ScenarioConfig"]
    ) -> list[ScenarioArtifact]:
        """Resolve every config to an artifact, in input order.

        Duplicate configs (by fingerprint) are scheduled once.  Cache
        misses run across the process pool; hits never pay a fork.
        """
        configs = list(configs)
        fingerprints = [fingerprint_config(cfg) for cfg in configs]

        # Unique misses, in first-appearance order (deterministic).
        misses: dict[str, "ScenarioConfig"] = {}
        for fp, cfg in zip(fingerprints, configs):
            if fp in self.memory or fp in misses:
                continue
            if self.cache is not None:
                cached = self.cache.get(fp)
                if cached is not None:
                    self.memory[fp] = cached
                    continue
            misses[fp] = cfg

        if misses:
            artifacts = parallel_map(
                run_scenario_artifact, list(misses.values()), jobs=self.jobs
            )
            for fp, artifact in zip(misses, artifacts):
                if artifact.fingerprint != fp:  # pragma: no cover - sanity
                    raise RuntimeError(
                        f"worker fingerprint {artifact.fingerprint[:12]} != "
                        f"scheduled {fp[:12]}: non-deterministic config?"
                    )
                self.memory[fp] = artifact
                if self.cache is not None:
                    self.cache.put(fp, artifact)

        return [self.memory[fp] for fp in fingerprints]

    # ------------------------------------------------------- introspection

    def cached(self) -> dict[str, ScenarioArtifact]:
        """The artifacts resolved so far this process, fingerprint-keyed."""
        return dict(self.memory)
