"""Region-sharded scenario execution: factor, fan out, merge, reconcile.

One sharded run factors a :class:`~repro.workload.scenario.ScenarioConfig`
into per-geographic-region sub-scenarios (Table 2's regions), runs them
across the :func:`~repro.runner.orchestrator.parallel_map` process pool,
and merges the shard artifacts into one :class:`ScenarioArtifact`.

The decomposition is *always* per region — ``ShardingConfig.shards`` only
sets the pool width the region sub-scenarios fan out across — so
``shards=1`` and ``shards=4`` produce byte-identical merged artifacts by
construction: the same sub-scenarios run either way, each deterministic
from its own config, and the merge orders by sorted region name, never by
completion order.

How the factoring keeps a globally consistent address space:

* every worker rebuilds the **full** parent world and the **full** parent
  AS topology (both deterministic from the parent config), then runs its
  sub-scenario over a region-filtered :class:`~repro.net.geo.World` — so
  shard peers keep the AS numbers and IP prefixes they would have had in
  any other factoring;
* IPs are allocated from per-ASN counters and eyeball ASes belong to
  exactly one country (hence one region), so shard address pools are
  disjoint and the merged geo database is a plain union;
* peer GUIDs derive from shard-seeded RNG streams; the reconciliation
  pass *checks* disjointness rather than assuming it.

Population, demand, and VoD volumes are apportioned to regions by the
world's peer-weight shares using the largest-remainder method, so the
merged trace carries the same totals as an unsharded run of the parent
config (up to the documented at-least-one-download floor per region).

The merged artifact is a *different* (region-factored) trace than the
unsharded single trace — cross-region peer transfers cannot happen inside
a shard — which is why ``sharding`` is a cache key and the goldens pin the
unsharded trace.  The ``reconcile`` pass quantifies exactly that: it
records each region's peer/edge byte split and verifies zero cross-shard
GUID leakage, writing the import/export matrix to
``ScenarioArtifact.sharding``.

Fault schedules are rejected: a fault spec targets the global peer
universe (region partitions, CN outages), which a region factoring cannot
represent faithfully.
"""

from __future__ import annotations

import dataclasses
import random

from repro.analysis.logstore import LogStore
from repro.net.geo import GeoDatabase, World, build_core_world
from repro.net.topology import build_topology
from repro.runner.artifact import ScenarioArtifact, artifact_from_result
from repro.runner.fingerprint import fingerprint_config
from repro.runner.orchestrator import parallel_map
from repro.workload.scenario import ScenarioConfig, run_scenario

__all__ = [
    "apportion", "merge_shard_artifacts", "run_sharded_artifact",
    "shard_configs", "shard_seed",
]


# ------------------------------------------------------------- apportionment

def apportion(total: int, weights: list[float]) -> list[int]:
    """Split ``total`` into integer shares ∝ ``weights`` (largest remainder).

    Deterministic: ties in fractional remainder break by index.  The shares
    always sum to exactly ``total``.
    """
    if total < 0:
        raise ValueError("total must be >= 0")
    scale = sum(weights)
    if scale <= 0:
        raise ValueError("weights must have a positive sum")
    exact = [total * w / scale for w in weights]
    shares = [int(x) for x in exact]
    leftover = total - sum(shares)
    by_remainder = sorted(
        range(len(exact)), key=lambda i: (-(exact[i] - shares[i]), i)
    )
    for i in by_remainder[:leftover]:
        shares[i] += 1
    return shares


def _apportion_at_least_one(total: int, weights: list[float]) -> list[int]:
    """Like :func:`apportion` but every share gets at least 1.

    Needed for knobs whose config validation rejects zero (a region's
    demand generator needs at least one arrival).  When ``total`` is
    smaller than the region count the sum exceeds ``total`` — documented
    behaviour for degenerate tiny configs, irrelevant at any real scale.
    """
    n = len(weights)
    if total <= n:
        return [1] * n
    return [s + 1 for s in apportion(total - n, weights)]


def shard_seed(parent_seed: int, region: str) -> int:
    """The deterministic seed a region's sub-scenario runs under.

    String-seeded so it depends only on (parent seed, region name) — not
    on region order, shard width, or which pool worker picks it up.
    """
    return random.Random(f"repro-shard:{parent_seed}:{region}").getrandbits(63)


# ----------------------------------------------------------------- factoring

def shard_configs(cfg: ScenarioConfig) -> list[tuple[str, ScenarioConfig]]:
    """Factor a sharded config into its per-region sub-scenarios.

    Returns ``(region, sub_config)`` pairs in sorted region order.  Regions
    apportioned zero peers (possible only for tiny populations) are
    dropped, and their demand share flows to the surviving regions.
    """
    if cfg.sharding is None:
        raise ValueError("shard_configs needs a config with sharding set")
    if cfg.faults:
        raise ValueError(
            "sharded scenarios do not support fault schedules: fault specs "
            "target the global peer universe, which a region factoring "
            "cannot represent; run faults unsharded"
        )
    world = build_core_world(
        extra_territories=cfg.extra_territories, seed=cfg.seed
    )
    regions = sorted({c.region for c in world.countries})
    weights = [world.region_weight(r) for r in regions]
    peer_shares = apportion(cfg.population.n_peers, weights)
    kept = [
        (r, w, p) for r, w, p in zip(regions, weights, peer_shares) if p > 0
    ]
    if not kept:
        raise ValueError("population too small to shard: no region got a peer")
    regions = [r for r, _, _ in kept]
    weights = [w for _, w, _ in kept]
    peer_shares = [p for _, _, p in kept]

    demand = cfg.resolved_demand()
    download_shares = _apportion_at_least_one(demand.total_downloads, weights)
    cap_shares = (
        _apportion_at_least_one(cfg.population.active_peer_cap, weights)
        if cfg.population.active_peer_cap is not None else [None] * len(regions)
    )
    vod_shares = (
        apportion(cfg.vod.sessions, weights)
        if cfg.vod is not None else [None] * len(regions)
    )

    out: list[tuple[str, ScenarioConfig]] = []
    for region, n_peers, downloads, cap, vod_sessions in zip(
        regions, peer_shares, download_shares, cap_shares, vod_shares
    ):
        population = dataclasses.replace(
            cfg.population, n_peers=n_peers, active_peer_cap=cap
        )
        vod = (
            dataclasses.replace(cfg.vod, sessions=vod_sessions)
            if cfg.vod is not None else None
        )
        sub = dataclasses.replace(
            cfg,
            seed=shard_seed(cfg.seed, region),
            population=population,
            demand=dataclasses.replace(demand, total_downloads=downloads),
            vod=vod,
            sharding=None,
        )
        out.append((region, sub))
    return out


def _run_region_shard(payload: tuple) -> ScenarioArtifact:
    """Pool worker: run one region sub-scenario over the shared topology.

    Module-level (picklable by reference); everything it needs travels in
    the payload, and every RNG inside re-seeds from the configs alone, so
    the artifact is identical in-process or in any pool worker.
    """
    sub_cfg, region, parent_extra, parent_seed = payload
    full_world = build_core_world(
        extra_territories=parent_extra, seed=parent_seed
    )
    topology = build_topology(full_world, random.Random(parent_seed ^ 0x70_70))
    region_world = World(
        [c for c in full_world.countries if c.region == region]
    )
    result = run_scenario(sub_cfg, world=region_world, topology=topology)
    return artifact_from_result(result)


# ------------------------------------------------------------------- merging

def _merge_stats(stats_list):
    """Fieldwise merge of :class:`~repro.core.system.SystemStats` trees.

    Counters sum; ``now`` and ``max_component`` take the max (they are
    gauges, not totals); string fields (the resolved invariant mode) must
    agree across shards.
    """

    def merge(values, name):
        first = values[0]
        if dataclasses.is_dataclass(first) and not isinstance(first, type):
            return type(first)(**{
                f.name: merge([getattr(v, f.name) for v in values], f.name)
                for f in dataclasses.fields(first)
            })
        if isinstance(first, str):
            if any(v != first for v in values):
                raise ValueError(
                    f"shard stats disagree on {name!r}: {sorted(set(values))}")
            return first
        if isinstance(first, bool):
            return any(values)
        if isinstance(first, (int, float)):
            if name in ("now", "max_component"):
                return max(values)
            return sum(values)
        raise TypeError(
            f"cannot merge stats field {name!r} of type "
            f"{type(first).__qualname__}")

    return merge(list(stats_list), "stats")


def _merge_census(censuses: list[dict]) -> dict:
    """Key-wise sum, keys in first-appearance order (shards share the
    pattern vocabulary, so this is the schedule's own order)."""
    out: dict = {}
    for census in censuses:
        for key, value in census.items():
            out[key] = out.get(key, 0) + value
    return out


def _merge_devices(records: list[dict]) -> dict:
    """Sum the class censuses, union the guid->class maps."""
    present = [r for r in records if r]
    if not present:
        return {}
    return {
        "census": _merge_census([r["census"] for r in present]),
        "classes": {guid: name for r in present
                    for guid, name in r["classes"].items()},
    }


def _merge_adversary(metrics: list[dict]) -> dict:
    """Sum the counters, recompute the derived rate over the merged total."""
    present = [m for m in metrics if m]
    if not present:
        return {}
    out: dict = {}
    for m in present:
        for key, value in m.items():
            if key == "false_positive_ban_rate":
                continue
            out[key] = out.get(key, 0) + value
    quarantined = out.get("quarantined_peers", 0)
    out["false_positive_ban_rate"] = (
        out.get("false_positive_bans", 0) / quarantined if quarantined else 0.0
    )
    return out


def _reconcile(shards: list[tuple[str, ScenarioArtifact]]) -> dict:
    """The cross-region reconciliation pass: per-region byte matrix plus a
    checked shard-isolation invariant.

    Every download's uploaders must be GUIDs of the same shard — region
    factoring admits no cross-region peer transfer — and no GUID may appear
    in two shards (seed-derived GUID streams are disjoint by construction;
    this *checks* it).  ``cross_region_peer_bytes`` is therefore exactly
    the byte volume the factoring forgoes relative to a global swarm: zero
    from the shards themselves, quantified here so the merged artifact is
    honest about what it is.
    """
    per_region: dict[str, dict] = {}
    guid_home: dict[str, str] = {}
    overlap = 0
    cross_bytes = 0
    for region, art in shards:
        store = art.logstore
        local_guids = store.distinct_guids()
        for guid in local_guids:
            if guid_home.setdefault(guid, region) != region:
                overlap += 1
        for rec in store.downloads:
            for uploader, nbytes in rec.per_uploader_bytes.items():
                if uploader not in local_guids:
                    cross_bytes += nbytes
        per_region[region] = {
            "peers": art.stats.peers,
            "guids": len(local_guids),
            "downloads": len(store.downloads),
            "logins": len(store.logins),
            "peer_bytes": sum(r.peer_bytes for r in store.downloads),
            "edge_bytes": sum(r.edge_bytes for r in store.downloads),
        }
    if overlap:
        raise ValueError(
            f"shard isolation violated: {overlap} GUID(s) appear in more "
            "than one region shard")
    return {
        "per_region": per_region,
        "guid_overlap": overlap,
        "cross_region_peer_bytes": cross_bytes,
    }


def merge_shard_artifacts(
    cfg: ScenarioConfig, shards: list[tuple[str, ScenarioArtifact]]
) -> ScenarioArtifact:
    """Merge per-region shard artifacts into the parent's artifact.

    Order-canonical: shards merge in sorted region order regardless of the
    order given (or the order the pool finished them in).
    """
    shards = sorted(shards, key=lambda pair: pair[0])
    logstore = LogStore()
    geodb = GeoDatabase()
    timeline: list[str] = []
    violations: list[dict] = []
    for region, art in shards:
        logstore.downloads.extend(art.logstore.downloads)
        logstore.logins.extend(art.logstore.logins)
        logstore.registrations.extend(art.logstore.registrations)
        for ip, record in art.geodb._records.items():
            geodb.register(ip, record)
        timeline.extend(art.timeline)
        violations.extend(art.violations)

    sharding_record = {
        "regions": [region for region, _ in shards],
        "shards": cfg.sharding.resolve_shards(),
        "peers_per_region": {
            region: art.config.population.n_peers for region, art in shards
        },
    }
    if cfg.sharding.reconcile:
        sharding_record["reconcile"] = _reconcile(shards)

    # The merged artifact carries the *parent* config and fingerprint: it
    # is the answer to "run this sharded config", cached under that key.
    # Every shard ran over the same full parent topology, so any copy is
    # the merged one; the world is the full parent world.
    return ScenarioArtifact(
        config=cfg,
        fingerprint=fingerprint_config(cfg),
        logstore=logstore,
        geodb=geodb,
        topology=shards[0][1].topology,
        world=build_core_world(
            extra_territories=cfg.extra_territories, seed=cfg.seed
        ),
        stats=_merge_stats([art.stats for _, art in shards]),
        mobility_census=_merge_census(
            [art.mobility_census for _, art in shards]),
        cloning_census=_merge_census(
            [art.cloning_census for _, art in shards]),
        finalized_downloads=sum(
            art.finalized_downloads for _, art in shards),
        recoveries=(),
        timeline=tuple(timeline),
        violations=tuple(violations),
        adversary=_merge_adversary([art.adversary for _, art in shards]),
        sharding=sharding_record,
        devices=_merge_devices([art.devices for _, art in shards]),
    )


def run_sharded_artifact(cfg: ScenarioConfig) -> ScenarioArtifact:
    """Factor, fan out at the resolved width, merge, reconcile.

    The entry point :func:`repro.runner.artifact.run_scenario_artifact`
    dispatches here when ``config.sharding`` is set; callers never invoke
    this directly.
    """
    pairs = shard_configs(cfg)
    payloads = [
        (sub, region, cfg.extra_territories, cfg.seed)
        for region, sub in pairs
    ]
    width = cfg.sharding.resolve_shards()
    artifacts = parallel_map(_run_region_shard, payloads, jobs=width)
    return merge_shard_artifacts(
        cfg, [(region, art) for (region, _), art in zip(pairs, artifacts)]
    )
