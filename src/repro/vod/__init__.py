"""``repro.vod`` — the VoD streaming workload and serving-policy engine.

The paper notes NetSession "also supports video streaming" but measures
almost none of it (§3.4); this package opens that second workload axis.
It layers a catch-up-TV catalog (:mod:`~repro.vod.catalog`), prime-time
session arrivals with viewer behavior (:mod:`~repro.vod.demand`), and a
pluggable serving-policy engine (:mod:`~repro.vod.policy`) on the core
streaming engine, assembled by :func:`~repro.vod.engine.attach_vod`.

QoE and ISP-impact metrics for the resulting traces live in
:mod:`repro.analysis.qoe`; the policy sweep is ``exp_vod_policies``
(``python -m repro vod``).
"""

from repro.vod.catalog import (
    VOD_CP_CODE, Episode, Series, VodCatalog, build_vod_catalog,
)
from repro.vod.config import POLICY_NAMES, VodConfig
from repro.vod.demand import VodDemandGenerator, prime_time_rate
from repro.vod.engine import VodRuntime, attach_vod
from repro.vod.policy import (
    IspLocalOnlyPolicy, OffPeakPlacer, OffPeakPrefetchPolicy,
    PopularitySeedingPolicy, ServingPolicy, UnrestrictedPolicy, make_policy,
)

__all__ = [
    "VOD_CP_CODE", "POLICY_NAMES", "VodConfig",
    "Episode", "Series", "VodCatalog", "build_vod_catalog",
    "VodDemandGenerator", "prime_time_rate",
    "VodRuntime", "attach_vod",
    "ServingPolicy", "UnrestrictedPolicy", "IspLocalOnlyPolicy",
    "OffPeakPrefetchPolicy", "PopularitySeedingPolicy", "OffPeakPlacer",
    "make_policy",
]
