"""The catch-up-TV catalog: series, episodes, and decayed popularity.

A VoD service's catalog has structure a download catalog lacks: objects
come in series, every episode of a series shares an audience, and an
episode's popularity decays with its age — most catch-up viewing happens
in the first days after broadcast (the BBC iPlayer measurements that
motivated this subsystem).  The model here:

* series draw audiences from a Zipf over rank (hit shows dominate);
* episode ``j`` of a series was released ``(last - j) * spacing`` days
  before the trace starts, and its weight is the series weight times
  ``2**(-age_days / half_life)``.

Episodes are ordinary p2p-enabled :class:`~repro.core.content.ContentObject`
instances, so the swarm, control plane, and analyses treat them exactly
like any other published file.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.content import ContentObject, ContentProvider
from repro.vod.config import VodConfig

__all__ = ["Episode", "Series", "VodCatalog", "build_vod_catalog",
           "VOD_CP_CODE"]

#: CP code of the synthetic VoD service; outside the 1..10 range the paper
#: customers use, so the download analyses never conflate the two.
VOD_CP_CODE = 8001

_DAY = 86400.0


@dataclass(frozen=True)
class Episode:
    """One episode: a content object plus its broadcast metadata."""

    obj: ContentObject
    series_name: str
    index: int
    #: Release time relative to the trace start, in days (<= 0: released
    #: before the trace window opens).
    release_day: float

    @property
    def age_days(self) -> float:
        """Days since broadcast at the trace start."""
        return -self.release_day


@dataclass(frozen=True)
class Series:
    """A show: its episodes in broadcast order and its audience weight."""

    name: str
    episodes: tuple[Episode, ...]
    audience_weight: float


@dataclass
class VodCatalog:
    """The whole catch-up offering, with popularity baked in."""

    provider: ContentProvider
    series: list[Series] = field(default_factory=list)

    def episodes(self) -> list[Episode]:
        """Every episode, series-major, broadcast order within a series."""
        return [ep for s in self.series for ep in s.episodes]

    def weights(self, config: VodConfig) -> list[float]:
        """Decayed popularity weight per episode, aligned with
        :meth:`episodes`."""
        out: list[float] = []
        for s in self.series:
            for ep in s.episodes:
                decay = 2.0 ** (-ep.age_days / config.decay_half_life_days)
                out.append(s.audience_weight * decay)
        return out

    def episode_by_cid(self, cid: str) -> Episode | None:
        for s in self.series:
            for ep in s.episodes:
                if ep.obj.cid == cid:
                    return ep
        return None

    def next_episode(self, episode: Episode) -> Episode | None:
        """The episode after ``episode`` in its series, if any."""
        for s in self.series:
            if s.name != episode.series_name:
                continue
            nxt = episode.index + 1
            if nxt < len(s.episodes):
                return s.episodes[nxt]
        return None


def build_vod_catalog(rng: random.Random, config: VodConfig) -> VodCatalog:
    """Build the deterministic series/episode catalog for one scenario.

    ``rng`` only jitters audience weights around the Zipf baseline; the
    structure (names, sizes, release schedule) is a pure function of the
    config, so the same seed always yields the same catalog.
    """
    provider = ContentProvider(
        cp_code=VOD_CP_CODE,
        name="CatchUpTV",
        upload_default_rate=0.94,  # ships like the paper's Customer D
        region_mix={"Europe": 0.55, "US East": 0.20, "US West": 0.15,
                    "Oceania": 0.10},
    )
    catalog = VodCatalog(provider=provider)
    size = config.episode_bytes
    last = config.episodes_per_series - 1
    for rank in range(config.n_series):
        name = f"series-{rank:02d}"
        base = 1.0 / (rank + 1) ** config.series_zipf_exponent
        weight = base * rng.uniform(0.8, 1.2)
        episodes = []
        for j in range(config.episodes_per_series):
            release_day = -(last - j) * config.release_spacing_days
            obj = ContentObject(
                f"vod/{name}/ep-{j:02d}.mp4", size, provider,
                p2p_enabled=True,
            )
            episodes.append(Episode(
                obj=obj, series_name=name, index=j, release_day=release_day,
            ))
        catalog.series.append(Series(
            name=name, episodes=tuple(episodes), audience_weight=weight,
        ))
    return catalog
