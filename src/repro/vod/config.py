"""Configuration for the VoD streaming workload and serving policies.

Kept dependency-free (stdlib only): :class:`VodConfig` is embedded in
:class:`repro.workload.scenario.ScenarioConfig`, so this module must be
importable from the workload layer without dragging the rest of the VoD
subsystem (catalog, demand, policy engine) into the import graph.

The knobs model a catch-up-TV service in the BBC iPlayer mold: an
episode/series catalog whose popularity decays with age, prime-time
session arrivals, and viewers who abandon slow startups, stop partway
through, seek ahead, and binge the next episode.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VodConfig", "POLICY_NAMES"]

#: The serving policies the engine knows how to build (see
#: :mod:`repro.vod.policy`).  ``unrestricted`` is the baseline.
POLICY_NAMES = (
    "unrestricted", "isp_local", "offpeak_prefetch", "popularity_seeding",
)


@dataclass(frozen=True)
class VodConfig:
    """Everything that defines the streaming side of a scenario.

    A scenario with ``vod=None`` (the default) runs exactly the seed
    download workload: no VoD object is built, no policy installed, and no
    RNG stream is touched — the golden-parity tests pin that.
    """

    # --- catalog -----------------------------------------------------------
    #: Number of series in the catch-up catalog.
    n_series: int = 6
    #: Episodes per series, released one per ``release_spacing_days``
    #: counting back from the trace start (newest episode is freshest).
    episodes_per_series: int = 8
    #: Episode runtime in minutes; with the bitrate this fixes the file size.
    episode_minutes: float = 30.0
    #: Video consumption rate in kilobits per second.
    bitrate_kbps: float = 3000.0
    #: Days between consecutive episode releases within a series.
    release_spacing_days: float = 1.0
    #: Catch-up popularity half-life in days: an episode ``h`` days old is
    #: watched ``2**(-h/half_life)`` as often as a brand-new one.
    decay_half_life_days: float = 7.0
    #: Zipf exponent over series rank (hit shows vs the long tail).
    series_zipf_exponent: float = 0.9

    # --- demand ------------------------------------------------------------
    #: Viewing sessions scheduled over the trace.
    sessions: int = 300
    #: Local hour (0-24) at which session arrivals peak.
    prime_peak_hour: float = 20.5
    #: Sharpness of the prime-time peak: the diurnal cosine is raised to
    #: this power, so larger values concentrate arrivals around the peak.
    prime_sharpness: float = 3.0
    #: Arrival-rate floor as a fraction of the peak (overnight viewing).
    offpeak_floor: float = 0.08

    # --- viewer behavior ---------------------------------------------------
    #: Seconds of video buffered before playback starts.
    startup_buffer_s: float = 10.0
    #: Viewers give up if playback has not started after this many seconds.
    abandon_startup_s: float = 45.0
    #: Probability a viewer stops partway through the episode.
    partial_watch_prob: float = 0.25
    #: Probability of one seek (skip-ahead) during the session.
    seek_prob: float = 0.15
    #: Probability of starting the next episode after finishing one.
    binge_prob: float = 0.35

    # --- serving policy ----------------------------------------------------
    #: One of :data:`POLICY_NAMES`; validated by the engine, not here, so
    #: config construction stays total (the fingerprint sweep mutates it).
    policy: str = "unrestricted"
    #: Off-peak window (UTC hours) in which ``offpeak_prefetch`` may push.
    offpeak_start_hour: float = 2.0
    offpeak_end_hour: float = 7.0
    #: Registered-copies target per (episode, region) for the prefetch
    #: placer, and its per-tick start budget.
    prefetch_copies_target: int = 6
    max_prefetches_per_tick: int = 8
    #: ``popularity_seeding``: expected pre-trace cached copies per episode,
    #: apportioned by decayed popularity.
    seed_copies_per_episode: float = 3.0

    def __post_init__(self):
        if self.n_series <= 0 or self.episodes_per_series <= 0:
            raise ValueError("catalog dimensions must be positive")
        if self.episode_minutes <= 0 or self.bitrate_kbps <= 0:
            raise ValueError("episode_minutes and bitrate_kbps must be positive")
        if self.sessions < 0:
            raise ValueError("sessions must be >= 0")
        if self.decay_half_life_days <= 0:
            raise ValueError("decay_half_life_days must be positive")
        if not 0.0 < self.offpeak_floor <= 1.0:
            raise ValueError("offpeak_floor must be in (0, 1]")
        for name in ("partial_watch_prob", "seek_prob", "binge_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.startup_buffer_s <= 0 or self.abandon_startup_s <= 0:
            raise ValueError("viewer timers must be positive")

    @property
    def bitrate_bytes_per_s(self) -> float:
        """The playback consumption rate in bytes/second."""
        return self.bitrate_kbps * 1000.0 / 8.0

    @property
    def episode_bytes(self) -> int:
        """Episode file size implied by runtime x bitrate."""
        return int(self.episode_minutes * 60.0 * self.bitrate_bytes_per_s)
