"""VoD session arrivals and viewer behavior.

Streaming demand has a different shape from download demand: sessions
cluster hard around local prime time (catch-up TV peaks in the evening far
more sharply than software downloads do), viewers pick episodes by decayed
catch-up popularity, and a session is interactive — the viewer may give up
on a slow startup, stop partway through, seek ahead, or binge straight
into the next episode.

The generator draws from its own string-seeded RNG (like the fuzzer and
the control channels), so attaching VoD to a scenario never perturbs the
download workload's random streams — the golden-parity tests pin that.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import TYPE_CHECKING

from repro.core.streaming import StreamingSession, start_streaming
from repro.vod.catalog import Episode, VodCatalog
from repro.vod.config import VodConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.peer import PeerNode
    from repro.core.system import NetSessionSystem

__all__ = ["VodDemandGenerator", "prime_time_rate"]

_DAY = 86400.0
_HOUR = 3600.0

#: Representative timezone offsets (seconds) per geographic region, for
#: phasing the prime-time curve.  Mirrors the download layer's table but is
#: defined locally: the vod package must stay importable without workload.
_REGION_TZ = {
    "US East": -5 * _HOUR, "US West": -8 * _HOUR,
    "Americas Other": -4 * _HOUR, "Europe": 1 * _HOUR,
    "India": 5.5 * _HOUR, "China": 8 * _HOUR,
    "Asia Other": 8 * _HOUR, "Africa": 2 * _HOUR,
    "Oceania": 10 * _HOUR,
}


def prime_time_rate(
    t: float, tz: float, *,
    peak_hour: float = 20.5, sharpness: float = 3.0, floor: float = 0.08,
) -> float:
    """Relative session-arrival rate at absolute time ``t`` (UTC seconds).

    A cosine peaking at ``peak_hour`` local time, raised to ``sharpness``
    to concentrate mass around the evening peak, with an overnight floor.
    """
    local_h = ((t + tz) % _DAY) / _HOUR
    phase = math.cos((local_h - peak_hour) / 24.0 * 2.0 * math.pi)
    shaped = ((1.0 + phase) / 2.0) ** sharpness
    return floor + (1.0 - floor) * shaped


class VodDemandGenerator:
    """Schedules viewing sessions (and their viewers' behavior) on a system."""

    def __init__(
        self,
        system: "NetSessionSystem",
        population,
        catalog: VodCatalog,
        config: VodConfig,
        *,
        seed: int,
    ):
        self.system = system
        self.population = population
        self.catalog = catalog
        self.config = config
        self.rng = random.Random(f"repro-vod:{seed}")
        self._episodes = catalog.episodes()
        self._weights = catalog.weights(config)
        self._peers_by_region: dict[str, list["PeerNode"]] = {}
        for peer in population.iter_peers():
            self._peers_by_region.setdefault(peer.geo_region, []).append(peer)
        self.sessions_requested = 0
        self.sessions_dropped = 0
        self.binge_started = 0

    # ------------------------------------------------------------ scheduling

    def schedule_all(self, horizon: float) -> int:
        """Pre-schedule every session arrival over ``[0, horizon)``."""
        cfg = self.config
        mix = self.catalog.provider.region_mix
        regions = list(mix.keys())
        shares = list(mix.values())
        for _ in range(cfg.sessions):
            episode = self._sample_episode()
            region = self.rng.choices(regions, weights=shares, k=1)[0]
            t = self._sample_arrival_time(region, horizon)
            self.system.sim.schedule_at(
                t, lambda e=episode, r=region: self._on_arrival(e, r)
            )
        return cfg.sessions

    def _sample_episode(self) -> Episode:
        return self.rng.choices(self._episodes, weights=self._weights, k=1)[0]

    def _sample_arrival_time(self, region: str, horizon: float) -> float:
        """Inverse-CDF sample from the prime-time curve for ``region``."""
        cfg = self.config
        tz = _REGION_TZ.get(region, 0.0)
        hours = max(1, int(horizon // _HOUR))
        cdf: list[float] = []
        total = 0.0
        for h in range(hours):
            total += prime_time_rate(
                h * _HOUR, tz, peak_hour=cfg.prime_peak_hour,
                sharpness=cfg.prime_sharpness, floor=cfg.offpeak_floor,
            )
            cdf.append(total)
        u = self.rng.random() * cdf[-1]
        idx = bisect.bisect_left(cdf, u)
        lo = idx * _HOUR
        return min(horizon - 1.0, lo + self.rng.uniform(0.0, _HOUR))

    # --------------------------------------------------------------- viewing

    def _on_arrival(self, episode: Episode, region: str) -> None:
        self.sessions_requested += 1
        peer = self._pick_viewer(region, episode)
        if peer is None:
            self.sessions_dropped += 1
            return
        if not peer.online:
            peer.boot()
        self._start_viewing(peer, episode)

    def _pick_viewer(self, region: str, episode: Episode):
        def eligible(peer, need_online: bool) -> bool:
            if episode.obj.cid in peer.sessions:
                return False
            if peer.has_complete(episode.obj.cid):
                return False
            return peer.online or not need_online

        pools = []
        regional = self._peers_by_region.get(region)
        if regional:
            pools.append(regional)
        pools.append(self.population.peers)
        for need_online in (True, False):
            for pool in pools:
                for _ in range(12):
                    peer = self.rng.choice(pool)
                    if eligible(peer, need_online):
                        return peer
        return None

    def _start_viewing(self, peer: "PeerNode", episode: Episode) -> None:
        cfg = self.config
        session = start_streaming(
            peer, episode.obj,
            bitrate=cfg.bitrate_bytes_per_s,
            startup_buffer_s=cfg.startup_buffer_s,
        )
        duration = cfg.episode_minutes * 60.0
        sim = self.system.sim

        # Startup impatience: give up if the first frame never comes.
        sim.schedule(cfg.abandon_startup_s,
                     lambda s=session: self._abandon_if_unstarted(s))

        # Partial watch: stop partway through (decided up front).
        if self.rng.random() < cfg.partial_watch_prob:
            watched = self.rng.uniform(0.2, 0.9)
            sim.schedule(cfg.abandon_startup_s + watched * duration,
                         lambda s=session: self._stop_viewing(s))

        # One seek ahead, sometime in the first half of the episode.
        if self.rng.random() < cfg.seek_prob:
            at = self.rng.uniform(0.1, 0.5) * duration
            skip = self.rng.uniform(30.0, 240.0)
            sim.schedule(at, lambda s=session, d=skip: self._seek(s, d))

        # Binge: once this episode has played out, maybe start the next.
        if self.rng.random() < cfg.binge_prob:
            nxt = self.catalog.next_episode(episode)
            if nxt is not None:
                sim.schedule(1.15 * duration + 2 * cfg.abandon_startup_s,
                             lambda s=session, p=peer, e=nxt:
                             self._maybe_binge(s, p, e))

    # The behavior callbacks below are deterministic given the simulator's
    # event order: all non-binge decisions consume RNG at scheduling time,
    # and binge re-entry draws from the generator's own stream inside the
    # (deterministic) event loop — never from any system RNG.

    def _abandon_if_unstarted(self, session: StreamingSession) -> None:
        if session.playback_started_at is None and session.state == "active":
            session.abort()

    def _stop_viewing(self, session: StreamingSession) -> None:
        if session.playback_finished_at is not None:
            return
        if session.state == "active":
            session.abort()
        else:
            session.stop_playback()

    def _seek(self, session: StreamingSession, seconds: float) -> None:
        if session.state == "active" and session.playback_started_at is not None:
            session.skip_ahead(seconds)

    def _maybe_binge(self, session: StreamingSession, peer, episode: Episode) -> None:
        if session.playback_finished_at is None:
            return
        if not peer.online:
            return
        if episode.obj.cid in peer.sessions or peer.has_complete(episode.obj.cid):
            return
        self.binge_started += 1
        self._start_viewing(peer, episode)
