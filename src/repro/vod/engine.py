"""Assembly: attach the whole VoD subsystem to a built scenario.

:func:`attach_vod` is the single entry point the scenario driver calls
(late in assembly, after the download workload is scheduled): it builds
and publishes the episode catalog, installs the serving policy on every
CN, runs any pre-trace seeding, arms the policy's placer, and schedules
the viewing sessions.

Every random draw comes from string-seeded RNGs derived from the scenario
seed — never from ``system.rng`` or any other existing stream — so a
scenario with ``vod=None`` is bit-identical to one that never imported
this package, and enabling VoD leaves the download workload's arrivals
untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.placement import PredictivePlacer
from repro.vod.catalog import VodCatalog, build_vod_catalog
from repro.vod.config import VodConfig
from repro.vod.demand import VodDemandGenerator
from repro.vod.policy import ServingPolicy, make_policy

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import NetSessionSystem

__all__ = ["VodRuntime", "attach_vod"]

_DAY = 86400.0


@dataclass
class VodRuntime:
    """Everything the VoD attachment created, for inspection and tests."""

    catalog: VodCatalog
    policy: ServingPolicy
    demand: VodDemandGenerator
    placer: Optional[PredictivePlacer]
    copies_seeded: int
    sessions_scheduled: int


def attach_vod(
    system: "NetSessionSystem",
    population,
    config: VodConfig,
    *,
    seed: int,
    duration_days: float,
) -> VodRuntime:
    """Wire the VoD workload and serving policy into ``system``."""
    catalog = build_vod_catalog(
        random.Random(f"repro-vod-catalog:{seed}"), config)
    system.register_provider(catalog.provider)
    for episode in catalog.episodes():
        system.publish(episode.obj)

    counters = system.vod
    policy = make_policy(
        config.policy,
        (episode.obj.cid for episode in catalog.episodes()),
        counters=counters,
    )
    policy.install(system)

    seeded = policy.pre_seed(
        system, population, catalog, config,
        random.Random(f"repro-vod-seed:{seed}"),
    )
    placer = policy.build_placer(system, catalog, config)
    if placer is not None:
        placer.start()

    demand = VodDemandGenerator(
        system, population, catalog, config, seed=seed)
    scheduled = demand.schedule_all(duration_days * _DAY)

    return VodRuntime(
        catalog=catalog,
        policy=policy,
        demand=demand,
        placer=placer,
        copies_seeded=seeded,
        sessions_scheduled=scheduled,
    )
