"""The pluggable serving-policy engine for VoD delivery.

A *serving policy* decides which peers may serve a streaming object and
when the control plane may push copies around — the levers an operator
has for trading CDN offload against QoE and inter-ISP transit (the axis
the BBC iPlayer and *Pushing BitTorrent Locality to the Limit* studies
map out).  Policies hook into the existing machinery through two narrow
protocols instead of hard-coded branches:

* **selection** — :class:`~repro.core.control.connection_node.ConnectionNode`
  consults ``serving_policy.admits`` (a candidate filter passed through to
  :func:`repro.core.selection.select_peers`) and
  ``serving_policy.allow_widening`` (veto on cross-region search);
* **placement** — a policy may contribute a
  :class:`~repro.core.placement.PredictivePlacer` subclass whose
  ``_should_run`` hook gates *when* copies move (e.g. only in the demand
  trough).

Every policy is scoped to the VoD cids it is given: queries for ordinary
download objects pass through untouched, so a mixed scenario keeps its
download behaviour (and its RNG draws) bit-identical.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable, Optional

from repro.core.placement import PlacementConfig, PredictivePlacer
from repro.vod.config import POLICY_NAMES, VodConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.control.database_node import PeerRegistration
    from repro.core.selection import QueryContext
    from repro.core.system import NetSessionSystem
    from repro.vod.catalog import VodCatalog

__all__ = [
    "ServingPolicy", "UnrestrictedPolicy", "IspLocalOnlyPolicy",
    "OffPeakPrefetchPolicy", "PopularitySeedingPolicy", "OffPeakPlacer",
    "make_policy",
]

_HOUR = 3600.0
_DAY = 86400.0


class ServingPolicy:
    """Base policy: serve from anyone, never push copies (the baseline)."""

    name = "unrestricted"

    def __init__(self, vod_cids: Iterable[str], counters=None):
        self.vod_cids = frozenset(vod_cids)
        #: A :class:`repro.core.system.VodCounters` (or None outside a
        #: system context): policies account their interventions there.
        self.counters = counters

    # ------------------------------------------------------- selection hooks

    def admits(self, query: "QueryContext", reg: "PeerRegistration") -> bool:
        """May ``reg`` be returned to ``query``?  Non-VoD cids always pass."""
        return True

    def allow_widening(self, query: "QueryContext", cid: str) -> bool:
        """May the CN widen the search to remote regions for ``cid``?"""
        return True

    # ------------------------------------------------------- placement hooks

    def build_placer(
        self, system: "NetSessionSystem", catalog: "VodCatalog",
        config: VodConfig,
    ) -> Optional[PredictivePlacer]:
        """A placer to arm for this policy, or None."""
        return None

    def pre_seed(
        self, system: "NetSessionSystem", population, catalog: "VodCatalog",
        config: VodConfig, rng: random.Random,
    ) -> int:
        """Pre-trace cache seeding; returns copies seeded (0 by default)."""
        return 0

    # -------------------------------------------------------------- plumbing

    def install(self, system: "NetSessionSystem") -> None:
        """Point every CN's ``serving_policy`` at this policy."""
        for cn in system.control.all_cns:
            cn.serving_policy = self

    def _count_filtered(self) -> None:
        if self.counters is not None:
            self.counters.policy_filtered += 1


class UnrestrictedPolicy(ServingPolicy):
    """Explicit alias of the base: any holder may serve any viewer."""

    name = "unrestricted"


class IspLocalOnlyPolicy(ServingPolicy):
    """Serve VoD only from peers in the viewer's own AS (ISP-local).

    The most ISP-friendly setting — zero inter-AS transit from VoD — and
    the most fragile: a viewer in a tiny ISP finds no local holders, the
    widening veto keeps remote regions closed, and the edge backstop
    carries the stream (the degrade-to-edge regime *Pushing BitTorrent
    Locality to the Limit* warns about; the tests pin that playback never
    stalls there).
    """

    name = "isp_local"

    def admits(self, query: "QueryContext", reg: "PeerRegistration") -> bool:
        if reg.cid not in self.vod_cids:
            return True
        if reg.asn == query.asn:
            return True
        if query.lan_id and getattr(reg, "lan_id", "") == query.lan_id:
            return True
        self._count_filtered()
        return False

    def allow_widening(self, query: "QueryContext", cid: str) -> bool:
        # Remote regions cannot contain same-AS peers the local DNs missed
        # often enough to be worth the transit risk: keep the search local.
        return cid not in self.vod_cids


class OffPeakPlacer(PredictivePlacer):
    """A predictive placer that only acts in the configured demand trough."""

    def __init__(
        self,
        system: "NetSessionSystem",
        objects,
        config: PlacementConfig,
        *,
        window: tuple[float, float],
        counters=None,
    ):
        super().__init__(system, objects, config)
        self.window = window
        self.counters = counters

    def _should_run(self) -> bool:
        start, end = self.window
        hour = (self.system.sim.now % _DAY) / _HOUR
        if start <= end:
            inside = start <= hour < end
        else:  # window wraps midnight
            inside = hour >= start or hour < end
        return inside

    def tick(self) -> int:
        started = super().tick()
        if started and self.counters is not None:
            self.counters.prefetches_pushed += started
        return started


class OffPeakPrefetchPolicy(ServingPolicy):
    """Unrestricted serving plus off-peak pushes of popular episodes.

    During the overnight trough the control plane asks idle, upload-enabled
    peers in under-provisioned regions to prefetch hot episodes, so the
    prime-time rush finds warm local swarms.  Pushes ride the ordinary
    Download Manager and are flagged ``prefetch`` in the logs.
    """

    name = "offpeak_prefetch"

    def build_placer(
        self, system: "NetSessionSystem", catalog: "VodCatalog",
        config: VodConfig,
    ) -> Optional[PredictivePlacer]:
        episodes = [ep.obj for ep in catalog.episodes()]
        placement = PlacementConfig(
            interval=1800.0,
            copies_target=config.prefetch_copies_target,
            hot_threshold=2,
            max_prefetches_per_tick=config.max_prefetches_per_tick,
        )
        return OffPeakPlacer(
            system, episodes, placement,
            window=(config.offpeak_start_hour, config.offpeak_end_hour),
            counters=self.counters,
        )


class PopularitySeedingPolicy(ServingPolicy):
    """Unrestricted serving plus popularity-proportional pre-seeding.

    Models an operator that ships the hottest catch-up episodes to caches
    ahead of demand (a static cousin of off-peak push): before the trace
    starts, copies are planted in upload-enabled peers' caches, apportioned
    by each episode's decayed popularity.  Registration with the control
    plane happens naturally at first login, same as warm download caches.
    """

    name = "popularity_seeding"

    def pre_seed(
        self, system: "NetSessionSystem", population, catalog: "VodCatalog",
        config: VodConfig, rng: random.Random,
    ) -> int:
        from repro.core.peer import CacheEntry

        episodes = catalog.episodes()
        if not episodes or config.seed_copies_per_episode <= 0:
            return 0
        weights = catalog.weights(config)
        hosts = [p for p in population.iter_peers() if p.uploads_enabled]
        if not hosts:
            return 0
        total = int(round(config.seed_copies_per_episode * len(episodes)))
        retention = system.config.client.cache_retention
        seeded = 0
        for _ in range(total):
            episode = rng.choices(episodes, weights=weights, k=1)[0]
            host = rng.choice(hosts)
            if host.has_complete(episode.obj.cid):
                continue
            host.cache[episode.obj.cid] = CacheEntry(
                cid=episode.obj.cid, completed_at=0.0)
            system.sim.schedule(
                rng.uniform(0.5, 1.0) * retention,
                lambda p=host, c=episode.obj.cid: p._evict(c),
            )
            seeded += 1
        if self.counters is not None:
            self.counters.copies_seeded += seeded
        return seeded


_POLICY_CLASSES = {
    "unrestricted": UnrestrictedPolicy,
    "isp_local": IspLocalOnlyPolicy,
    "offpeak_prefetch": OffPeakPrefetchPolicy,
    "popularity_seeding": PopularitySeedingPolicy,
}
assert set(_POLICY_CLASSES) == set(POLICY_NAMES)


def make_policy(name: str, vod_cids: Iterable[str], counters=None) -> ServingPolicy:
    """Build the named policy, or raise ``ValueError`` for an unknown name."""
    try:
        cls = _POLICY_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown serving policy {name!r}; expected one of {POLICY_NAMES}"
        ) from None
    return cls(vod_cids, counters=counters)
