"""Workload substrate: population, catalog, demand, behaviour, mobility, cloning.

The entry point is :func:`repro.workload.run_scenario`, which turns a
:class:`ScenarioConfig` into a finished synthetic trace.
"""

from repro.workload.behavior import BehaviorConfig, UserBehavior
from repro.workload.catalog import Catalog, CatalogConfig, PAPER_CUSTOMERS, build_catalog
from repro.workload.cloning import CloningConfig, CloningModel
from repro.workload.demand import DemandConfig, DemandGenerator
from repro.workload.mobility import MobilityConfig, MobilityModel
from repro.workload.population import (
    DAY, Population, PopulationConfig, build_population, diurnal_rate,
)
from repro.workload.scenario import ScenarioConfig, ScenarioResult, run_scenario

__all__ = [
    "ScenarioConfig", "ScenarioResult", "run_scenario",
    "Catalog", "CatalogConfig", "build_catalog", "PAPER_CUSTOMERS",
    "Population", "PopulationConfig", "build_population", "diurnal_rate", "DAY",
    "DemandConfig", "DemandGenerator",
    "BehaviorConfig", "UserBehavior",
    "MobilityConfig", "MobilityModel",
    "CloningConfig", "CloningModel",
]
