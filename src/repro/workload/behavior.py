"""User behaviour: abandonment, pauses, odd failures, setting changes.

Calibration targets:

* **§5.2 / Figure 7** — downloads are paused/terminated more often the
  longer they take: 3% of infrastructure-only vs 8% of peer-assisted
  downloads, with the gap explained entirely by file size.  We model a
  per-user *patience* drawn from a heavy-tailed distribution; if a download
  outlives the patience, the user kills it.  Size-dependent termination is
  therefore *emergent*, exactly as the paper argues.
* **§5.2** — a small rate of "other" failures (disk full, etc.): 0.1–0.2%.
* **Table 3** — upload-setting changes are rare: of initially-disabled
  peers 0.03% toggled once and 0.01% more than once; of initially-enabled
  peers 1.80% toggled once and 0.09% more than once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.records import FAILURE_OTHER
from repro.core.swarm import DownloadSession
from repro.core.system import NetSessionSystem
from repro.workload.population import DAY, Population

__all__ = ["BehaviorConfig", "UserBehavior"]


@dataclass(frozen=True)
class BehaviorConfig:
    """Knobs for user behaviour."""

    #: Median user patience (seconds of wall-clock download time tolerated).
    #: With sigma 1.5, a two-hour download is abandoned ~12% of the time, a
    #: 30-minute one ~2%, a 5-minute one ~0.4% — reproducing §5.2's 3%
    #: (infra) vs 8% (p2p) split purely through the size composition.
    patience_median: float = 12.0 * 3600.0
    #: Log-normal sigma of the patience distribution.
    patience_sigma: float = 1.5
    #: Probability that a download dies of a non-system cause (disk full…).
    #: Calibrated to §5.2's outcome split: ~94% complete, ~3% paused or
    #: terminated, small failure remainder dominated by non-system causes.
    other_failure_prob: float = 0.025
    #: When patience runs out: probability the user aborts outright.
    abort_vs_pause: float = 0.5
    #: Among the non-aborting rest, probability the pause is temporary: the
    #: user resumes hours later (the Download Manager's flagship feature,
    #: §3.3).  The remainder pause "for later" and never resume — the trace
    #: outcome the paper counts as terminated.
    resume_later_prob: float = 0.5
    #: Table 3 toggle probabilities over the whole trace, by initial setting.
    toggle_once_if_disabled: float = 0.0003
    toggle_twice_if_disabled: float = 0.0001
    toggle_once_if_enabled: float = 0.0180
    toggle_twice_if_enabled: float = 0.0009

    def __post_init__(self):
        if self.patience_median <= 0:
            raise ValueError("patience_median must be positive")
        if not 0 <= self.other_failure_prob <= 1:
            raise ValueError("other_failure_prob must be in [0, 1]")


class UserBehavior:
    """Attaches human behaviour to sessions and peers."""

    def __init__(self, system: NetSessionSystem, config: BehaviorConfig | None = None):
        self.system = system
        self.config = config if config is not None else BehaviorConfig()
        self.rng = random.Random(system.rng.getrandbits(64))
        self.abandonments = 0
        self.other_failures = 0

    # ------------------------------------------------------------- downloads

    def attach(self, session: DownloadSession) -> None:
        """Arm behaviour for one download session."""
        cfg = self.config
        rng = self.rng

        if rng.random() < cfg.other_failure_prob:
            # The failure strikes at some point during the download.
            delay = rng.uniform(30.0, 4 * 3600.0)
            self.system.sim.schedule(delay, lambda: self._other_failure(session))

        patience = rng.lognormvariate(0.0, cfg.patience_sigma) * cfg.patience_median
        self.system.sim.schedule(patience, lambda: self._patience_out(session))

    def _other_failure(self, session: DownloadSession) -> None:
        if session.state in ("active", "paused"):
            self.other_failures += 1
            session.fail(FAILURE_OTHER)

    def _patience_out(self, session: DownloadSession) -> None:
        if session.state not in ("active", "paused"):
            return
        if session.progress >= 0.9:
            # Nobody walks away at 99%: let a nearly-done download finish,
            # re-checking in a while in case it stalls outright.
            self.system.sim.schedule(
                2 * 3600.0, lambda: self._patience_out(session)
            )
            return
        self.abandonments += 1
        if self.rng.random() < self.config.abort_vs_pause:
            session.abort()
            return
        session.pause()
        if self.rng.random() < self.config.resume_later_prob:
            delay = self.rng.uniform(2 * 3600.0, 20 * 3600.0)
            self.system.sim.schedule(delay, lambda: self._resume_later(session))
        # else: paused "for later" and forgotten — finalized as aborted at
        # the end of the trace by finalize_open_downloads().

    def _resume_later(self, session: DownloadSession, retries: int = 3) -> None:
        if session.state != "paused":
            return
        if not session.peer.online:
            # The machine is off; try again when the user is likely back.
            if retries > 0:
                self.system.sim.schedule(
                    self.rng.uniform(2 * 3600.0, 8 * 3600.0),
                    lambda: self._resume_later(session, retries - 1),
                )
            return
        session.resume()
        # The user's patience resets for the resumed attempt.
        patience = (
            self.rng.lognormvariate(0.0, self.config.patience_sigma)
            * self.config.patience_median
        )
        self.system.sim.schedule(patience, lambda: self._patience_out(session))

    # ------------------------------------------------------------ busy links

    def schedule_link_busy_periods(self, population: Population,
                                   duration_days: float) -> int:
        """Schedule foreground-traffic bursts that trigger upload back-off.

        §3.9: "peers monitor the utilization of the local network
        connections and throttle or pause uploads when the connections are
        used by other applications."  Each busy period throttles the peer's
        uploads to the back-off rate for its duration.  Returns the number
        of busy periods scheduled.
        """
        rng = self.rng
        prob_per_hour = self.system.config.client.link_busy_prob_per_hour
        if prob_per_hour <= 0:
            return 0
        horizon = duration_days * DAY
        scheduled = 0
        for peer in population.iter_peers():
            # Poisson-ish: expected busy periods over the trace.  Device
            # tiers scale the rate (a dedicated router's link is rarely
            # busy; a phone's is often); the multiplier is 1.0 — and the
            # draw sequence untouched — without a device mix.
            device = peer.device
            busy_mult = device.link_busy_mult if device is not None else 1.0
            expected = prob_per_hour * duration_days * 24.0 * busy_mult
            t = rng.expovariate(max(expected, 1e-9) / horizon)
            while t < horizon:
                length = rng.uniform(300.0, 3600.0)
                self.system.sim.schedule_at(
                    t, lambda p=peer: p.set_link_busy(True))
                self.system.sim.schedule_at(
                    min(horizon, t + length),
                    lambda p=peer: p.set_link_busy(False))
                scheduled += 1
                t += length + rng.expovariate(max(expected, 1e-9) / horizon)
        return scheduled

    # ------------------------------------------------------------- settings

    def schedule_setting_changes(self, population: Population, duration_days: float) -> int:
        """Schedule the rare upload-setting toggles of Table 3.

        Returns the number of toggle events scheduled.
        """
        cfg = self.config
        rng = self.rng
        horizon = duration_days * DAY
        scheduled = 0
        for peer in population.iter_peers():
            if peer.uploads_enabled:
                p_once, p_twice = cfg.toggle_once_if_enabled, cfg.toggle_twice_if_enabled
            else:
                p_once, p_twice = cfg.toggle_once_if_disabled, cfg.toggle_twice_if_disabled
            draw = rng.random()
            if draw < p_twice:
                toggles = 2
            elif draw < p_twice + p_once:
                toggles = 1
            else:
                continue
            times = sorted(rng.uniform(0, horizon) for _ in range(toggles))
            for t in times:
                # Each toggle flips the setting from whatever it is then.
                self.system.sim.schedule_at(
                    t, lambda p=peer: p.set_uploads_enabled(not p.uploads_enabled)
                )
                scheduled += 1
        return scheduled
