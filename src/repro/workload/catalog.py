"""Content catalog synthesis: the paper's customers and their objects.

Calibration targets from the paper:

* **Table 2** — the regional download mix of the ten largest customers
  (rows reproduced verbatim below);
* **Table 4** — the fraction of each customer's installs with uploads
  enabled (<1% … 94%);
* **§5.1** — p2p delivery enabled on only ~1.7% of files, but those files
  carry ~57.4% of the bytes;
* **Figure 3(a)** — peer-assisted requests are strongly biased toward large
  objects (82% of p2p requests are for objects >500 MB), because providers
  enable peer assist where it pays: big files;
* **§4.4** — the typical use case is software installers, several GB.

The generator creates a long tail of small infrastructure-only objects and
a small head of large, popular, p2p-enabled objects per provider.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.core.content import ContentObject, ContentProvider
from repro.net.geo import Region

__all__ = ["CatalogConfig", "Catalog", "build_catalog", "PAPER_CUSTOMERS"]


def _mix(us_e, us_w, am_o, india, china, asia_o, europe, africa, oceania):
    """Build a Table 2 row; values are percentages (may not sum to 100)."""
    raw = {
        Region.US_EAST: us_e, Region.US_WEST: us_w, Region.AMERICAS_OTHER: am_o,
        Region.INDIA: india, Region.CHINA: china, Region.ASIA_OTHER: asia_o,
        Region.EUROPE: europe, Region.AFRICA: africa, Region.OCEANIA: oceania,
    }
    total = sum(raw.values())
    return {k: v / total for k, v in raw.items() if v > 0}


#: The paper's ten largest customers: (name, Table 4 upload-enabled fraction,
#: Table 2 regional mix).  "<1%" entries are encoded as 0.005.
PAPER_CUSTOMERS: list[tuple[str, float, dict[str, float]]] = [
    ("Customer A", 0.005, _mix(0, 0, 12, 6, 6, 18, 51, 4, 3)),
    ("Customer B", 0.20, _mix(2, 1, 1, 11, 0, 61, 6, 17, 1)),
    ("Customer C", 0.02, _mix(13, 6, 15, 1, 0, 8, 55, 1, 2)),
    ("Customer D", 0.94, _mix(22, 21, 6, 0, 0, 3, 45, 0, 3)),
    ("Customer E", 0.02, _mix(5, 3, 8, 2, 1, 29, 48, 2, 3)),
    ("Customer F", 0.45, _mix(0, 0, 0, 0, 0, 0, 100, 0, 0)),
    ("Customer G", 0.47, _mix(8, 3, 12, 2, 8, 20, 45, 2, 2)),
    ("Customer H", 0.005, _mix(6, 4, 7, 4, 2, 20, 53, 2, 2)),
    ("Customer I", 0.91, _mix(5, 2, 18, 0, 0, 15, 57, 1, 1)),
    ("Customer J", 0.005, _mix(42, 24, 14, 0, 0, 5, 11, 1, 3)),
]

MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True)
class CatalogConfig:
    """Knobs for catalog synthesis."""

    objects_per_provider: int = 60
    #: Fraction of objects with p2p enabled (§5.1: 1.7% in the trace).
    p2p_enabled_fraction: float = 0.017
    #: Zipf exponent for object popularity within a provider (Fig 3b shows
    #: the "nearly ubiquitous power law").
    zipf_exponent: float = 1.1
    #: Size range for the large installer class (p2p-enabled head).
    large_size_range: tuple[int, int] = (400 * MB, 2 * GB)
    #: Log-uniform size range for the small-object tail.
    small_size_range: tuple[int, int] = (1 * MB, 500 * MB)
    #: Relative popularity boost for p2p-enabled objects: providers enable
    #: peer assist on their flagship (most-downloaded) files, which is how
    #: 1.7% of files carry 57% of bytes.
    p2p_head_bias: float = 0.85
    #: Providers whose binaries ship with uploads mostly disabled "use the
    #: software merely as a download manager, without the peer assist"
    #: (paper §5.1) — only providers at or above this upload-default rate
    #: publish p2p-enabled objects.
    p2p_provider_threshold: float = 0.10

    def __post_init__(self):
        if self.objects_per_provider <= 0:
            raise ValueError("objects_per_provider must be positive")
        if not 0.0 <= self.p2p_enabled_fraction <= 1.0:
            raise ValueError("p2p_enabled_fraction must be in [0, 1]")


@dataclass
class Catalog:
    """All published objects with per-object popularity weights."""

    providers: list[ContentProvider]
    objects: list[ContentObject]
    #: Unnormalised popularity weight per object (same order as objects).
    weights: list[float]
    zipf_exponent: float = 0.9
    by_provider: dict[int, list[ContentObject]] = field(default_factory=dict)

    def __post_init__(self):
        if not self.by_provider:
            for obj in self.objects:
                self.by_provider.setdefault(obj.provider.cp_code, []).append(obj)

    def sample_object(self, rng: random.Random) -> ContentObject:
        """Draw an object by popularity (global Zipf-weighted choice)."""
        return rng.choices(self.objects, weights=self.weights, k=1)[0]

    def provider_weights(self, cp_code: int) -> list[float]:
        """Zipf popularity weights aligned with ``by_provider[cp_code]``.

        Objects were generated in rank order, so position in the provider
        list is the popularity rank.
        """
        objects = self.by_provider[cp_code]
        return [1.0 / (i + 1) ** self.zipf_exponent for i in range(len(objects))]

    def p2p_objects(self) -> list[ContentObject]:
        """All objects with peer-assisted delivery enabled."""
        return [o for o in self.objects if o.p2p_enabled]

    def total_weight(self) -> float:
        """Sum of popularity weights (for normalisation in tests)."""
        return sum(self.weights)


def build_catalog(
    rng: random.Random,
    config: CatalogConfig | None = None,
    *,
    first_cp_code: int = 1001,
) -> Catalog:
    """Create the ten paper customers and their objects.

    Popularity follows a Zipf law per provider.  The p2p-enabled objects are
    placed at (a biased sample of) the top popularity ranks, so that a small
    file count carries a majority of the bytes, matching §5.1.
    """
    cfg = config if config is not None else CatalogConfig()
    providers: list[ContentProvider] = []
    objects: list[ContentObject] = []
    weights: list[float] = []

    for index, (name, upload_rate, region_mix) in enumerate(PAPER_CUSTOMERS):
        provider = ContentProvider(
            cp_code=first_cp_code + index,
            name=name,
            upload_default_rate=upload_rate,
            region_mix=region_mix,
        )
        providers.append(provider)

        n = cfg.objects_per_provider
        p2p_ranks: set[int] = set()
        if upload_rate >= cfg.p2p_provider_threshold:
            # Keep the *global* p2p file fraction at the configured level by
            # concentrating the budget on the peer-assist-using providers.
            using = sum(
                1 for _, rate, _ in PAPER_CUSTOMERS
                if rate >= cfg.p2p_provider_threshold
            )
            n_p2p = max(1, round(n * cfg.p2p_enabled_fraction * len(PAPER_CUSTOMERS) / using))
            # Which popularity ranks get p2p enabled: mostly the head.
            while len(p2p_ranks) < n_p2p:
                if rng.random() < cfg.p2p_head_bias:
                    rank = rng.randrange(0, max(1, n // 20))  # top 5%
                else:
                    rank = rng.randrange(0, n)
                p2p_ranks.add(rank)

        for rank in range(n):
            p2p = rank in p2p_ranks
            if p2p:
                size = rng.randint(*cfg.large_size_range)
            else:
                size = _log_uniform_int(rng, *cfg.small_size_range)
            obj = ContentObject(
                url=f"{name.replace(' ', '').lower()}/object-{rank:05d}",
                size=size,
                provider=provider,
                p2p_enabled=p2p,
            )
            objects.append(obj)
            weights.append(1.0 / (rank + 1) ** cfg.zipf_exponent)

    return Catalog(providers=providers, objects=objects, weights=weights,
                   zipf_exponent=cfg.zipf_exponent)


def _log_uniform_int(rng: random.Random, low: int, high: int) -> int:
    """Integer log-uniform sample in [low, high]."""
    return int(round(math.exp(rng.uniform(math.log(low), math.log(high)))))
