"""GUID cloning and re-imaging (paper §6.2, Figure 12).

The paper instrumented the client with per-boot *secondary GUIDs* and found
that 99.4% of the resulting per-installation graphs were linear chains, but
0.6% were trees — evidence of installations rolled back to earlier states.
The common non-linear patterns and the authors' interpretations:

* one long branch plus a single one-vertex short branch (46.2%) — a failed
  software update rolled back;
* two long branches (6.2%) — a restored backup;
* several short/medium branches (23.5%) — nightly re-imaging (Internet
  cafes) or workstation cloning from a master image;
* highly irregular patterns (the rest) — unexplained.

This model *causes* those behaviours: affected installations snapshot their
identity (as a disk image would) and later restore it, so the branching
shows up in the login records exactly as production saw it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.peer import PeerNode
from repro.core.system import NetSessionSystem
from repro.workload.population import DAY, Population

__all__ = ["CloningConfig", "CloningModel"]


@dataclass(frozen=True)
class CloningConfig:
    """Rollback incidence and pattern mix (Figure 12 calibration)."""

    #: Fraction of installations that experience any rollback (0.6%).
    affected_fraction: float = 0.006
    #: Pattern mix among affected installations.
    failed_update_weight: float = 0.462
    restored_backup_weight: float = 0.062
    reimaging_weight: float = 0.235
    irregular_weight: float = 0.241

    def __post_init__(self):
        if not 0 <= self.affected_fraction <= 1:
            raise ValueError("affected_fraction must be in [0, 1]")
        weights = (self.failed_update_weight, self.restored_backup_weight,
                   self.reimaging_weight, self.irregular_weight)
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("pattern weights must be non-negative with a positive sum")


class CloningModel:
    """Schedules snapshot/restore sequences for an affected subset of peers."""

    PATTERNS = ("failed_update", "restored_backup", "reimaging", "irregular")

    def __init__(self, system: NetSessionSystem, config: CloningConfig | None = None):
        self.system = system
        self.config = config if config is not None else CloningConfig()
        self.rng = random.Random(system.rng.getrandbits(64))
        self.assigned: dict[str, str] = {}

    def apply(self, population: Population, duration_days: float) -> dict[str, int]:
        """Pick affected peers and schedule their rollback behaviour.

        Returns the pattern census.
        """
        cfg = self.config
        weights = (cfg.failed_update_weight, cfg.restored_backup_weight,
                   cfg.reimaging_weight, cfg.irregular_weight)
        census = {p: 0 for p in self.PATTERNS}
        for peer in population.iter_peers():
            if self.rng.random() >= cfg.affected_fraction:
                continue
            pattern = self.rng.choices(self.PATTERNS, weights=weights, k=1)[0]
            self.assigned[peer.guid] = pattern
            census[pattern] += 1
            getattr(self, f"_schedule_{pattern}")(peer, duration_days)
        return census

    # ---------------------------------------------------------------- patterns

    def _boots(self, peer: PeerNode, start: float, count: int, spacing: float) -> float:
        """Schedule ``count`` boots from ``start``; returns the end time."""
        t = start
        for _ in range(count):
            self.system.sim.schedule_at(t, peer.boot)
            t += spacing * self.rng.uniform(0.6, 1.4)
        return t

    def _schedule_failed_update(self, peer: PeerNode, duration_days: float) -> None:
        """Snapshot → one boot on the new state → roll back → continue.

        Produces one long chain with a single one-vertex side branch.
        """
        t = self.rng.uniform(0.2, 0.7) * duration_days * DAY

        def snapshot_and_fail(p: PeerNode = peer) -> None:
            snap = p.snapshot_identity()
            p.boot()  # the boot whose secondary GUID becomes the dead branch
            self.system.sim.schedule(
                self.rng.uniform(600.0, 7200.0),
                lambda: (p.restore_identity(snap), p.boot()),
            )

        self.system.sim.schedule_at(t, snapshot_and_fail)

    def _schedule_restored_backup(self, peer: PeerNode, duration_days: float) -> None:
        """Run for a while, restore an old backup, run again: two long branches."""
        snap_t = self.rng.uniform(0.1, 0.3) * duration_days * DAY
        restore_t = self.rng.uniform(0.6, 0.8) * duration_days * DAY
        holder: dict[str, object] = {}

        def take_snapshot(p: PeerNode = peer) -> None:
            holder["snap"] = p.snapshot_identity()

        def restore(p: PeerNode = peer) -> None:
            snap = holder.get("snap")
            if snap is not None:
                p.restore_identity(snap)  # type: ignore[arg-type]
                p.boot()

        self.system.sim.schedule_at(snap_t, take_snapshot)
        self.system.sim.schedule_at(restore_t, restore)

    def _schedule_reimaging(self, peer: PeerNode, duration_days: float) -> None:
        """Nightly restore from a master image: several short branches."""
        holder: dict[str, object] = {}

        def take_master(p: PeerNode = peer) -> None:
            holder["snap"] = p.snapshot_identity()

        self.system.sim.schedule_at(0.25 * DAY, take_master)
        nights = int(duration_days) - 1
        for night in range(1, max(2, nights + 1)):
            t = night * DAY + self.rng.uniform(0.0, 3600.0)

            def reimage(p: PeerNode = peer) -> None:
                snap = holder.get("snap")
                if snap is not None:
                    p.restore_identity(snap)  # type: ignore[arg-type]
                    # A few boots during the day off the restored image.
                    p.boot()
                    self.system.sim.schedule(
                        self.rng.uniform(3600.0, 14400.0), p.boot
                    )

            self.system.sim.schedule_at(t, reimage)

    def _schedule_irregular(self, peer: PeerNode, duration_days: float) -> None:
        """Random snapshot/restore chaos (the paper's unexplained patterns)."""
        holder: dict[str, object] = {}
        events = self.rng.randint(3, 6)
        for _ in range(events):
            t = self.rng.uniform(0.05, 0.95) * duration_days * DAY

            def chaos(p: PeerNode = peer) -> None:
                if "snap" not in holder or self.rng.random() < 0.5:
                    holder["snap"] = p.snapshot_identity()
                else:
                    p.restore_identity(holder["snap"])  # type: ignore[arg-type]
                p.boot()

            self.system.sim.schedule_at(t, chaos)
