"""Struct-of-arrays population store with lazy peer materialization.

The paper measured NetSession at ~26M installed peers (§4.1); an object
graph with one :class:`~repro.core.peer.PeerNode` (plus its own 2.5KB
``random.Random`` state, control channel, and access-link resources) per
install tops out around the tens of thousands.  This module stores the
installed base as packed columns — interned geography/AS/NAT ids, link
capacities, provider attribution, per-peer RNG seeds — and materializes a
real ``PeerNode`` only for peers something actually touches: a boot, a
download, a fault token, an adversary assignment.

Equivalence contract (enforced byte-for-byte by ``tests/scale/``):

* **Build draws** replicate object mode exactly.  The build consumes
  ``system.rng``, the broadband model's stream, the NAT model's stream and
  the population RNG in the precise per-peer order
  :meth:`~repro.core.system.NetSessionSystem.create_peer` +
  :func:`~repro.workload.population.build_population` would, so every
  downstream stream (demand, behaviour, catalog) sees identical state.
* **Materialization is draw-free.**  The 64-bit seed object mode would
  have fed each peer's private RNG is recorded per row; materializing
  replays ``random.Random(seed)`` through the GUID draw and hands the
  stream to the node, and the control channel re-derives its own stream
  from the GUID string.  A peer materialized at t=0 and one materialized
  mid-run are indistinguishable from eagerly-built ones.
* **Release reconciles.**  :meth:`ColumnarPopulationStore.release` writes
  a node's mutated scalars back to the columns, parks the non-columnar
  residue (RNG state, counters, identity history) in a sparse side table,
  and drops the node; re-materializing restores the exact state.

Columns use numpy when available (the same soft dependency as the flow
kernel) and fall back to stdlib ``array``/lists otherwise.
"""

from __future__ import annotations

import random
from array import array
from typing import TYPE_CHECKING, Iterator, Mapping

from repro.core.ids import make_guid
from repro.core.peer import PeerNode
from repro.net.links import AccessLink
from repro.net.flows import Resource
from repro.net.nat import NATProfile, NATType

try:  # soft dependency, mirroring the flow kernel's gating
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.content import ContentProvider
    from repro.core.system import NetSessionSystem
    from repro.workload.population import PopulationConfig

__all__ = ["ColumnarPopulationStore", "LazyPeer", "build_columnar_store"]


def _f8(values) -> "array":
    """A float64 column."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.float64)
    return array("d", values)


def _i4(values) -> "array":
    """An int32 column (intern-table indexes, provider codes)."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.int32)
    return array("l", values)


def _u1(values) -> "array":
    """A uint8 flag column."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.uint8)
    return array("B", values)


def _u8(values) -> "array":
    """A uint64 column (per-peer RNG seeds)."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.uint64)
    return array("Q", values)


class _Interner:
    """Id-keyed object interning: shared model objects become int32 indexes."""

    __slots__ = ("objects", "_index")

    def __init__(self):
        self.objects: list = []
        self._index: dict[int, int] = {}

    def intern(self, obj) -> int:
        key = id(obj)
        idx = self._index.get(key)
        if idx is None:
            idx = len(self.objects)
            self.objects.append(obj)
            self._index[key] = idx
        return idx


class LazyPeer:
    """A handle onto one column row; becomes a :class:`PeerNode` on touch.

    Dormant reads (identity, geography, link tier, NAT, upload setting,
    online=False…) are served straight from the columns, so population-wide
    scans — fault victim selection, demand pool bucketing, behaviour
    sweeps — never materialize anyone.  Any *mutation*, any lifecycle call
    (:meth:`boot`, downloads), and any attribute outside the columnar set
    materializes the real node and delegates to it from then on.
    """

    __slots__ = ("_pop", "_i")

    def __init__(self, pop: "ColumnarPopulationStore", i: int):
        object.__setattr__(self, "_pop", pop)
        object.__setattr__(self, "_i", i)

    # ------------------------------------------------------------- plumbing

    def _node(self):
        """The materialized node, or None while dormant."""
        return self._pop._nodes.get(self._i)

    def _real(self) -> PeerNode:
        """Materialize (idempotent) and return the real node."""
        return self._pop.materialize(self._i)

    def __getattr__(self, name: str):
        node = self._pop._nodes.get(self._i)
        if node is not None:
            return getattr(node, name)
        reader = _COLUMN_READS.get(name)
        if reader is not None:
            return reader(self._pop, self._i)
        # Anything outside the columnar surface (link, channel, cache, the
        # setter methods, identity snapshots…) needs the real node.
        return getattr(self._real(), name)

    def __setattr__(self, name: str, value) -> None:
        setattr(self._real(), name, value)

    # ------------------------------------------ lifecycle (materialize-on-call)

    def boot(self) -> None:
        self._real().boot()

    def go_online(self) -> None:
        self._real().go_online()

    def go_offline(self) -> None:
        # A dormant peer is offline; object mode's go_offline is a no-op
        # there, so don't materialize just to do nothing.
        node = self._node()
        if node is not None:
            node.go_offline()

    def churn(self, downtime: float) -> None:
        self._real().churn(downtime)

    def has_complete(self, cid: str) -> bool:
        node = self._node()
        if node is not None:
            return node.has_complete(cid)
        return False  # dormant peers hold nothing (warm seeding materializes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "live" if self._node() is not None else "dormant"
        return f"<LazyPeer #{self._i} {state} {self.guid[:8]}>"


def _residue_get(pop: "ColumnarPopulationStore", i: int, key: str, default):
    res = pop._residue.get(i)
    return res[key] if res is not None and key in res else default


#: Dormant attribute readers: name -> (store, row) -> value.  Must agree
#: exactly with what a freshly built (or released) object-mode peer reports.
_COLUMN_READS = {
    "guid": lambda p, i: p.guids[i],
    "country": lambda p, i: p._countries.objects[p.country_i[i]],
    "city": lambda p, i: p._cities.objects[p.city_i[i]],
    "asys": lambda p, i: p._ases.objects[p.as_i[i]],
    "nat_profile": lambda p, i: p._nats.objects[p.nat_i[i]],
    "uploads_enabled": lambda p, i: bool(p.uploads[i]),
    "installed_from_cp": lambda p, i: int(p.installed_cp[i]),
    "software_version": lambda p, i: f"ns-3.6-cp{int(p.installed_cp[i])}",
    "piece_corruption_prob": lambda p, i: float(p.corruption[i]),
    "accounting_attacker": lambda p, i: bool(p.attacker[i]),
    "adversary_profile": lambda p, i: None,
    "adversary_slow_factor": lambda p, i: 1.0,
    "online": lambda p, i: False,
    "ip": lambda p, i: "",
    "cn": lambda p, i: None,
    "link_busy": lambda p, i: False,
    "active_upload_count": lambda p, i: 0,
    "sessions": lambda p, i: {},
    "lan": lambda p, i: p._lan.get(i),
    "boot_count": lambda p, i: _residue_get(p, i, "boot_count", 0),
    "setting_changes": lambda p, i: _residue_get(p, i, "setting_changes", 0),
    "nat_rebinds": lambda p, i: _residue_get(p, i, "nat_rebinds", 0),
    "uploads_done": lambda p, i: dict(_residue_get(p, i, "uploads_done", ())),
    # Locality shortcuts (PeerNode properties, mirrored here).
    "asn": lambda p, i: p._ases.objects[p.as_i[i]].asn,
    "country_code": lambda p, i: p._countries.objects[p.country_i[i]].code,
    "geo_region": lambda p, i: p._countries.objects[p.country_i[i]].region,
    "network_region": lambda p, i: p._ases.objects[p.as_i[i]].network_region,
    "lan_id": lambda p, i: (
        p._lan[i].site_id if i in p._lan else ""
    ),
    "tz_offset": lambda p, i: float(p.tz[i]),
    "device": lambda p, i: p.device_at(i),
    "device_class": lambda p, i: (
        p._device_classes[p.device_i[i]].name if p.device_i[i] >= 0
        else "desktop"
    ),
}


class _PeerColumnView:
    """Sequence view over the store's rows, yielding cached handles.

    Supports ``len``/index/iterate/``rng.sample`` — everything the former
    ``Population.peers`` list offered to read-only consumers.
    """

    __slots__ = ("_store",)

    def __init__(self, store: "ColumnarPopulationStore"):
        self._store = store

    def __len__(self) -> int:
        return len(self._store)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._store.handle(i)
                    for i in range(*index.indices(len(self._store)))]
        if index < 0:
            index += len(self._store)
        return self._store.handle(index)

    def __iter__(self) -> Iterator[LazyPeer]:
        handle = self._store.handle
        return (handle(i) for i in range(len(self._store)))


class _TzView(Mapping):
    """guid -> timezone-offset mapping served from the tz column."""

    __slots__ = ("_store",)

    def __init__(self, store: "ColumnarPopulationStore"):
        self._store = store

    def __getitem__(self, guid: str) -> float:
        return float(self._store.tz[self._store.index_of(guid)])

    def __iter__(self):
        return iter(self._store.guids)

    def __len__(self) -> int:
        return len(self._store)


class ColumnarPopulationStore:
    """The packed installed base: columns, handles, materialized nodes."""

    def __init__(self, system: "NetSessionSystem"):
        self.system = system
        # Intern tables (shared world/topology/NAT value objects).
        self._countries = _Interner()
        self._cities = _Interner()
        self._ases = _Interner()
        self._nats = _Interner()
        self._tier_names: list[str] = []
        self._tier_index: dict[str, int] = {}
        # Columns (filled by build_columnar_store, then frozen into arrays).
        self.guids: list[str] = []
        self.peer_seeds = _u8(())
        self.country_i = _i4(())
        self.city_i = _i4(())
        self.as_i = _i4(())
        self.tier_i = _i4(())
        self.down_bps = _f8(())
        self.up_bps = _f8(())
        self.nat_i = _i4(())
        self.uploads = _u1(())
        self.installed_cp = _i4(())
        self.corruption = _f8(())
        self.attacker = _u1(())
        self.always_on = _u1(())
        self.tz = _f8(())
        #: Device-tier column: index into ``_device_classes`` or -1 for the
        #: homogeneous default (``PopulationConfig.device`` is None).
        self.device_i = _i4(())
        self._device_classes: tuple = ()
        #: First ``peerN`` naming slot this store occupies (normally 0).
        self.name_base = 0
        # Sparse side tables.
        self._lan: dict[int, object] = {}
        self._residue: dict[int, dict] = {}
        # Live state.
        self._nodes: dict[int, PeerNode] = {}
        self._handles: dict[int, LazyPeer] = {}
        self._guid_index: dict[str, int] | None = None
        #: Peak materialized-node gauge, for the scale benchmark report.
        self.peak_materialized = 0

    # -------------------------------------------------------------- accessors

    def __len__(self) -> int:
        return len(self.guids)

    def handle(self, i: int) -> LazyPeer:
        """The (cached, identity-stable) handle for row ``i``."""
        handle = self._handles.get(i)
        if handle is None:
            handle = self._handles[i] = LazyPeer(self, i)
        return handle

    def handles(self) -> Iterator[LazyPeer]:
        """All handles, in column (creation) order."""
        return iter(_PeerColumnView(self))

    def peers_view(self) -> _PeerColumnView:
        return _PeerColumnView(self)

    def tz_view(self) -> _TzView:
        return _TzView(self)

    def device_at(self, i: int):
        """Row ``i``'s :class:`DeviceClass`, or None without a tier mix."""
        idx = self.device_i[i]
        return self._device_classes[idx] if idx >= 0 else None

    def index_of(self, guid: str) -> int:
        """Row index of ``guid`` (builds the reverse index on first use)."""
        if self._guid_index is None:
            self._guid_index = {g: i for i, g in enumerate(self.guids)}
        return self._guid_index[guid]

    def materialized_nodes(self) -> list[PeerNode]:
        """Materialized nodes in column order (creation-order parity)."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    def materialized_count(self) -> int:
        return len(self._nodes)

    # ---------------------------------------------------------- materialize

    def materialize(self, i: int) -> PeerNode:
        """Build the real node for row ``i`` (idempotent, draw-free).

        Replays the per-peer RNG from its recorded seed through the GUID
        draw — leaving the stream exactly where object mode's constructor
        left it — and reconstructs the access link with the same ``peerN``
        resource names and byte/s capacities the eager build sampled.
        """
        node = self._nodes.get(i)
        if node is not None:
            return node
        system = self.system
        rng = random.Random(int(self.peer_seeds[i]))
        guid = make_guid(rng)
        name = f"peer{self.name_base + i}"
        link = AccessLink(
            downlink=Resource(f"{name}/down", float(self.down_bps[i])),
            uplink=Resource(f"{name}/up", float(self.up_bps[i])),
            tier=self._tier_names[self.tier_i[i]],
        )
        node = PeerNode(
            system,
            self._countries.objects[self.country_i[i]],
            self._cities.objects[self.city_i[i]],
            self._ases.objects[self.as_i[i]],
            link,
            self._nats.objects[self.nat_i[i]],
            uploads_enabled=bool(self.uploads[i]),
            installed_from_cp=int(self.installed_cp[i]),
            guid=guid,
            rng=rng,
        )
        node.piece_corruption_prob = float(self.corruption[i])
        node.accounting_attacker = bool(self.attacker[i])
        node.device = self.device_at(i)
        if i in self._lan:
            node.lan = self._lan[i]
        node._store_index = i
        residue = self._residue.pop(i, None)
        if residue is not None:
            self._restore_residue(node, residue)
        self._nodes[i] = node
        if len(self._nodes) > self.peak_materialized:
            self.peak_materialized = len(self._nodes)
        system.all_peers.append(node)
        system.peer_by_guid[guid] = node
        return node

    @staticmethod
    def _restore_residue(node: PeerNode, residue: dict) -> None:
        node.rng.setstate(residue["rng_state"])
        node.secondary_history.extend(residue["secondary_history"])
        node.boot_count = residue["boot_count"]
        node.setting_changes = residue["setting_changes"]
        node.nat_rebinds = residue["nat_rebinds"]
        node.uploads_done = dict(residue["uploads_done"])
        node.channel.rng.setstate(residue["channel_rng_state"])
        node.channel.times_degraded = residue["channel_times_degraded"]

    # --------------------------------------------------------------- release

    def release(self, peer) -> None:
        """Reconcile a quiescent node back to the columns and drop it.

        The peer must be offline with no live sessions, uploads, or cached
        (hence registrable) content — i.e. nothing in the running system can
        still point at the node.  Mutated scalars are written back to the
        columns; non-columnar state (RNG position, identity history,
        counters, channel stream) is parked in the sparse residue table and
        restored verbatim on re-materialization.
        """
        i = getattr(peer, "_store_index", None)
        if i is None:
            raise ValueError("peer was not materialized from this store")
        node = self._nodes.get(i)
        if node is None:
            return  # already dormant
        if node.online:
            raise ValueError(f"cannot release online peer {node.guid[:8]}")
        if node.sessions or node.upload_flows or node.active_upload_count:
            raise ValueError(f"peer {node.guid[:8]} has live transfers")
        if node.cache:
            raise ValueError(f"peer {node.guid[:8]} still caches content")
        # Scalars go back to the columns…
        self.country_i[i] = self._countries.intern(node.country)
        self.city_i[i] = self._cities.intern(node.city)
        self.as_i[i] = self._ases.intern(node.asys)
        self.nat_i[i] = self._nats.intern(node.nat_profile)
        self.uploads[i] = 1 if node.uploads_enabled else 0
        self.corruption[i] = node.piece_corruption_prob
        self.attacker[i] = 1 if node.accounting_attacker else 0
        if node.lan is not None:
            self._lan[i] = node.lan
        else:
            self._lan.pop(i, None)
        # …the rest into the residue side table.
        self._residue[i] = {
            "rng_state": node.rng.getstate(),
            "secondary_history": tuple(node.secondary_history),
            "boot_count": node.boot_count,
            "setting_changes": node.setting_changes,
            "nat_rebinds": node.nat_rebinds,
            "uploads_done": dict(node.uploads_done),
            "channel_rng_state": node.channel.rng.getstate(),
            "channel_times_degraded": node.channel.times_degraded,
        }
        del self._nodes[i]
        system = self.system
        system.peer_by_guid.pop(node.guid, None)
        try:
            system.all_peers.remove(node)
        except ValueError:  # pragma: no cover - defensive
            pass


def build_columnar_store(
    system: "NetSessionSystem",
    providers: list["ContentProvider"],
    cfg: "PopulationConfig",
    rng: random.Random,
) -> ColumnarPopulationStore:
    """Sample the installed base straight into columns.

    Consumes ``system.rng``, the broadband/NAT model streams and the
    population RNG in exactly the per-peer order the object-mode build
    (``create_peer`` + the build loop) would, so everything downstream of
    population synthesis sees identical RNG state regardless of store.
    """
    store = ColumnarPopulationStore(system)
    world, topology = system.world, system.topology
    sys_rng = system.rng
    store.name_base = system._peer_seq

    n = cfg.n_peers
    guids = store.guids
    seeds, country_i, city_i, as_i = [], [], [], []
    tier_i, down, up, nat_i = [], [], [], []
    uploads, installed, corruption, attacker, always, tz = [], [], [], [], [], []
    device_i = []
    default_corruption = system.config.client.piece_corruption_prob
    mix = cfg.device
    if mix is not None:
        store._device_classes = mix.classes
        device_index = {cls.name: j for j, cls in enumerate(mix.classes)}

    for _ in range(n):
        installed_from = rng.choice(providers) if providers else None
        country = world.sample_country(sys_rng)
        city = world.sample_city(country, sys_rng)
        asys = topology.sample_as(country.code, sys_rng)
        link = system.broadband.sample(
            f"peer{system.next_peer_name_index()}",
            speed_multiplier=country.speed_multiplier,
        )
        nat = system.nat_model.sample()
        if installed_from is not None:
            uploads_enabled = sys_rng.random() < installed_from.upload_default_rate
        else:
            uploads_enabled = True
        peer_seed = sys_rng.getrandbits(64)
        guid = make_guid(random.Random(peer_seed))

        broken = rng.random() < cfg.broken_fraction
        is_attacker = rng.random() < cfg.attacker_fraction
        is_always_on = rng.random() < cfg.always_on_fraction
        if mix is None:
            device_i.append(-1)
        else:
            # Exactly the object-mode draw order: class pick, always-on
            # override, optional NAT override (only for classes with one).
            cls = mix.pick(rng.random())
            device_i.append(device_index[cls.name])
            if rng.random() < cls.always_on_prob:
                is_always_on = True
            if cls.nat_open_prob is not None and rng.random() < cls.nat_open_prob:
                nat = NATProfile(true_type=NATType.OPEN,
                                 reported_type=NATType.OPEN)

        guids.append(guid)
        seeds.append(peer_seed)
        country_i.append(store._countries.intern(country))
        city_i.append(store._cities.intern(city))
        as_i.append(store._ases.intern(asys))
        tier = link.tier
        t = store._tier_index.get(tier)
        if t is None:
            t = store._tier_index[tier] = len(store._tier_names)
            store._tier_names.append(tier)
        tier_i.append(t)
        down.append(link.down_bps)
        up.append(link.up_bps)
        nat_i.append(store._nats.intern(nat))
        uploads.append(1 if uploads_enabled else 0)
        installed.append(installed_from.cp_code if installed_from else 0)
        corruption.append(cfg.broken_corruption_prob if broken else default_corruption)
        attacker.append(1 if is_attacker else 0)
        always.append(1 if is_always_on else 0)
        tz.append((city.lon / 15.0) * 3600.0)

    store.peer_seeds = _u8(seeds)
    store.country_i = _i4(country_i)
    store.city_i = _i4(city_i)
    store.as_i = _i4(as_i)
    store.tier_i = _i4(tier_i)
    store.down_bps = _f8(down)
    store.up_bps = _f8(up)
    store.nat_i = _i4(nat_i)
    store.uploads = _u1(uploads)
    store.installed_cp = _i4(installed)
    store.corruption = _f8(corruption)
    store.attacker = _u1(attacker)
    store.always_on = _u1(always)
    store.tz = _f8(tz)
    store.device_i = _i4(device_i)
    return store
