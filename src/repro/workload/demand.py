"""Request arrivals: who downloads what, where, and when.

Calibration targets:

* **Figure 3(b)** — Zipf object popularity (inherited from the catalog
  weights);
* **Figure 3(c)** — diurnal bytes-per-hour pattern (arrivals are thinned by
  the local-time activity curve of the destination region);
* **Table 2** — each provider's regional download mix steers which region a
  request lands in.

Arrivals are a non-homogeneous Poisson process realised by inversion over a
piecewise-constant rate.  Each arrival picks a provider (by volume share),
an object (catalog popularity), a destination region (the provider's
Table 2 mix), and finally an online peer in that region — booting an offline
one if necessary, which is realistic: people turn the machine on to start a
download.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field

from repro.core.content import ContentObject
from repro.core.peer import PeerNode
from repro.core.system import NetSessionSystem
from repro.workload.catalog import Catalog
from repro.workload.population import DAY, Population, diurnal_rate

__all__ = ["DemandConfig", "DemandGenerator"]

#: Default download-volume share per paper customer A..J (the paper does not
#: publish absolute volumes; the shares below give every customer enough
#: traffic for Table 2 statistics while keeping a realistic skew).
DEFAULT_PROVIDER_SHARES = (0.20, 0.14, 0.12, 0.11, 0.10, 0.08, 0.08, 0.07, 0.05, 0.05)


@dataclass(frozen=True)
class DemandConfig:
    """Knobs for the arrival process."""

    total_downloads: int = 5000
    duration_days: float = 7.0
    provider_shares: tuple[float, ...] = DEFAULT_PROVIDER_SHARES
    #: Probability that a download of provider X's content is performed by a
    #: peer whose NetSession install came bundled with X's software.  Users
    #: downloading a game run that game's client — this is what makes the
    #: holders of a provider's content share that provider's Table 4 upload
    #: default.
    install_affinity: float = 0.8
    #: Representative timezone offsets (seconds) per region, used to phase
    #: the diurnal curve of arrivals targeted at that region.
    region_tz: dict[str, float] = field(default_factory=lambda: {
        "US East": -5 * 3600.0, "US West": -8 * 3600.0,
        "Americas Other": -4 * 3600.0, "Europe": 1 * 3600.0,
        "India": 5.5 * 3600.0, "China": 8 * 3600.0,
        "Asia Other": 8 * 3600.0, "Africa": 2 * 3600.0,
        "Oceania": 10 * 3600.0,
    })

    def __post_init__(self):
        if self.total_downloads <= 0:
            raise ValueError("total_downloads must be positive")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")


class DemandGenerator:
    """Schedules download requests onto a running system."""

    def __init__(
        self,
        system: NetSessionSystem,
        population: Population,
        catalog: Catalog,
        config: DemandConfig | None = None,
    ):
        self.system = system
        self.population = population
        self.catalog = catalog
        self.config = config if config is not None else DemandConfig()
        self.rng = random.Random(system.rng.getrandbits(64))
        self._peers_by_region: dict[str, list[PeerNode]] = {}
        self._peers_by_region_cp: dict[tuple[str, int], list[PeerNode]] = {}
        for peer in population.iter_peers():
            self._peers_by_region.setdefault(peer.geo_region, []).append(peer)
            key = (peer.geo_region, peer.installed_from_cp)
            self._peers_by_region_cp.setdefault(key, []).append(peer)
        self.requests_issued = 0
        self.requests_dropped = 0
        #: Sessions created by this generator, for behaviour attachment.
        self.on_session_started = None  # callback(session) or None

    # ------------------------------------------------------------ scheduling

    def schedule_all(self) -> int:
        """Pre-schedule every arrival for the configured duration.

        Returns the number of arrivals scheduled.
        """
        cfg = self.config
        horizon = cfg.duration_days * DAY
        providers = self.catalog.providers
        shares = list(cfg.provider_shares[: len(providers)])
        if len(shares) < len(providers):
            shares += [shares[-1]] * (len(providers) - len(shares))

        for _ in range(cfg.total_downloads):
            provider = self.rng.choices(providers, weights=shares, k=1)[0]
            obj = self._sample_object(provider.cp_code)
            region = self._sample_region(provider.region_mix)
            t = self._sample_arrival_time(region, horizon)
            self.system.sim.schedule_at(
                t, lambda o=obj, r=region: self._on_arrival(o, r)
            )
        return cfg.total_downloads

    def _sample_object(self, cp_code: int) -> ContentObject:
        objects = self.catalog.by_provider[cp_code]
        weights = self.catalog.provider_weights(cp_code)
        return self.rng.choices(objects, weights=weights, k=1)[0]

    def _sample_region(self, mix: dict[str, float]) -> str:
        regions = list(mix.keys())
        weights = list(mix.values())
        if not regions:
            return "Europe"
        return self.rng.choices(regions, weights=weights, k=1)[0]

    def _sample_arrival_time(self, region: str, horizon: float) -> float:
        """Inverse-CDF sample from the diurnal rate curve for a region."""
        tz = self.config.region_tz.get(region, 0.0)
        # Piecewise-constant rate at hourly resolution over the horizon.
        cdf = _diurnal_cdf(horizon, tz)
        u = self.rng.random() * cdf[-1]
        idx = bisect.bisect_left(cdf, u)
        lo = idx * 3600.0
        return min(horizon - 1.0, lo + self.rng.uniform(0.0, 3600.0))

    # --------------------------------------------------------------- arrivals

    def _on_arrival(self, obj: ContentObject, region: str) -> None:
        peer = self._pick_peer(region, obj)
        if peer is None:
            self.requests_dropped += 1
            return
        if not peer.online:
            peer.boot()
        if obj.cid in peer.sessions or peer.has_complete(obj.cid):
            self.requests_dropped += 1
            return
        session = peer.start_download(obj)
        self.requests_issued += 1
        if self.on_session_started is not None:
            self.on_session_started(session)

    def _pick_peer(self, region: str, obj: ContentObject) -> PeerNode | None:
        pools: list[list[PeerNode]] = []
        if self.rng.random() < self.config.install_affinity:
            affine = self._peers_by_region_cp.get((region, obj.provider.cp_code))
            if affine:
                pools.append(affine)
        regional = self._peers_by_region.get(region)
        if regional:
            pools.append(regional)
        # Tiny scenarios may lack peers in the target region entirely.
        pools.append(self.population.peers)

        def eligible(peer: PeerNode, need_online: bool) -> bool:
            if obj.cid in peer.sessions or peer.has_complete(obj.cid):
                return False
            return peer.online or not need_online

        # Prefer an online, idle peer in the most specific pool; widen the
        # pool (existing holders don't re-download, so saturated pools must
        # not starve demand), then drop the online requirement (the user
        # turns the machine on to start the download).
        for need_online in (True, False):
            for pool in pools:
                if not pool:
                    continue
                for _ in range(12):
                    peer = self.rng.choice(pool)
                    if eligible(peer, need_online):
                        return peer
        return None


def _diurnal_cdf(horizon: float, tz: float) -> list[float]:
    """Cumulative hourly mass of the diurnal curve over [0, horizon)."""
    hours = max(1, int(horizon // 3600))
    cdf: list[float] = []
    total = 0.0
    for h in range(hours):
        total += diurnal_rate(h * 3600.0, tz)
        cdf.append(total)
    return cdf
