"""Device-tier profiles for the heterogeneous peer population.

The paper treats NetSession installs as interchangeable desktops, but real
peer-assisted CDNs are dominated by device heterogeneity: always-on
router-class boxes carry a disproportionate share of the offload while
mobile installs churn fast and contribute little.  A ``DeviceClass``
bundles the knobs that differ across hardware tiers — session/uptime
behavior, storage budget, uplink cap, NAT openness, mobility, and an
optional selection-ranking weight — and a ``DeviceMixConfig`` declares the
population's class shares on ``PopulationConfig.device``.

The default (``device=None``) draws nothing and changes nothing: every
existing golden stays byte-identical.  When a mix is declared, both the
object and the columnar population builds consume exactly the same RNG
draws per peer (class pick, always-on override, optional NAT override), so
store parity holds with tiers enabled too.
"""

from __future__ import annotations

from dataclasses import dataclass

_MOBILITY_KINDS = ("default", "stationary", "nomadic")


@dataclass(frozen=True)
class DeviceClass:
    """One hardware tier: shares, availability, and resource budgets.

    ``uplink_cap_bps`` / ``cache_objects`` of ``None`` mean "no class
    limit" (the access link / retention policy governs, as before).
    ``nat_open_prob`` of ``None`` keeps the sampled NAT profile; a float
    forces an OPEN NAT with that probability (router-class devices control
    their own port mappings).  ``selection_weight`` feeds CN candidate
    ranking when any class sets it non-zero; all-zero keeps ranking off.
    """

    name: str
    share: float
    always_on_prob: float = 0.0
    uptime_hours_mean: float = 10.0
    daily_skip_prob: float = 0.12
    uplink_cap_bps: float | None = None
    cache_objects: int | None = None
    nat_open_prob: float | None = None
    selection_weight: float = 0.0
    mobility: str = "default"
    link_busy_mult: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("device class needs a name")
        if self.share < 0:
            raise ValueError(f"{self.name}: share must be >= 0")
        for prob_name in ("always_on_prob", "daily_skip_prob"):
            value = getattr(self, prob_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {prob_name} outside [0, 1]")
        if self.nat_open_prob is not None and not 0.0 <= self.nat_open_prob <= 1.0:
            raise ValueError(f"{self.name}: nat_open_prob outside [0, 1]")
        if self.uptime_hours_mean <= 0:
            raise ValueError(f"{self.name}: uptime_hours_mean must be > 0")
        if self.uplink_cap_bps is not None and self.uplink_cap_bps <= 0:
            raise ValueError(f"{self.name}: uplink_cap_bps must be > 0")
        if self.cache_objects is not None and self.cache_objects < 1:
            raise ValueError(f"{self.name}: cache_objects must be >= 1")
        if self.mobility not in _MOBILITY_KINDS:
            raise ValueError(
                f"{self.name}: mobility {self.mobility!r} not in {_MOBILITY_KINDS}")
        if self.link_busy_mult < 0:
            raise ValueError(f"{self.name}: link_busy_mult must be >= 0")


@dataclass(frozen=True)
class DeviceMixConfig:
    """The population's device-class shares (normalized at draw time)."""

    classes: tuple[DeviceClass, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("device mix needs at least one class")
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate device class names: {names}")
        if sum(cls.share for cls in self.classes) <= 0:
            raise ValueError("device mix shares sum to zero")

    def by_name(self, name: str) -> DeviceClass:
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError(name)

    def pick(self, roll: float) -> DeviceClass:
        """Map one uniform [0, 1) draw to a class via cumulative shares."""
        total = sum(cls.share for cls in self.classes)
        acc = 0.0
        for cls in self.classes:
            acc += cls.share / total
            if roll < acc:
                return cls
        return self.classes[-1]

    def rank_weights(self) -> dict[str, float] | None:
        """Per-class selection weights, or None when ranking is off."""
        if all(cls.selection_weight == 0.0 for cls in self.classes):
            return None
        return {cls.name: cls.selection_weight for cls in self.classes}


# -- Preset mixes ------------------------------------------------------------
# Shares loosely follow the smartrouter-CDN measurement literature: a small
# always-on router tier, a fat desktop middle, a churny mobile slice, and
# living-room set-top boxes that are on in the evening but storage-poor.

_DESKTOP = DeviceClass(name="desktop", share=0.62)
_SMARTROUTER = DeviceClass(
    name="smartrouter", share=0.08, always_on_prob=0.95,
    uptime_hours_mean=22.0, daily_skip_prob=0.01,
    uplink_cap_bps=500_000.0,       # ~4 Mbit/s dedicated upstream budget
    cache_objects=64, nat_open_prob=0.9, mobility="stationary",
    link_busy_mult=0.25)
_MOBILE = DeviceClass(
    name="mobile", share=0.22, uptime_hours_mean=3.0, daily_skip_prob=0.35,
    uplink_cap_bps=60_000.0,        # ~0.5 Mbit/s cellular-friendly cap
    cache_objects=4, mobility="nomadic", link_busy_mult=2.0)
_SETTOP = DeviceClass(
    name="settop", share=0.08, always_on_prob=0.30,
    uptime_hours_mean=6.0, daily_skip_prob=0.20,
    cache_objects=8, mobility="stationary", link_busy_mult=0.5)


def default_mix() -> DeviceMixConfig:
    """Desktop-dominated mix with router/mobile/settop minorities."""
    return DeviceMixConfig(classes=(_DESKTOP, _SMARTROUTER, _MOBILE, _SETTOP))


def desktop_only() -> DeviceMixConfig:
    """Single class whose parameters match the homogeneous defaults.

    Statistically equivalent to ``device=None`` (the class neither caps
    nor reshapes anything); used to price tier-assignment overhead.
    """
    return DeviceMixConfig(classes=(DeviceClass(name="desktop", share=1.0),))


def router_heavy() -> DeviceMixConfig:
    """Operator-subsidized smartrouter deployment (large always-on tier)."""
    classes = tuple(
        DeviceClass(**{**cls.__dict__, "share": share})
        for cls, share in ((_DESKTOP, 0.45), (_SMARTROUTER, 0.30),
                           (_MOBILE, 0.17), (_SETTOP, 0.08)))
    return DeviceMixConfig(classes=classes)


def mobile_heavy() -> DeviceMixConfig:
    """Mobile-first install base (churny, upload-poor majority)."""
    classes = tuple(
        DeviceClass(**{**cls.__dict__, "share": share})
        for cls, share in ((_DESKTOP, 0.25), (_SMARTROUTER, 0.05),
                           (_MOBILE, 0.62), (_SETTOP, 0.08)))
    return DeviceMixConfig(classes=classes)


PRESET_MIXES = {
    "balanced": default_mix,
    "desktop_only": desktop_only,
    "router_heavy": router_heavy,
    "mobile_heavy": mobile_heavy,
}
