"""User mobility: laptops, commutes, travel, and VPNs (paper §6.2).

Calibration targets from the paper's trace:

* 80.6% of GUIDs connected from a single AS, 13.4% from two, 6% from more
  than two;
* 77% of GUIDs stayed within 10 km (max pairwise geolocation distance),
  23% moved farther;
* the control plane absorbs ~20,922 new connections per minute of
  mobility/churn workload.

The model gives each peer a mobility class:

* **stationary** — one location, one AS (the majority);
* **commuter** — a second regular location (work), usually a different AS
  in the same city/country; moves there and back on weekdays;
* **roamer** — several locations across ASes (field workers, laptop-heavy
  users, VPN users whose exit changes) visited at random;
* **traveler** — one long-distance trip during the trace (drives the >10 km
  tail together with roamers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.peer import PeerNode
from repro.core.system import NetSessionSystem
from repro.net.geo import City, Country
from repro.net.topology import AutonomousSystem
from repro.workload.population import DAY, Population

__all__ = ["MobilityConfig", "MobilityModel"]


@dataclass(frozen=True)
class MobilityConfig:
    """Mobility class mix and movement parameters."""

    commuter_fraction: float = 0.135
    roamer_fraction: float = 0.05
    traveler_fraction: float = 0.012
    #: Probability a commuter's work location is in a different AS.
    commuter_as_change_prob: float = 0.95
    #: Probability a commuter's work location is a different city (>10 km);
    #: the rest commute within the same city (suburb-level moves).
    commuter_far_prob: float = 0.55
    #: Locations a roamer cycles through (inclusive bounds).
    roamer_locations: tuple[int, int] = (3, 5)

    def __post_init__(self):
        total = self.commuter_fraction + self.roamer_fraction + self.traveler_fraction
        if total > 1.0:
            raise ValueError("mobility class fractions exceed 1.0")


@dataclass
class _Site:
    country: Country
    city: City
    asys: AutonomousSystem


class MobilityModel:
    """Assigns mobility classes and schedules the movements."""

    def __init__(self, system: NetSessionSystem, config: MobilityConfig | None = None):
        self.system = system
        self.config = config if config is not None else MobilityConfig()
        self.rng = random.Random(system.rng.getrandbits(64))
        self.classes: dict[str, str] = {}

    def apply(self, population: Population, duration_days: float) -> dict[str, int]:
        """Classify every peer and schedule its movements.

        Returns the class census (class name -> count).
        """
        census = {"stationary": 0, "commuter": 0, "roamer": 0, "traveler": 0}
        for peer in population.iter_peers():
            device = peer.device
            cls = self._draw_class(
                device.mobility if device is not None else "default")
            self.classes[peer.guid] = cls
            census[cls] += 1
            if cls == "commuter":
                self._schedule_commuter(peer, duration_days)
            elif cls == "roamer":
                self._schedule_roamer(peer, duration_days)
            elif cls == "traveler":
                self._schedule_traveler(peer, duration_days)
        return census

    def _draw_class(self, device_mobility: str = "default") -> str:
        """One uniform draw, mapped through the class fractions.

        ``device_mobility`` reshapes the mapping without changing the draw
        count: "stationary" devices (wall-plugged routers, set-top boxes)
        never move; "nomadic" ones (phones) roam and travel three times as
        often.  "default" is the unmodified population mix.
        """
        cfg = self.config
        u = self.rng.random()
        if device_mobility == "stationary":
            return "stationary"
        scale = 3.0 if device_mobility == "nomadic" else 1.0
        if u < cfg.commuter_fraction:
            return "commuter"
        u -= cfg.commuter_fraction
        if u < scale * cfg.roamer_fraction:
            return "roamer"
        u -= scale * cfg.roamer_fraction
        if u < scale * cfg.traveler_fraction:
            return "traveler"
        return "stationary"

    # ----------------------------------------------------------------- sites

    def _work_site(self, peer: PeerNode) -> _Site:
        """A commuter's second site: usually another AS, sometimes far."""
        cfg = self.config
        country = peer.country
        if self.rng.random() < cfg.commuter_far_prob and len(country.cities) > 1:
            others = [c for c in country.cities if c.name != peer.city.name]
            city = self.rng.choice(others)
        else:
            city = peer.city
        if self.rng.random() < cfg.commuter_as_change_prob:
            asys = peer.asys
            # The dominant ISP often serves both home and office; resample a
            # few times to actually land in a different AS when the country
            # has more than one.
            for _ in range(8):
                candidate = self.system.topology.sample_as(country.code, self.rng)
                if candidate.asn != peer.asn:
                    asys = candidate
                    break
        else:
            asys = peer.asys
        return _Site(country, city, asys)

    def _random_site(self) -> _Site:
        country = self.system.world.sample_country(self.rng)
        city = self.system.world.sample_city(country, self.rng)
        asys = self.system.topology.sample_as(country.code, self.rng)
        return _Site(country, city, asys)

    # ------------------------------------------------------------- schedules

    def _schedule_commuter(self, peer: PeerNode, duration_days: float) -> None:
        home = _Site(peer.country, peer.city, peer.asys)
        work = self._work_site(peer)
        for day in range(int(duration_days)):
            if day % 7 >= 5:
                continue  # weekends at home
            go = day * DAY + self.rng.gauss(9.0, 0.5) * 3600.0
            back = day * DAY + self.rng.gauss(18.0, 0.8) * 3600.0
            if go > 0:
                self.system.sim.schedule_at(
                    go, lambda s=work, p=peer: p.move_to(s.country, s.city, s.asys)
                )
            if back > go:
                self.system.sim.schedule_at(
                    back, lambda s=home, p=peer: p.move_to(s.country, s.city, s.asys)
                )

    def _schedule_roamer(self, peer: PeerNode, duration_days: float) -> None:
        lo, hi = self.config.roamer_locations
        sites = [_Site(peer.country, peer.city, peer.asys)]
        sites += [self._random_site() for _ in range(self.rng.randint(lo - 1, hi - 1))]
        moves = max(2, int(duration_days))
        for _ in range(moves):
            t = self.rng.uniform(0, duration_days * DAY)
            site = self.rng.choice(sites)
            self.system.sim.schedule_at(
                t, lambda s=site, p=peer: p.move_to(s.country, s.city, s.asys)
            )

    def _schedule_traveler(self, peer: PeerNode, duration_days: float) -> None:
        home = _Site(peer.country, peer.city, peer.asys)
        away = self._random_site()
        depart = self.rng.uniform(0.1, 0.6) * duration_days * DAY
        ret = depart + self.rng.uniform(0.1, 0.3) * duration_days * DAY
        self.system.sim.schedule_at(
            depart, lambda s=away, p=peer: p.move_to(s.country, s.city, s.asys)
        )
        if ret < duration_days * DAY:
            self.system.sim.schedule_at(
                ret, lambda s=home, p=peer: p.move_to(s.country, s.city, s.asys)
            )
