"""Peer population synthesis.

Creates the installed base: peers distributed over countries/ASes per the
world model (Figure 2's geography), each bundled by one of the content
providers (which sets the Table 4 upload default), with a small fraction of
*broken* machines (high piece-corruption rate) and *attackers* (accounting
misreporters) to exercise the §6.2 robustness machinery.

Also drives the **online-session process**: NetSession runs whenever the
user is logged in (§3.4), so sessions track the user's computer-use day —
long daily sessions with a diurnal phase per timezone, unlike the short
sessions of launch-on-demand p2p clients.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.content import ContentProvider
from repro.core.peer import PeerNode
from repro.core.system import NetSessionSystem
from repro.net.lan import LanSite

__all__ = ["PopulationConfig", "Population", "build_population", "diurnal_rate"]

DAY = 24 * 3600.0


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs for population synthesis and the online-session process."""

    n_peers: int = 2000
    #: Fraction of machines with a fault that corrupts uploaded pieces.
    broken_fraction: float = 0.002
    #: Piece-corruption probability on broken machines.
    broken_corruption_prob: float = 0.25
    #: Fraction of peers running a client modified to misreport usage.
    attacker_fraction: float = 0.0
    #: Mean hours per day a user's machine is on (and NetSession running).
    mean_daily_uptime_hours: float = 10.0
    #: Probability a peer is effectively always-on (desktops left running).
    always_on_fraction: float = 0.15
    #: Fraction of peers that sit in corporate LAN sites (§5.3's case —
    #: "rare" in the paper's 2012 trace, so zero by default).
    corporate_fraction: float = 0.0
    #: Site size range (machines per office), inclusive.
    site_size_range: tuple[int, int] = (8, 40)

    def __post_init__(self):
        if self.n_peers <= 0:
            raise ValueError("n_peers must be positive")
        if not 0 <= self.broken_fraction <= 1:
            raise ValueError("broken_fraction must be in [0, 1]")
        if not 0 < self.mean_daily_uptime_hours <= 24:
            raise ValueError("mean_daily_uptime_hours must be in (0, 24]")


@dataclass
class Population:
    """The installed base plus per-peer session schedules."""

    peers: list[PeerNode]
    #: Local-midnight offset (seconds) per peer, derived from longitude.
    tz_offset: dict[str, float]
    always_on: set[str]
    #: Corporate LAN sites, keyed by site id (§5.3 extension).
    sites: dict[str, "LanSite"] = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.sites is None:
            self.sites = {}

    def peer_count(self) -> int:
        """Number of installations."""
        return len(self.peers)


def build_population(
    system: NetSessionSystem,
    providers: list[ContentProvider],
    config: PopulationConfig | None = None,
) -> Population:
    """Create peers and schedule their daily online sessions.

    Each peer is attributed to the provider it first installed from,
    weighted by that provider's share of downloads — so the Table 4
    upload-default mix emerges naturally.
    """
    cfg = config if config is not None else PopulationConfig()
    rng = random.Random(system.rng.getrandbits(64))
    peers: list[PeerNode] = []
    tz_offset: dict[str, float] = {}
    always_on: set[str] = set()

    for _ in range(cfg.n_peers):
        installed_from = rng.choice(providers) if providers else None
        peer = system.create_peer(installed_from=installed_from)
        if rng.random() < cfg.broken_fraction:
            peer.piece_corruption_prob = cfg.broken_corruption_prob
        if rng.random() < cfg.attacker_fraction:
            peer.accounting_attacker = True
        peers.append(peer)
        # Local solar time from longitude: 15 degrees per hour.
        tz_offset[peer.guid] = (peer.city.lon / 15.0) * 3600.0
        if rng.random() < cfg.always_on_fraction:
            always_on.add(peer.guid)

    population = Population(peers=peers, tz_offset=tz_offset, always_on=always_on)
    _assign_corporate_sites(population, cfg, rng)
    _schedule_sessions(system, population, cfg, rng)
    return population


def _assign_corporate_sites(population: Population, cfg: PopulationConfig,
                            rng: random.Random) -> None:
    """Group a slice of the population into same-city LAN sites (§5.3).

    Site members must share a physical location, so peers are bucketed by
    (country, city, AS) and sites carved out of the buckets.
    """
    if cfg.corporate_fraction <= 0:
        return
    target = int(round(cfg.corporate_fraction * len(population.peers)))
    buckets: dict[tuple[str, str, int], list[PeerNode]] = {}
    for peer in population.peers:
        key = (peer.country_code, peer.city.name, peer.asn)
        buckets.setdefault(key, []).append(peer)

    placed = 0
    site_index = 0
    for key in sorted(buckets, key=lambda k: -len(buckets[k])):
        if placed >= target:
            break
        pool = buckets[key]
        lo, hi = cfg.site_size_range
        while len(pool) >= lo and placed < target:
            size = min(len(pool), rng.randint(lo, hi), target - placed + lo)
            members, pool[:] = pool[:size], pool[size:]
            site = LanSite(f"site-{site_index:04d}")
            site_index += 1
            for member in members:
                member.lan = site
                site.add_member(member.guid)
            population.sites[site.site_id] = site
            placed += len(members)


def _schedule_sessions(
    system: NetSessionSystem,
    population: Population,
    cfg: PopulationConfig,
    rng: random.Random,
) -> None:
    """Schedule boot/shutdown cycles for every peer.

    Always-on peers boot once.  Daily-cycle peers boot each local morning
    (with jitter) and shut down after a sampled uptime; a small per-day skip
    probability models days the machine stays off.
    """
    sim = system.sim
    for peer in population.peers:
        if peer.guid in population.always_on:
            sim.schedule(rng.uniform(0, 3600.0), peer.boot)
            continue
        offset = population.tz_offset[peer.guid]
        uptime_mean = cfg.mean_daily_uptime_hours * 3600.0
        _schedule_peer_days(system, peer, offset, uptime_mean, rng)


def _schedule_peer_days(
    system: NetSessionSystem,
    peer: PeerNode,
    tz_offset: float,
    uptime_mean: float,
    rng: random.Random,
    *,
    horizon_days: int = 40,
) -> None:
    sim = system.sim
    for day in range(horizon_days):
        if rng.random() < 0.12:
            continue  # machine stays off today
        # Local morning start: 8am ± 2h, mapped back to simulation (UTC) time.
        local_start = day * DAY + rng.gauss(8.0, 2.0) * 3600.0
        start = local_start - tz_offset
        if start < sim.now:
            continue
        uptime = max(1800.0, rng.expovariate(1.0 / uptime_mean))
        uptime = min(uptime, 23.0 * 3600.0)
        sim.schedule_at(start, peer.boot)
        sim.schedule_at(start + uptime, peer.go_offline)


def diurnal_rate(t: float, tz_offset: float = 0.0) -> float:
    """Relative activity level at simulated time ``t`` for a timezone.

    A smooth day curve peaking in the local evening (~20:00) and bottoming
    early morning (~04:00), as in Figure 3(c)'s diurnal download pattern.
    Returns a multiplier in [0.15, 1.0].
    """
    local = (t + tz_offset) % DAY
    hours = local / 3600.0
    # Cosine with peak at 20h.
    phase = math.cos((hours - 20.0) / 24.0 * 2.0 * math.pi)
    return 0.575 + 0.425 * phase
