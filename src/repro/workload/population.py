"""Peer population synthesis.

Creates the installed base: peers distributed over countries/ASes per the
world model (Figure 2's geography), each bundled by one of the content
providers (which sets the Table 4 upload default), with a small fraction of
*broken* machines (high piece-corruption rate) and *attackers* (accounting
misreporters) to exercise the §6.2 robustness machinery.

Also drives the **online-session process**: NetSession runs whenever the
user is logged in (§3.4), so sessions track the user's computer-use day —
long daily sessions with a diurnal phase per timezone, unlike the short
sessions of launch-on-demand p2p clients.

Two interchangeable stores back the population (``PopulationConfig.store``):

* ``object`` — the original eager graph: one :class:`PeerNode` per install.
* ``columnar`` — a struct-of-arrays store with lazy materialization
  (:mod:`repro.workload.columnar`), byte-for-byte equivalent by contract
  (``tests/scale/``) and the only store that reaches paper-scale
  populations (§4.1's tens of millions).

``auto`` resolves through ``REPRO_POPULATION_STORE`` the way the flow
kernel resolves through ``REPRO_KERNEL``, and is a cache key once resolved.
"""

from __future__ import annotations

import math
import os
import random
from dataclasses import dataclass
from typing import Iterator

from repro.core.content import ContentProvider
from repro.core.peer import PeerNode
from repro.core.system import NetSessionSystem
from repro.net.lan import LanSite
from repro.net.nat import NATProfile, NATType
from repro.workload.devices import DeviceMixConfig

__all__ = ["PopulationConfig", "Population", "build_population", "diurnal_rate"]

DAY = 24 * 3600.0

_STORES = ("auto", "object", "columnar")


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs for population synthesis and the online-session process."""

    n_peers: int = 2000
    #: Fraction of machines with a fault that corrupts uploaded pieces.
    broken_fraction: float = 0.002
    #: Piece-corruption probability on broken machines.
    broken_corruption_prob: float = 0.25
    #: Fraction of peers running a client modified to misreport usage.
    attacker_fraction: float = 0.0
    #: Mean hours per day a user's machine is on (and NetSession running).
    mean_daily_uptime_hours: float = 10.0
    #: Probability a peer is effectively always-on (desktops left running).
    always_on_fraction: float = 0.15
    #: Fraction of peers that sit in corporate LAN sites (§5.3's case —
    #: "rare" in the paper's 2012 trace, so zero by default).
    corporate_fraction: float = 0.0
    #: Site size range (machines per office), inclusive.
    site_size_range: tuple[int, int] = (8, 40)
    #: Population store: "object" (eager PeerNode graph), "columnar"
    #: (struct-of-arrays + lazy materialization), or "auto" (resolve
    #: through the ``REPRO_POPULATION_STORE`` env var; columnar default).
    #: The two stores are byte-for-byte equivalent (``tests/scale/``).
    store: str = "auto"
    #: When set, only this many peers (a seeded uniform subset) get daily
    #: online-session schedules; the rest stay dormant until demand or a
    #: fault touches them.  Million-peer scenarios need it — scheduling
    #: 40 days of boot/shutdown cycles for every install would swamp the
    #: event heap before the trace starts.  None (default) schedules all.
    active_peer_cap: int | None = None
    #: Device-tier mix (smartrouter/mobile/settop heterogeneity).  None —
    #: the default — draws nothing and keeps every golden byte-identical;
    #: a :class:`DeviceMixConfig` adds three class draws per peer in both
    #: stores (class pick, always-on override, optional NAT override).
    device: DeviceMixConfig | None = None

    def __post_init__(self):
        if self.n_peers <= 0:
            raise ValueError("n_peers must be positive")
        if not 0 <= self.broken_fraction <= 1:
            raise ValueError("broken_fraction must be in [0, 1]")
        if not 0 < self.mean_daily_uptime_hours <= 24:
            raise ValueError("mean_daily_uptime_hours must be in (0, 24]")
        if self.store not in _STORES:
            raise ValueError(f"store must be one of {_STORES}, got {self.store!r}")
        if self.active_peer_cap is not None and self.active_peer_cap <= 0:
            raise ValueError("active_peer_cap must be positive (or None)")

    def resolve_store(self) -> str:
        """The concrete store "auto" means right now (an env indirection).

        Mirrors :meth:`repro.core.config.SystemConfig.resolve_kernel`: the
        fingerprint layer hashes the *resolved* value, so an object-store
        run and a columnar run never share a cache slot even though their
        outputs are byte-identical by contract.
        """
        if self.store != "auto":
            return self.store
        env = os.environ.get("REPRO_POPULATION_STORE", "").strip().lower()
        if env in ("object", "columnar"):
            return env
        return "columnar"


@dataclass
class Population:
    """The installed base plus per-peer session schedules.

    ``peers`` is a list of :class:`PeerNode` in object mode, or a sequence
    view of lazy handles over the columnar store — both support ``len``,
    indexing, and iteration.  Prefer :meth:`iter_peers` /
    :meth:`sample_peers` in workload code: they spell out the contract that
    a full scan must not materialize anyone.
    """

    peers: list[PeerNode]
    #: Local-midnight offset (seconds) per peer, derived from longitude.
    tz_offset: dict[str, float]
    always_on: set[str]
    #: Corporate LAN sites, keyed by site id (§5.3 extension).
    sites: dict[str, "LanSite"] = None  # type: ignore[assignment]
    #: The columnar store behind ``peers`` (None in object mode).
    store: object = None

    def __post_init__(self):
        if self.sites is None:
            self.sites = {}

    def peer_count(self) -> int:
        """Number of installations."""
        return len(self.peers)

    def iter_peers(self, device_class: str | None = None) -> Iterator[PeerNode]:
        """Iterate the installed base in creation order.

        The one sanctioned way to write a population-wide scan: with a
        columnar store it yields lazy handles whose reads come from the
        columns, so sweeping a million peers materializes none of them.
        ``device_class`` filters to one tier (``peer.device_class`` is a
        dormant column read, so the filtered scan is scan-cheap too).
        """
        if device_class is None:
            return iter(self.peers)
        return (p for p in self.peers if p.device_class == device_class)

    def sample_peers(self, rng: random.Random, k: int,
                     device_class: str | None = None) -> list[PeerNode]:
        """Draw ``k`` distinct peers with ``rng.sample`` semantics.

        The draw sequence depends only on the (filtered) population size,
        so object and columnar stores select the same creation-order
        indexes from the same RNG state — fault and adversary selections
        stay parity.  ``device_class`` restricts the draw to one tier.
        """
        if device_class is None:
            k = min(k, self.peer_count())
            if self.store is None:
                return rng.sample(list(self.peers), k)
            store = self.store
            return [store.handle(i) for i in rng.sample(range(len(store)), k)]
        indices = [i for i, p in enumerate(self.peers)
                   if p.device_class == device_class]
        k = min(k, len(indices))
        picked = rng.sample(indices, k)
        if self.store is None:
            return [self.peers[i] for i in picked]
        return [self.store.handle(i) for i in picked]

    def device_census(self) -> dict[str, int]:
        """Install count per device class (``{}`` when tiers are off)."""
        census: dict[str, int] = {}
        for peer in self.peers:
            if peer.device is None:
                continue
            name = peer.device.name
            census[name] = census.get(name, 0) + 1
        return census

    def device_classes(self) -> dict[str, str]:
        """guid → device-class name for tiered peers (dormant reads)."""
        return {p.guid: p.device.name for p in self.peers
                if p.device is not None}

    def override_upload_settings(self, rng: random.Random, probability: float) -> None:
        """Re-draw every peer's uploads-enabled flag (the Table 4 override).

        One ``rng.random()`` per peer in creation order in both stores;
        dormant columnar rows take the new value without materializing.
        """
        if self.store is None:
            for peer in self.peers:
                peer.uploads_enabled = rng.random() < probability
            return
        store = self.store
        for i in range(len(store)):
            value = rng.random() < probability
            node = store._nodes.get(i)
            if node is not None:
                node.uploads_enabled = value
            else:
                store.uploads[i] = 1 if value else 0

    def _set_lan(self, peer, site: "LanSite") -> None:
        """Attach a peer to a LAN site without forcing materialization."""
        store = self.store
        if store is not None and getattr(peer, "_i", None) is not None \
                and not isinstance(peer, PeerNode):
            node = store._nodes.get(peer._i)
            if node is None:
                store._lan[peer._i] = site
                return
            node.lan = site
            return
        peer.lan = site

    def _session_rows(self):
        """(peer, tz_offset, always_on, device) per install, creation order."""
        store = self.store
        if store is None:
            return (
                (p, self.tz_offset[p.guid], p.guid in self.always_on, p.device)
                for p in self.peers
            )
        return (
            (store.handle(i), float(store.tz[i]), bool(store.always_on[i]),
             store.device_at(i))
            for i in range(len(store))
        )


def build_population(
    system: NetSessionSystem,
    providers: list[ContentProvider],
    config: PopulationConfig | None = None,
) -> Population:
    """Create peers and schedule their daily online sessions.

    Each peer is attributed to the provider it first installed from,
    weighted by that provider's share of downloads — so the Table 4
    upload-default mix emerges naturally.  The two stores consume the RNG
    streams identically; everything after this call is store-agnostic.
    """
    cfg = config if config is not None else PopulationConfig()
    rng = random.Random(system.rng.getrandbits(64))

    if cfg.resolve_store() == "columnar":
        from repro.workload.columnar import build_columnar_store

        store = build_columnar_store(system, providers, cfg, rng)
        system.population_store = store
        population = Population(
            peers=store.peers_view(),
            tz_offset=store.tz_view(),
            always_on={g for g, flag in zip(store.guids, store.always_on) if flag},
            store=store,
        )
    else:
        peers: list[PeerNode] = []
        tz_offset: dict[str, float] = {}
        always_on: set[str] = set()

        for _ in range(cfg.n_peers):
            installed_from = rng.choice(providers) if providers else None
            peer = system.create_peer(installed_from=installed_from)
            if rng.random() < cfg.broken_fraction:
                peer.piece_corruption_prob = cfg.broken_corruption_prob
            if rng.random() < cfg.attacker_fraction:
                peer.accounting_attacker = True
            peers.append(peer)
            # Local solar time from longitude: 15 degrees per hour.
            tz_offset[peer.guid] = (peer.city.lon / 15.0) * 3600.0
            if rng.random() < cfg.always_on_fraction:
                always_on.add(peer.guid)
            if cfg.device is not None:
                cls = cfg.device.pick(rng.random())
                peer.device = cls
                if rng.random() < cls.always_on_prob:
                    always_on.add(peer.guid)
                if cls.nat_open_prob is not None \
                        and rng.random() < cls.nat_open_prob:
                    peer.nat_profile = NATProfile(
                        true_type=NATType.OPEN, reported_type=NATType.OPEN)

        population = Population(
            peers=peers, tz_offset=tz_offset, always_on=always_on)

    _assign_corporate_sites(population, cfg, rng)
    _schedule_sessions(system, population, cfg, rng)
    system.device_mix = cfg.device
    if cfg.device is not None:
        weights = cfg.device.rank_weights()
        if weights is not None:
            for cn in system.control.all_cns:
                cn.device_rank_weights = weights
    return population


def _assign_corporate_sites(population: Population, cfg: PopulationConfig,
                            rng: random.Random) -> None:
    """Group a slice of the population into same-city LAN sites (§5.3).

    Site members must share a physical location, so peers are bucketed by
    (country, city, AS) and sites carved out of the buckets.
    """
    if cfg.corporate_fraction <= 0:
        return
    target = int(round(cfg.corporate_fraction * population.peer_count()))
    buckets: dict[tuple[str, str, int], list[PeerNode]] = {}
    for peer in population.iter_peers():
        key = (peer.country_code, peer.city.name, peer.asn)
        buckets.setdefault(key, []).append(peer)

    placed = 0
    site_index = 0
    for key in sorted(buckets, key=lambda k: -len(buckets[k])):
        if placed >= target:
            break
        pool = buckets[key]
        lo, hi = cfg.site_size_range
        while len(pool) >= lo and placed < target:
            size = min(len(pool), rng.randint(lo, hi), target - placed + lo)
            members, pool[:] = pool[:size], pool[size:]
            site = LanSite(f"site-{site_index:04d}")
            site_index += 1
            for member in members:
                population._set_lan(member, site)
                site.add_member(member.guid)
            population.sites[site.site_id] = site
            placed += len(members)


def _schedule_sessions(
    system: NetSessionSystem,
    population: Population,
    cfg: PopulationConfig,
    rng: random.Random,
) -> None:
    """Schedule boot/shutdown cycles for every (scheduled) peer.

    Always-on peers boot once.  Daily-cycle peers boot each local morning
    (with jitter) and shut down after a sampled uptime; a small per-day skip
    probability models days the machine stays off.  With
    ``active_peer_cap`` set, a seeded uniform subset of that size gets
    schedules and the rest stay dormant until demand boots them.
    """
    sim = system.sim
    count = population.peer_count()
    chosen = None
    if cfg.active_peer_cap is not None and cfg.active_peer_cap < count:
        chosen = set(rng.sample(range(count), cfg.active_peer_cap))
    uptime_mean = cfg.mean_daily_uptime_hours * 3600.0
    rows = enumerate(population._session_rows())
    for index, (peer, tz, is_always_on, device) in rows:
        if chosen is not None and index not in chosen:
            continue
        if is_always_on:
            sim.schedule(rng.uniform(0, 3600.0), peer.boot)
            continue
        if device is None:
            _schedule_peer_days(system, peer, tz, uptime_mean, rng)
        else:
            # Class-driven availability: a mobile install keeps short,
            # frequently skipped sessions; a settop box sits in between.
            _schedule_peer_days(
                system, peer, tz, device.uptime_hours_mean * 3600.0, rng,
                skip_prob=device.daily_skip_prob)


def _schedule_peer_days(
    system: NetSessionSystem,
    peer: PeerNode,
    tz_offset: float,
    uptime_mean: float,
    rng: random.Random,
    *,
    horizon_days: int = 40,
    skip_prob: float = 0.12,
) -> None:
    sim = system.sim
    for day in range(horizon_days):
        if rng.random() < skip_prob:
            continue  # machine stays off today
        # Local morning start: 8am ± 2h, mapped back to simulation (UTC) time.
        local_start = day * DAY + rng.gauss(8.0, 2.0) * 3600.0
        start = local_start - tz_offset
        if start < sim.now:
            continue
        uptime = max(1800.0, rng.expovariate(1.0 / uptime_mean))
        uptime = min(uptime, 23.0 * 3600.0)
        sim.schedule_at(start, peer.boot)
        sim.schedule_at(start + uptime, peer.go_offline)


def diurnal_rate(t: float, tz_offset: float = 0.0) -> float:
    """Relative activity level at simulated time ``t`` for a timezone.

    A smooth day curve peaking in the local evening (~20:00) and bottoming
    early morning (~04:00), as in Figure 3(c)'s diurnal download pattern.
    Returns a multiplier in [0.15, 1.0].
    """
    local = (t + tz_offset) % DAY
    hours = local / 3600.0
    # Cosine with peak at 20h.
    phase = math.cos((hours - 20.0) / 24.0 * 2.0 * math.pi)
    return 0.575 + 0.425 * phase
