"""Scenario driver: one call builds and runs a complete synthetic trace.

This is the reproduction's equivalent of "operate NetSession for a month
and collect the logs" (paper §4.1).  A :class:`ScenarioConfig` fixes every
knob (population size, catalog, demand volume, behaviour, mobility,
cloning, seed); :func:`run_scenario` assembles the system, schedules the
workload, runs the simulator, finalizes dangling downloads, and returns a
:class:`ScenarioResult` whose log store and geo database are what the
analysis layer consumes.

Scale is a parameter: benchmarks use small populations (seconds of wall
time), examples use medium ones.  The *shapes* the paper reports are
scale-stable; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.adversary.profiles import AdversaryConfig, assign_adversaries
from repro.analysis.logstore import LogStore
from repro.core.config import SystemConfig
from repro.core.peer import CacheEntry
from repro.core.placement import PlacementConfig
from repro.core.system import NetSessionSystem
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultSpec
from repro.net.geo import GeoDatabase, World, build_core_world
from repro.net.topology import ASTopology, build_topology
from repro.workload.behavior import BehaviorConfig, UserBehavior
from repro.workload.catalog import Catalog, CatalogConfig, build_catalog
from repro.workload.cloning import CloningConfig, CloningModel
from repro.workload.demand import DemandConfig, DemandGenerator
from repro.vod.config import VodConfig
from repro.workload.mobility import MobilityConfig, MobilityModel
from repro.workload.population import DAY, Population, PopulationConfig, build_population
from repro.workload.sharding import ShardingConfig

__all__ = ["ScenarioConfig", "ScenarioResult", "run_scenario"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything that defines one synthetic trace."""

    seed: int = 42
    duration_days: float = 7.0
    #: Extra synthetic territories appended to the core world (Table 1's
    #: "239 countries and territories" needs a padded world; most scenarios
    #: don't).
    extra_territories: int = 0
    system: SystemConfig = field(default_factory=SystemConfig)
    population: PopulationConfig = field(default_factory=PopulationConfig)
    catalog: CatalogConfig = field(default_factory=CatalogConfig)
    demand: DemandConfig | None = None
    behavior: BehaviorConfig = field(default_factory=BehaviorConfig)
    mobility: MobilityConfig = field(default_factory=MobilityConfig)
    cloning: CloningConfig = field(default_factory=CloningConfig)
    #: Ablation switch: random instead of locality-aware peer selection.
    locality_aware_selection: bool = True
    #: Extension (paper's explicit non-feature, §5.2): run the predictive
    #: placement policy that prefetches hot objects into thin regions.
    predictive_placement: bool = False
    #: Placement-policy knobs (interval, copies target, device-class
    #: steering).  None uses :class:`PlacementConfig` defaults; setting it
    #: implies the placer runs even with ``predictive_placement=False``.
    placement: PlacementConfig | None = None
    #: When set, every peer's initial uploads-enabled setting is re-drawn
    #: with this probability, overriding the per-provider Table 4 mix —
    #: the "what if every customer shipped like Customer D" sweep lever.
    upload_rate_override: float | None = None
    #: Fault schedule injected into the run (see :mod:`repro.faults`); the
    #: empty default keeps every existing scenario fault-free.  Faults draw
    #: from their own seeded RNGs, so adding one does not perturb the
    #: workload's random streams.
    faults: tuple[FaultSpec, ...] = ()
    #: VoD streaming workload and serving policy (see :mod:`repro.vod`).
    #: None (the default) attaches nothing: no VoD catalog is published, no
    #: policy installed, and no RNG stream touched, so every pre-existing
    #: scenario runs bit-identically.
    vod: VodConfig | None = None
    #: Adversarial slice of the population (see :mod:`repro.adversary`).
    #: None (the default) converts nobody and draws nothing: the honest
    #: population is byte-identical whether or not this leaf exists.
    adversary: AdversaryConfig | None = None
    #: Region-sharded execution (see :mod:`repro.workload.sharding`).  None
    #: (the default) runs the classic single trace; a config factors the
    #: scenario into per-region sub-scenarios fanned across the runner's
    #: process pool and merged — a *different* (region-factored) trace from
    #: the unsharded one, but byte-invariant to the shard width and store.
    #: Sharded runs dispatch through
    #: :func:`repro.runner.run_scenario_artifact`, not :func:`run_scenario`.
    sharding: ShardingConfig | None = None
    #: Warm start: expected number of pre-trace cached copies per peer.  The
    #: paper's October 2012 window opens on a five-year-old deployment whose
    #: peers already hold popular content; a cold start would understate
    #: peer efficiency for the whole first half of the trace.  Copies are
    #: assigned popularity-proportionally across p2p-enabled objects.
    warm_copies_per_peer: float = 4.0

    def resolved_demand(self) -> DemandConfig:
        """The demand config, defaulting the duration to the scenario's."""
        if self.demand is not None:
            return self.demand
        return DemandConfig(duration_days=self.duration_days)


@dataclass
class ScenarioResult:
    """A finished run: the system and everything the analyses need."""

    config: ScenarioConfig
    system: NetSessionSystem
    population: Population
    catalog: Catalog
    behavior: UserBehavior
    mobility_census: dict[str, int]
    cloning_census: dict[str, int]
    finalized_downloads: int
    #: The fault injector, when the config scheduled faults (else None);
    #: exposes the injection timeline and the §3.8 recovery gauges.
    injector: FaultInjector | None = None
    #: The VoD attachment, when the config enabled streaming (else None);
    #: see :class:`repro.vod.engine.VodRuntime`.
    vod_runtime: object | None = None

    @property
    def logstore(self) -> LogStore:
        """The trace (downloads / logins / registrations)."""
        return self.system.logstore

    @property
    def geodb(self) -> GeoDatabase:
        """The EdgeScape-equivalent geolocation data set."""
        return self.system.geodb

    @property
    def topology(self) -> ASTopology:
        """The synthetic AS-level topology (the CAIDA substitute)."""
        return self.system.topology

    @property
    def world(self) -> World:
        """The synthetic world geography."""
        return self.system.world


def seed_warm_caches(
    system: NetSessionSystem,
    population: Population,
    catalog: Catalog,
    copies_per_peer: float,
    rng: random.Random,
) -> int:
    """Pre-populate caches with popularity-weighted copies of p2p objects.

    Models the installed base at the start of the trace window: peers who
    downloaded popular content *before* the trace began and still cache it.
    Registration with the control plane happens naturally at each peer's
    first login.  Returns the number of copies seeded.
    """
    p2p_objects = catalog.p2p_objects()
    if not p2p_objects or copies_per_peer <= 0:
        return 0
    weights = [
        catalog.weights[catalog.objects.index(obj)] for obj in p2p_objects
    ]
    by_cp: dict[int, list] = {}
    for peer in population.iter_peers():
        by_cp.setdefault(peer.installed_from_cp, []).append(peer)
    total = int(round(copies_per_peer * population.peer_count()))
    #: Leave headroom in every provider pool so in-trace demand still finds
    #: peers who don't already hold the flagship objects.
    saturation_cap = 0.6
    seeded_per_obj: dict[str, int] = {}
    seeded = 0
    for _ in range(total):
        obj = rng.choices(p2p_objects, weights=weights, k=1)[0]
        # Holders of a provider's content are mostly that provider's own
        # installs (see DemandConfig.install_affinity).
        pool = by_cp.get(obj.provider.cp_code)
        if pool and seeded_per_obj.get(obj.cid, 0) >= saturation_cap * len(pool):
            pool = population.peers
        elif not pool or rng.random() >= 0.8:
            pool = population.peers
        peer = rng.choice(pool)
        if peer.has_complete(obj.cid):
            continue
        device = peer.device
        if device is not None and device.cache_objects is not None \
                and len(peer.cache) >= device.cache_objects:
            continue  # storage-poor tier already at its budget
        seeded_per_obj[obj.cid] = seeded_per_obj.get(obj.cid, 0) + 1
        peer.cache[obj.cid] = CacheEntry(cid=obj.cid, completed_at=0.0)
        retention = system.config.client.cache_retention
        system.sim.schedule(
            rng.uniform(0.3, 1.0) * retention,
            lambda p=peer, c=obj.cid: p._evict(c),
        )
        seeded += 1
    return seeded


def run_scenario(
    config: ScenarioConfig | None = None,
    *,
    world: World | None = None,
    topology: ASTopology | None = None,
) -> ScenarioResult:
    """Build, run, and finalize one synthetic trace.

    ``world``/``topology`` override the internally built ones; the region
    sharder passes a region-filtered world over the full parent topology so
    shard peers keep globally consistent AS numbers and IP prefixes.
    """
    cfg = config if config is not None else ScenarioConfig()

    if world is None:
        world = build_core_world(extra_territories=cfg.extra_territories, seed=cfg.seed)
    if topology is None:
        topology = build_topology(world, random.Random(cfg.seed ^ 0x70_70))
    system = NetSessionSystem(
        cfg.system,
        seed=cfg.seed,
        world=world,
        topology=topology,
        locality_aware_selection=cfg.locality_aware_selection,
    )

    catalog = build_catalog(random.Random(cfg.seed ^ 0xCA7), cfg.catalog)
    for provider in catalog.providers:
        system.register_provider(provider)
    for obj in catalog.objects:
        system.publish(obj)

    population = build_population(system, catalog.providers, cfg.population)
    if cfg.upload_rate_override is not None:
        population.override_upload_settings(
            random.Random(cfg.seed ^ 0x0FF), cfg.upload_rate_override
        )
    seed_warm_caches(system, population, catalog, cfg.warm_copies_per_peer,
                     random.Random(cfg.seed ^ 0x5EED))

    if cfg.adversary is not None:
        # After warm caches (so stale-advertiser peers have something to go
        # stale on) and from a dedicated string-seeded RNG, so the honest
        # peers' streams are untouched.
        assign_adversaries(population, cfg.adversary, cfg.seed,
                           truth=system.adversary_truth)

    behavior = UserBehavior(system, cfg.behavior)
    behavior.schedule_setting_changes(population, cfg.duration_days)
    behavior.schedule_link_busy_periods(population, cfg.duration_days)

    mobility = MobilityModel(system, cfg.mobility)
    mobility_census = mobility.apply(population, cfg.duration_days)

    cloning = CloningModel(system, cfg.cloning)
    cloning_census = cloning.apply(population, cfg.duration_days)

    demand = DemandGenerator(system, population, catalog, cfg.resolved_demand())
    demand.on_session_started = behavior.attach
    demand.schedule_all()

    injector = None
    if cfg.faults:
        injector = FaultInjector(system, cfg.faults, seed=cfg.seed ^ 0xFA17)
        injector.arm()

    if cfg.predictive_placement or cfg.placement is not None:
        from repro.core.placement import PredictivePlacer

        placer = PredictivePlacer(system, catalog.objects, cfg.placement)
        placer.start()

    vod_runtime = None
    if cfg.vod is not None:
        # Attached last, so the download workload above is fully scheduled
        # before any VoD draw happens; the engine uses only string-seeded
        # RNGs, keeping the streams independent either way.
        from repro.vod.engine import attach_vod

        vod_runtime = attach_vod(
            system, population, cfg.vod,
            seed=cfg.seed, duration_days=cfg.duration_days,
        )

    system.run(until=cfg.duration_days * DAY)
    finalized = system.finalize_open_downloads()
    # End-of-run audit: the reconciliation checkers need the finalized logs.
    # Observe mode records; strict mode raises on the first error here.
    system.audit(final=True)

    return ScenarioResult(
        config=cfg,
        system=system,
        population=population,
        catalog=catalog,
        behavior=behavior,
        mobility_census=mobility_census,
        cloning_census=cloning_census,
        finalized_downloads=finalized,
        injector=injector,
        vod_runtime=vod_runtime,
    )
