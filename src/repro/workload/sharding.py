"""Region-sharded scenario decomposition: the config leaf.

A sharded scenario factors one trace into per-geographic-region
sub-scenarios (Table 2's regions), runs them across the
:mod:`repro.runner` process pool, and merges the shard artifacts — trace
concatenation in sorted region order, fieldwise counter sums, plus a
deterministic cross-region flow-reconciliation pass at the shard
boundaries (see :mod:`repro.runner.sharding`).

The decomposition itself is always per region; ``shards`` only sets how
many pool workers the region sub-scenarios fan out across.  That split is
what makes ``shards=1`` and ``shards=4`` byte-identical *by construction*
— the same sub-scenarios run either way, each deterministic from its own
config — while remaining a cache key (like the flow kernel) so the parity
stays checked rather than assumed.

Like :mod:`repro.vod.config`, this module is deliberately dependency-free
(stdlib only) so :class:`ShardingConfig` is importable from the workload
layer without dragging in the runner.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ShardingConfig"]


@dataclass(frozen=True)
class ShardingConfig:
    """Region-sharded execution of one scenario.

    Attached to :class:`~repro.workload.scenario.ScenarioConfig` as the
    ``sharding`` leaf (default ``None`` = the classic single-process,
    single-trace run; nothing about an unsharded scenario changes).
    """

    #: Process-pool fan-out for the region sub-scenarios: a positive int,
    #: or "auto" to resolve through the ``REPRO_SHARDS`` env var (2 when
    #: unset).  Output bytes are invariant to this knob by construction.
    shards: int | str = "auto"
    #: Run the cross-region flow-reconciliation pass after the merge and
    #: record its import/export matrix in ``ScenarioArtifact.sharding``.
    reconcile: bool = True

    def __post_init__(self):
        if isinstance(self.shards, str):
            if self.shards != "auto":
                raise ValueError(
                    f"shards must be a positive int or 'auto', got {self.shards!r}")
        elif not isinstance(self.shards, int) or isinstance(self.shards, bool) \
                or self.shards < 1:
            raise ValueError(
                f"shards must be a positive int or 'auto', got {self.shards!r}")

    def resolve_shards(self) -> int:
        """The concrete fan-out "auto" means right now (an env indirection).

        Mirrors :meth:`repro.core.config.SystemConfig.resolve_kernel`: the
        fingerprint layer hashes the resolved value, so runs at different
        widths land in different cache slots and their byte-parity stays a
        *checked* contract (``tests/scale/``), not a cached assumption.
        """
        if self.shards != "auto":
            return int(self.shards)
        env = os.environ.get("REPRO_SHARDS", "").strip()
        if env.isdigit() and int(env) >= 1:
            return int(env)
        return 2
