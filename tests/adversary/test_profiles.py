"""Unit tests for misbehavior profiles and seeded assignment."""

from __future__ import annotations

import random

import pytest

from repro.adversary.profiles import (
    PROFILES, AdversaryConfig, apply_profile, assign_adversaries,
    choose_profile, revert_profile,
)
from repro.core import NetSessionSystem

HOUR = 3600.0


@pytest.fixture
def peers():
    system = NetSessionSystem(seed=5)
    return [system.create_peer() for _ in range(20)]


class TestConfig:
    def test_defaults_valid(self):
        AdversaryConfig()

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            AdversaryConfig(fraction=1.5)

    def test_profile_mix_length_enforced(self):
        with pytest.raises(ValueError):
            AdversaryConfig(profile_mix=(1.0, 1.0))

    def test_profile_mix_must_have_weight(self):
        with pytest.raises(ValueError):
            AdversaryConfig(profile_mix=(0.0,) * len(PROFILES))


class TestChooseProfile:
    def test_zero_weight_never_chosen(self):
        mix = (1.0, 0.0, 1.0, 0.0, 1.0)
        rng = random.Random(0)
        picked = {choose_profile(rng, mix) for _ in range(200)}
        assert picked == {"corrupter", "stale_advertiser", "slow_loris"}

    def test_single_weight_always_chosen(self):
        mix = (0.0, 0.0, 0.0, 1.0, 0.0)
        rng = random.Random(1)
        assert all(choose_profile(rng, mix) == "accounting_inflator"
                   for _ in range(20))


class TestApplyRevert:
    def test_corrupter_sets_corruption_prob(self, peers):
        peer = peers[0]
        config = AdversaryConfig(corruption_prob=0.7)
        apply_profile(peer, "corrupter", config)
        assert peer.adversary_profile == "corrupter"
        assert peer.piece_corruption_prob == 0.7

    def test_serving_profiles_force_uploads_enabled(self, peers):
        config = AdversaryConfig()
        for profile, peer in zip(PROFILES, peers):
            peer.uploads_enabled = False
            apply_profile(peer, profile, config)
            if profile == "accounting_inflator":
                # The inflator attacks the report, not the data path: it
                # honors the user's setting.
                assert not peer.uploads_enabled
            else:
                assert peer.uploads_enabled

    def test_revert_round_trips_every_attribute(self, peers):
        config = AdversaryConfig(corruption_prob=0.9, slow_factor=0.01)
        for profile, peer in zip(PROFILES, peers):
            peer.uploads_enabled = False
            before = (peer.adversary_profile, peer.piece_corruption_prob,
                      peer.accounting_attacker, peer.adversary_slow_factor,
                      peer.uploads_enabled)
            token = apply_profile(peer, profile, config)
            revert_profile(token)
            after = (peer.adversary_profile, peer.piece_corruption_prob,
                     peer.accounting_attacker, peer.adversary_slow_factor,
                     peer.uploads_enabled)
            assert after == before, profile

    def test_unknown_profile_rejected(self, peers):
        with pytest.raises(ValueError):
            apply_profile(peers[0], "saboteur", AdversaryConfig())


class TestAssignment:
    def test_fraction_and_truth(self, peers):
        truth: dict = {}
        tokens = assign_adversaries(
            peers, AdversaryConfig(fraction=0.25), 42, truth=truth)
        assert len(tokens) == round(0.25 * len(peers))
        assert set(truth) == {
            p.guid for p in peers if p.adversary_profile is not None}
        assert all(v in PROFILES for v in truth.values())

    def test_deterministic_per_seed(self):
        def run(seed):
            system = NetSessionSystem(seed=5)
            group = [system.create_peer() for _ in range(20)]
            assign_adversaries(group, AdversaryConfig(fraction=0.3), seed)
            return [(p.guid, p.adversary_profile) for p in group]

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_zero_fraction_is_a_no_op(self, peers):
        assert assign_adversaries(peers, AdversaryConfig(fraction=0.0), 1) == []
        assert all(p.adversary_profile is None for p in peers)

    def test_positive_fraction_converts_at_least_one(self, peers):
        tokens = assign_adversaries(peers, AdversaryConfig(fraction=0.01), 1)
        assert len(tokens) == 1


class TestBehaviorHooks:
    def test_free_rider_refuses_grants(self):
        from repro.core import ContentObject, ContentProvider
        from repro.core.peer import CacheEntry

        system = NetSessionSystem(seed=5)
        provider = ContentProvider(cp_code=9001, name="T",
                                   upload_default_rate=1.0)
        obj = ContentObject("x.bin", 40 * 1024 * 1024, provider,
                            p2p_enabled=True)
        system.publish(obj)
        peer = system.create_peer(uploads_enabled=True)
        peer.cache[obj.cid] = CacheEntry(cid=obj.cid, completed_at=0.0)
        peer.boot()
        assert peer.try_grant_upload(obj.cid)
        peer.release_upload()
        apply_profile(peer, "free_rider", AdversaryConfig())
        assert not peer.try_grant_upload(obj.cid)

    def test_slow_loris_caps_upload_rate(self, peers):
        peer = peers[0]
        honest = peer.upload_rate_cap()
        apply_profile(peer, "slow_loris", AdversaryConfig(slow_factor=0.02))
        assert peer.upload_rate_cap() == pytest.approx(
            max(1.0, honest * 0.02))
