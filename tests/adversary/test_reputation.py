"""Unit tests for the reputation/quarantine engine (repro.adversary)."""

from __future__ import annotations

import pytest

from repro.core.config import DefenseConfig
from repro.adversary.reputation import (
    GOOD, PROBATION, QUARANTINED, ReputationEngine,
)

MB = 1024 * 1024


def engine(seed: int = 7, **overrides) -> ReputationEngine:
    return ReputationEngine(DefenseConfig(enabled=True, **overrides), seed)


class TestScoring:
    def test_contribution_earns_score(self):
        e = engine()
        e.observe("g", 0.0, delivered_bytes=10 * MB)
        assert e.score("g", 0.0) == pytest.approx(10.0, abs=1e-3)

    def test_penalties_cost_score(self):
        e = engine()
        e.observe("g", 0.0, corrupted_pieces=1, refusals=2, slow_serves=1)
        cfg = e.config
        expected = -(cfg.corruption_penalty + 2 * cfg.refusal_penalty
                     + cfg.slow_penalty)
        assert e.score("g", 0.0) == pytest.approx(expected, abs=1e-3)

    def test_score_decays_with_half_life(self):
        e = engine()
        e.observe("g", 0.0, delivered_bytes=8 * MB)
        later = e.score("g", e.config.decay_half_life)
        assert later == pytest.approx(4.0, abs=1e-3)

    def test_score_clamped_at_both_ends(self):
        e = engine()
        e.observe("hero", 0.0, delivered_bytes=10_000 * MB)
        assert e.score("hero", 0.0) == e.config.score_max
        e.observe("villain", 0.0, corrupted_pieces=1_000)
        assert e.score("villain", 0.0) == e.config.score_min

    def test_initial_jitter_is_tiny_and_deterministic(self):
        a, b = engine(seed=3), engine(seed=3)
        assert a.score("g", 0.0) == b.score("g", 0.0)
        assert 0.0 <= a.score("g", 0.0) < 1e-6
        # A different seed (or guid) lands on a different jitter.
        assert engine(seed=4).score("g", 0.0) != a.score("g", 0.0)
        assert a.score("h", 0.0) != a.score("g", 0.0)

    def test_jitter_independent_of_observation_order(self):
        a, b = engine(), engine()
        a.observe("x", 0.0)
        a.observe("y", 0.0)
        b.observe("y", 0.0)
        b.observe("x", 0.0)
        assert a.score("x", 0.0) == b.score("x", 0.0)
        assert a.score("y", 0.0) == b.score("y", 0.0)


class TestStateMachine:
    def test_quarantine_at_threshold(self):
        e = engine()
        # Default penalties: two corrupted pieces cross -10.
        assert e.observe("g", 0.0, corrupted_pieces=1) == GOOD
        assert e.observe("g", 0.0, corrupted_pieces=1) == QUARANTINED
        assert e.quarantines == 1
        assert e.is_quarantined("g", 0.0)

    def test_quarantine_evicts_registrations(self):
        e = engine()
        evicted = []
        e.on_quarantine = lambda guid: evicted.append(guid) or 3
        e.observe("g", 0.0, corrupted_pieces=2)
        assert evicted == ["g"]
        assert e.registrations_evicted == 3

    def test_admits_refuses_during_quarantine_window(self):
        e = engine()
        e.observe("g", 0.0, corrupted_pieces=2)
        inside = e.config.probation_interval - 1.0
        assert not e.admits("g", inside)
        assert e.state("g") == QUARANTINED

    def test_probation_after_interval_then_good_on_contribution(self):
        e = engine()
        e.observe("g", 0.0, corrupted_pieces=2)
        after = e.config.probation_interval + 1.0
        assert e.admits("g", after)
        assert e.state("g") == PROBATION
        assert e.probations == 1
        assert not e.is_quarantined("g", after)
        # Enough verified contribution climbs back above zero -> GOOD.
        assert e.observe("g", after, delivered_bytes=10 * MB) == GOOD

    def test_probation_reoffense_requarantines(self):
        e = engine()
        e.observe("g", 0.0, corrupted_pieces=2)
        after = e.config.probation_interval + 1.0
        e.admits("g", after)
        # probation_score is -5: one corrupted piece (-8) crosses -10 again.
        assert e.observe("g", after, corrupted_pieces=1) == QUARANTINED
        assert e.quarantines == 2

    def test_unknown_peer_is_good_and_admitted(self):
        e = engine()
        assert e.state("nobody") == GOOD
        assert e.admits("nobody", 0.0)
        assert not e.is_quarantined("nobody", 0.0)


class TestIngestAndWipe:
    def _report(self):
        from repro.core.messages import UsageReport

        return UsageReport(
            guid="downloader", cid="cid:1", cp_code=8001,
            started_at=0.0, ended_at=60.0,
            claimed_edge_bytes=0, claimed_peer_bytes=4 * MB,
            per_uploader_bytes={"up1": 4 * MB},
            per_uploader_corrupt={"bad1": 2},
            per_uploader_refusals={"lazy1": 3},
            per_uploader_slow={"slow1": 1},
        )

    def test_ingest_report_feeds_every_observation_family(self):
        e = engine()
        e.ingest_report(self._report(), 0.0)
        assert e.reports_ingested == 1
        assert e.score("up1", 0.0) > 1.0
        assert e.score("bad1", 0.0) < -10.0  # 2 pieces -> quarantined
        assert e.state("bad1") == QUARANTINED
        assert e.score("lazy1", 0.0) < 0.0
        assert e.score("slow1", 0.0) < 0.0

    def test_wipe_forgets_everything(self):
        e = engine()
        e.ingest_report(self._report(), 0.0)
        assert e.wipe() == 4
        assert e.state("bad1") == GOOD
        assert not e.is_quarantined("bad1", 0.0)
        assert list(e.entries()) == []

    def test_rank_key_orders_by_score(self):
        class Reg:
            def __init__(self, guid):
                self.guid = guid

        e = engine()
        e.observe("strong", 0.0, delivered_bytes=20 * MB)
        e.observe("weak", 0.0, refusals=4)
        key = e.rank_key(0.0)
        regs = sorted([Reg("weak"), Reg("strong")], key=key, reverse=True)
        assert [r.guid for r in regs] == ["strong", "weak"]
