"""Tests for the §5 analyses."""

from __future__ import annotations

import pytest

from repro.analysis.benefits import (
    busiest_ases, figure4_speed_cdfs, figure5_efficiency_vs_copies,
    figure6_efficiency_vs_peers, figure7_pause_rates,
    figure8_country_contributions, offload_summary, reliability_outcomes,
    table3_setting_changes, table4_upload_enabled_by_provider,
)
from repro.analysis.logstore import LogStore
from repro.analysis.records import DownloadRecord, LoginRecord, RegistrationRecord
from repro.net.geo import GeoDatabase, GeoRecord

GB = 1024 ** 3
MB = 1024 ** 2


def dl(guid="g1", cid="c1", url=None, p2p=True, outcome="completed",
       edge=40, peer=60, size=100, ip="", peers_returned=0, t0=0.0, t1=10.0,
       cp=1, per_uploader=None):
    return DownloadRecord(
        guid=guid, url=url if url else cid, cid=cid, cp_code=cp, size=size,
        started_at=t0, ended_at=t1, edge_bytes=edge, peer_bytes=peer,
        p2p_enabled=p2p, outcome=outcome, ip=ip,
        peers_initially_returned=peers_returned,
        per_uploader_bytes=per_uploader or {},
    )


def login(guid="g1", ip="ip1", t=0.0, uploads=True, version="ns-3.6-cp0"):
    return LoginRecord(guid=guid, ip=ip, timestamp=t,
                       software_version=version, uploads_enabled=uploads)


class TestOffloadSummary:
    def test_counts_files_and_bytes(self):
        store = LogStore()
        store.add_download(dl(cid="p2p1", p2p=True, edge=30, peer=70, size=100))
        store.add_download(dl(cid="infra1", p2p=False, edge=100, peer=0))
        summary = offload_summary(store)
        assert summary.p2p_file_fraction == 0.5
        assert summary.p2p_byte_share == 0.5
        assert summary.mean_peer_efficiency == 0.7

    def test_incomplete_downloads_excluded_from_bytes(self):
        store = LogStore()
        store.add_download(dl(outcome="aborted", edge=5, peer=5))
        summary = offload_summary(store)
        assert summary.p2p_byte_share == 0.0
        assert summary.mean_peer_efficiency == 0.0

    def test_empty_store(self):
        summary = offload_summary(LogStore())
        assert summary.p2p_file_fraction == 0.0


class TestTable3:
    def test_change_counting(self):
        store = LogStore()
        store.add_login(login(guid="never", uploads=True, t=0))
        store.add_login(login(guid="never", uploads=True, t=1))
        store.add_login(login(guid="once", uploads=True, t=0))
        store.add_login(login(guid="once", uploads=False, t=1))
        store.add_login(login(guid="twice", uploads=False, t=0))
        store.add_login(login(guid="twice", uploads=True, t=1))
        store.add_login(login(guid="twice", uploads=False, t=2))
        table = table3_setting_changes(store)
        assert table["enabled"]["nodes"] == 2
        assert table["enabled"]["0"] == 0.5
        assert table["enabled"]["1"] == 0.5
        assert table["disabled"]["2+"] == 1.0


class TestTable4:
    def test_attribution_by_version_string(self):
        store = LogStore()
        store.add_login(login(guid="a", uploads=True, version="ns-3.6-cp1004"))
        store.add_login(login(guid="b", uploads=False, version="ns-3.6-cp1004"))
        table = table4_upload_enabled_by_provider(store)
        assert table[1004] == 0.5

    def test_fallback_to_first_download(self):
        store = LogStore()
        store.add_login(login(guid="a", uploads=True, version="custom"))
        store.add_download(dl(guid="a", cp=1007))
        table = table4_upload_enabled_by_provider(store)
        assert table[1007] == 1.0


class TestFigure4:
    def make_geo(self):
        geodb = GeoDatabase()
        for ip, asn in (("x1", 10), ("x2", 10), ("y1", 20)):
            geodb.register(ip, GeoRecord("DE", "Europe", "B", 50, 8, "UTC",
                                         "isp", asn))
        return geodb

    def test_busiest_ases_ranked(self):
        geodb = self.make_geo()
        store = LogStore()
        store.add_download(dl(guid="a", ip="x1"))
        store.add_download(dl(guid="b", ip="x2"))
        store.add_download(dl(guid="c", ip="y1"))
        assert busiest_ases(store, geodb, n=2) == [10, 20]

    def test_speed_classes_split(self):
        geodb = self.make_geo()
        store = LogStore()
        # Edge-only download at 10 MB/s, p2p-heavy at 2 MB/s.
        store.add_download(dl(guid="a", ip="x1", edge=100 * MB, peer=0,
                              t0=0, t1=10))
        store.add_download(dl(guid="b", ip="x2", edge=4 * MB, peer=16 * MB,
                              t0=0, t1=10))
        cdfs = figure4_speed_cdfs(store, geodb, asn=10)
        assert len(cdfs["edge_only"]) == 1
        assert len(cdfs["p2p_heavy"]) == 1
        assert cdfs["edge_only"][0][0] > cdfs["p2p_heavy"][0][0]

    def test_minor_peer_share_not_p2p_heavy(self):
        geodb = self.make_geo()
        store = LogStore()
        store.add_download(dl(guid="a", ip="x1", edge=90, peer=10))
        cdfs = figure4_speed_cdfs(store, geodb, asn=10)
        assert cdfs["edge_only"] == []
        assert cdfs["p2p_heavy"] == []


class TestFigure56:
    def test_efficiency_rises_with_copies(self):
        store = LogStore()
        # File A: 2 registered copies, low efficiency.
        store.add_registration(RegistrationRecord("s1", "A", 0.0, "eu"))
        store.add_registration(RegistrationRecord("s2", "A", 0.0, "eu"))
        store.add_download(dl(cid="A", edge=90, peer=10))
        # File B: many copies, high efficiency.
        for i in range(40):
            store.add_registration(RegistrationRecord(f"s{i}", "B", 0.0, "eu"))
        store.add_download(dl(cid="B", edge=10, peer=90))
        rows = figure5_efficiency_vs_copies(store)
        assert len(rows) == 2
        assert rows[0][1] < rows[-1][1]

    def test_registration_dedupe_by_guid(self):
        store = LogStore()
        for _ in range(5):  # same peer re-registering
            store.add_registration(RegistrationRecord("s1", "A", 0.0, "eu"))
        store.add_download(dl(cid="A"))
        rows = figure5_efficiency_vs_copies(store)
        # 1 distinct copy -> first bin [1, 3).
        assert rows[0][0] < 3

    def test_figure6_groups_by_peers_returned(self):
        store = LogStore()
        store.add_download(dl(peers_returned=0, edge=100, peer=0))
        store.add_download(dl(peers_returned=10, edge=20, peer=80))
        rows = figure6_efficiency_vs_peers(store)
        assert rows[0] == (0, 0.0, 1)
        assert rows[1][0] == 10
        assert rows[1][1] == pytest.approx(0.8)


class TestFigure7AndReliability:
    def test_pause_rates_by_size(self):
        store = LogStore()
        store.add_download(dl(p2p=False, size=MB, outcome="completed"))
        store.add_download(dl(p2p=False, size=2 * GB, outcome="aborted"))
        store.add_download(dl(p2p=True, size=2 * GB, outcome="completed"))
        rates = figure7_pause_rates(store)
        assert rates["infrastructure"]["<10MB"] == 0.0
        assert rates["infrastructure"][">1GB"] == 1.0
        assert rates["peer_assisted"][">1GB"] == 0.0

    def test_reliability_split(self):
        store = LogStore()
        store.add_download(dl(p2p=True, outcome="completed"))
        store.add_download(dl(p2p=True, outcome="aborted"))
        store.add_download(DownloadRecord(
            guid="g", url="u", cid="c", cp_code=1, size=10, started_at=0,
            ended_at=1, edge_bytes=0, peer_bytes=0, p2p_enabled=True,
            outcome="failed", failure_class="system"))
        out = reliability_outcomes(store)["peer_assisted"]
        assert out["completed"] == pytest.approx(1 / 3)
        assert out["aborted"] == pytest.approx(1 / 3)
        assert out["failed_system"] == pytest.approx(1 / 3)


class TestFigure8:
    def test_country_classes(self):
        geodb = GeoDatabase()
        geodb.register("de", GeoRecord("DE", "Europe", "B", 50, 8, "UTC", "i", 1))
        geodb.register("ke", GeoRecord("KE", "Africa", "N", -1, 36, "UTC", "i", 2))
        store = LogStore()
        store.add_download(dl(ip="de", edge=90, peer=10))
        store.add_download(dl(ip="ke", edge=10, peer=90))
        classes = figure8_country_contributions(store, geodb)
        assert classes["DE"] == "infra"
        assert classes["KE"] == "peers_major"

    def test_provider_filter(self):
        geodb = GeoDatabase()
        geodb.register("de", GeoRecord("DE", "Europe", "B", 50, 8, "UTC", "i", 1))
        store = LogStore()
        store.add_download(dl(ip="de", cp=1, edge=90, peer=10))
        store.add_download(dl(ip="de", cp=2, edge=0, peer=100))
        classes = figure8_country_contributions(store, geodb, cp_code=2)
        assert classes["DE"] == "peers_major"
